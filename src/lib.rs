//! # cocoa-suite — umbrella crate for the CoCoA reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can depend on one name. See the repository `README.md` for the
//! architecture overview, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Examples
//!
//! ```no_run
//! use cocoa_suite::core::prelude::*;
//!
//! let metrics = run(&Scenario::builder().seed(7).build());
//! println!("CoCoA mean error: {:.1} m", metrics.mean_error_over_time());
//! ```

#![forbid(unsafe_code)]

pub use cocoa_core as core;
pub use cocoa_georouting as georouting;
pub use cocoa_localization as localization;
pub use cocoa_mobility as mobility;
pub use cocoa_multicast as multicast;
pub use cocoa_net as net;
pub use cocoa_sim as sim;
