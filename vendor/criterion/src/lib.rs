//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the timing surface the bench targets use: [`Criterion`],
//! `bench_function`, `Bencher::iter`, [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples; the median, minimum and maximum per-iteration
//! times are reported on stdout in a `name  time: [min median max]`
//! format. There is no plotting, no statistical regression and no saved
//! baseline — numbers are for relative comparison within one run, which is
//! how the repo's perf harness consumes them.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing driver handed to each registered benchmark function.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (cargo bench `<filter>`).
    filter: Option<String>,
    /// True when invoked by `cargo test` (`--test`): run once, don't time.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 60,
            filter: None,
            test_mode: false,
        }
    }
}

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Applies command-line arguments (`--test`, an optional filter);
    /// called by `criterion_group!`.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
            return self;
        }
        if let Some(sample) = bencher.summary() {
            println!(
                "{name:<44} time: [{} {} {}]",
                format_ns(sample.min_ns),
                format_ns(sample.median_ns),
                format_ns(sample.max_ns),
            );
        }
        self
    }
}

/// Runs the closure under timing (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, storing per-iteration nanoseconds per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs ~2 ms so Instant overhead is amortized.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(ns);
        }
    }

    fn summary(&self) -> Option<Sample> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Sample {
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        })
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function (both classic and struct forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_produces_ordered_summary() {
        let mut c = Criterion::default().sample_size(5);
        // Indirectly exercise Bencher through the public entry point.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn format_scales_units() {
        assert_eq!(format_ns(12.5), "12.50 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
        assert_eq!(format_ns(3.1e9), "3.10 s");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("match-me".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("other", |_b| ran = true);
        assert!(!ran, "filtered benchmark must not run");
        c.bench_function("match-me-exactly", |_b| ran = true);
        assert!(ran);
    }
}
