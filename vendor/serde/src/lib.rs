//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, and nothing in the
//! workspace actually serializes at runtime — the `#[derive(Serialize,
//! Deserialize)]` annotations are forward-looking schema markers. This
//! crate provides the two trait names plus no-op derive macros so the
//! annotated code compiles unchanged; swapping the real serde back in is a
//! one-line change in the workspace manifest.

/// Marker trait named after `serde::Serialize`; carries no methods offline.
pub trait Serialize {}

/// Marker trait named after `serde::Deserialize`; carries no methods
/// offline.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
