//! No-op stand-ins for serde's derive macros.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that a
//! future online build can swap the real serde back in; offline, the derives
//! expand to nothing (a derive macro may legally emit an empty token
//! stream), so no `impl` is generated and nothing downstream may *require*
//! the serde traits as bounds.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
