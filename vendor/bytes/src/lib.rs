//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides cheaply-cloneable immutable [`Bytes`], an append-only
//! [`BytesMut`] builder, and the big-endian [`Buf`]/[`BufMut`] cursor
//! methods the packet codecs use. Backed by `Arc<[u8]>` plus a window;
//! no unsafe code.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, immutable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a sub-range (relative to the current window)
    /// sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte buffer used to build packets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Big-endian read cursor (mirrors `bytes::Buf` for the methods used).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64;
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

macro_rules! get_be {
    ($self:ident, $t:ty) => {{
        let n = std::mem::size_of::<$t>();
        <$t>::from_be_bytes($self.take(n).try_into().expect("sized read"))
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        get_be!(self, u16)
    }

    fn get_u32(&mut self) -> u32 {
        get_be!(self, u32)
    }

    fn get_u64(&mut self) -> u64 {
        get_be!(self, u64)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn advance(&mut self, cnt: usize) {
        let _ = self.take(cnt);
    }
}

/// Big-endian write methods (mirrors `bytes::BufMut` for the methods used).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f64(-2.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0xBEEF);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.get_f64(), -2.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let nested = s.slice(1..);
        assert_eq!(&nested[..], &[3, 4]);
        assert_eq!(b.len(), 6, "parent unaffected");
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(3);
        assert_eq!(&head[..], &[9, 8, 7]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"hello\"");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u16();
    }
}
