//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the surface the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any` strategies,
//! `proptest::collection::vec`, the `proptest!`/`prop_oneof!`/
//! `prop_assert*!`/`prop_assume!` macros and [`ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the ordinary assert
//!   message; cases are derived deterministically from the test's name, so
//!   failures reproduce exactly on re-run.
//! - **Deterministic by default.** There is no OS entropy; CI and local
//!   runs see identical inputs. Set `PROPTEST_CASES` to change the case
//!   count without touching code.

use std::ops::Range;

/// The RNG driving case generation: SplitMix64, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Returned by a case body when `prop_assume!` rejects the inputs; the
/// runner skips to the next case.
#[derive(Debug, Clone, Copy, Default)]
pub struct TestCaseReject;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honouring the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Types with a canonical full-range strategy (mirrors
/// `proptest::arbitrary::Arbitrary` for the types the workspace uses).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (no NaN/inf — the real
    /// crate's default also weights heavily toward finite values).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let exp = rng.below(41) as i32 - 20;
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        mantissa * 10f64.powi(exp)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares deterministic property tests.
///
/// Supports the same surface the workspace uses: an optional
/// `#![proptest_config(...)]` header and `#[test] fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                // The immediately-called closure gives `$body` a scope
                // where `return`/`?` mean "finish this case".
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseReject> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                // A rejected case (prop_assume!) is simply skipped.
                let _ = outcome;
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// vendored runner does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn map_and_tuple_compose(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
