//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`RngCore`]/[`Rng`], [`SeedableRng`],
//! uniform sampling of primitives and ranges, and a deterministic
//! [`rngs::StdRng`].
//!
//! The generator behind `StdRng` is xoshiro256++ (public-domain reference
//! construction), seeded from the same 32-byte seeds the real `StdRng`
//! accepts. It is *not* bit-compatible with upstream `rand`'s ChaCha-based
//! `StdRng`, but it is deterministic across platforms and releases of this
//! workspace, which is the property the simulations rely on.

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The distribution that `Rng::gen` samples from: uniform over a type's
/// natural full range (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Types samplable from a distribution (mirrors `rand::distributions`).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the simulations can resolve.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                ((self.start as i128) + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            w ^= w >> 31;
            let bytes = w.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, portable generator (xoshiro256++).
    ///
    /// Plays the role of `rand::rngs::StdRng`: seeded from 32 bytes,
    /// reproducible across platforms and workspace releases.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The generator's internal 256-bit state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously returned by
        /// [`StdRng::state`], continuing the exact same output stream.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ can never reach
        /// from a seeded generator and from which it would emit only zeros.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// A small fast generator; alias of [`StdRng`] in this vendored subset.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let n = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.gen::<u64>(), 0);
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }
}
