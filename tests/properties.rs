//! Property-based tests over the full simulation: invariants that must
//! hold for *any* scenario, not just the paper's.

use cocoa_suite::core::prelude::*;
use cocoa_suite::sim::time::SimDuration;
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(), // seed
        4usize..16,   // robots
        0usize..8,    // equipped (clamped below)
        60u64..180,   // duration s
        15u64..60,    // period s
        prop_oneof![
            Just(EstimatorMode::OdometryOnly),
            Just(EstimatorMode::RfOnly),
            Just(EstimatorMode::Cocoa),
        ],
        any::<bool>(), // coordination
        0.3..3.0f64,   // v_max
    )
        .prop_map(
            |(seed, robots, equipped, duration, period, mode, coordination, v_max)| {
                let equipped = if mode.uses_rf() {
                    equipped.clamp(1, robots)
                } else {
                    0
                };
                Scenario::builder()
                    .seed(seed)
                    .robots(robots)
                    .equipped(equipped)
                    .duration(SimDuration::from_secs(duration))
                    .beacon_period(SimDuration::from_secs(period))
                    .mode(mode)
                    .coordination(coordination)
                    .v_max(v_max)
                    .grid_resolution(8.0) // keep property runs cheap
                    .build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core conservation laws of a run: energy buckets are non-negative,
    /// errors are finite and non-negative, counters are consistent.
    #[test]
    fn run_invariants(scenario in arb_scenario()) {
        let m = run(&scenario);
        // Error series well-formed and strictly time-ordered.
        let mut last_t = -1.0;
        for p in &m.error_series {
            prop_assert!(p.mean_error_m.is_finite() && p.mean_error_m >= 0.0);
            prop_assert!(p.t_s > last_t);
            last_t = p.t_s;
            prop_assert!(p.robots > 0);
        }
        // Energy ledgers.
        for l in &m.energy.per_robot {
            prop_assert!(l.tx_uj >= 0.0 && l.rx_uj >= 0.0);
            prop_assert!(l.idle_uj >= 0.0 && l.sleep_uj >= 0.0 && l.wake_uj >= 0.0);
        }
        prop_assert_eq!(m.energy.per_robot.len(), scenario.num_robots);
        // Traffic counters.
        prop_assert!(m.traffic.beacons_received <= m.traffic.beacons_sent * scenario.num_robots as u64);
        if !scenario.mode.uses_rf() {
            prop_assert_eq!(m.traffic.beacons_sent, 0);
            prop_assert_eq!(m.energy.total_j(), 0.0);
        }
        // Final states cover the team and stay in the area.
        prop_assert_eq!(m.final_states.len(), scenario.num_robots);
        for r in &m.final_states {
            prop_assert!(scenario.area.contains(r.true_position));
            prop_assert!(scenario.area.contains(r.estimate));
        }
    }

    /// Determinism: any scenario runs to identical metrics twice.
    #[test]
    fn any_scenario_is_deterministic(scenario in arb_scenario()) {
        let a = run(&scenario);
        let b = run(&scenario);
        prop_assert_eq!(a, b);
    }

    /// Coordination only ever reduces energy (sleeping can't cost more
    /// than idling), and never changes the beacons sent.
    #[test]
    fn coordination_saves_energy_universally(scenario in arb_scenario()) {
        prop_assume!(scenario.mode.uses_rf());
        let mut on = scenario.clone();
        on.coordination = true;
        let mut off = scenario.clone();
        off.coordination = false;
        let m_on = run(&on);
        let m_off = run(&off);
        prop_assert!(
            m_on.energy.total_j() <= m_off.energy.total_j() + 1e-6,
            "{} J with sleep vs {} J without",
            m_on.energy.total_j(),
            m_off.energy.total_j()
        );
    }
}
