//! Cross-crate integration tests: full CoCoA simulations exercising the
//! engine, channel, MAC, mobility, multicast, localization and the
//! coordination runner together.

use cocoa_suite::core::prelude::*;
use cocoa_suite::sim::time::{SimDuration, SimTime};

/// A downsized but complete scenario: 20 robots, 5 minutes, T = 50 s.
fn quick(seed: u64) -> ScenarioBuilder {
    let mut b = Scenario::builder();
    b.seed(seed)
        .robots(20)
        .equipped(10)
        .duration(SimDuration::from_secs(300))
        .beacon_period(SimDuration::from_secs(50))
        .grid_resolution(4.0);
    b
}

#[test]
fn runs_are_bit_reproducible() {
    let s = quick(9).build();
    let a = run(&s);
    let b = run(&s);
    assert_eq!(a, b, "same scenario must produce identical metrics");
}

#[test]
fn different_seeds_differ() {
    let a = run(&quick(1).build());
    let b = run(&quick(2).build());
    assert_ne!(a.error_series, b.error_series);
}

#[test]
fn cocoa_beats_rf_only_which_beats_late_odometry() {
    let cocoa = run(&quick(3).mode(EstimatorMode::Cocoa).build());
    let rf = run(&quick(3).mode(EstimatorMode::RfOnly).build());
    let odo = run(&quick(3).mode(EstimatorMode::OdometryOnly).build());
    // Steady-state comparison (skip the cold start before the first fix).
    let cocoa_err = cocoa.mean_error_after(60.0);
    let rf_err = rf.mean_error_after(60.0);
    assert!(
        cocoa_err < rf_err,
        "CoCoA ({cocoa_err:.1} m) must beat RF-only ({rf_err:.1} m)"
    );
    // Odometry error grows over time; the final stretch is worse than the
    // first minute.
    let early = odo.error_near(30.0).unwrap();
    let late = odo.error_near(290.0).unwrap();
    assert!(
        late > early,
        "odometry error must grow: {early:.1} -> {late:.1}"
    );
}

#[test]
fn coordination_saves_energy_without_hurting_accuracy() {
    let with = run(&quick(4).coordination(true).build());
    let without = run(&quick(4).coordination(false).build());
    assert!(
        with.energy.total_j() < without.energy.total_j() / 2.0,
        "sleep coordination must save at least 2x ({:.0} J vs {:.0} J)",
        with.energy.total_j(),
        without.energy.total_j()
    );
    let delta = (with.mean_error_over_time() - without.mean_error_over_time()).abs();
    assert!(
        delta < 2.0,
        "coordination must not change accuracy materially (delta {delta:.2} m)"
    );
    // The sleep ledger only accrues when coordinating.
    assert!(with.energy.team().sleep_uj > 0.0);
    assert_eq!(without.energy.team().sleep_uj, 0.0);
}

#[test]
fn larger_beacon_period_saves_more_energy() {
    let t20 = run(&quick(5).beacon_period(SimDuration::from_secs(20)).build());
    let t100 = run(&quick(5).beacon_period(SimDuration::from_secs(100)).build());
    assert!(
        t100.energy.total_j() < t20.energy.total_j(),
        "T = 100 ({:.0} J) must be cheaper than T = 20 ({:.0} J)",
        t100.energy.total_j(),
        t20.energy.total_j()
    );
}

#[test]
fn fixes_happen_and_beacons_flow() {
    let m = run(&quick(6).build());
    // 10 unequipped robots × 6 windows: expect most windows to fix.
    assert!(m.traffic.fixes > 30, "fixes {}", m.traffic.fixes);
    assert!(m.traffic.beacons_sent > 100);
    assert!(m.traffic.beacons_received > m.traffic.beacons_sent);
    assert!(m.traffic.syncs_delivered > 0);
}

#[test]
fn snapshots_show_the_window_refresh_cycle() {
    // Post-window accuracy must beat the end-of-period accuracy.
    let s = quick(7)
        .beacon_period(SimDuration::from_secs(50))
        .snapshots([
            SimTime::from_secs(249), // end of a period, most stale
            SimTime::from_secs(254), // right after the transmit window
        ])
        .build();
    let m = run(&s);
    let stale = &m.snapshots[0];
    let fresh = &m.snapshots[1];
    assert!(
        fresh.mean() < stale.mean(),
        "post-window mean {:.1} must beat pre-window {:.1}",
        fresh.mean(),
        stale.mean()
    );
}

#[test]
fn sync_loss_with_bad_clocks_degrades_coordination() {
    let mut b = quick(8);
    b.duration(SimDuration::from_secs(900))
        .clock_skew_ppm(9000.0);
    let synced = run(&b.sync_enabled(true).build());
    let free = run(&b.sync_enabled(false).build());
    // Free-running 9000 ppm clocks spread their wake windows apart by up
    // to several seconds over 15 minutes: robots still hear equipped
    // robots whose clocks drifted the same way, but lose the beacons of
    // oppositely-drifted ones. SYNC keeps the whole team's windows
    // aligned, so far more beacons are received and accuracy is better.
    assert!(
        (free.traffic.beacons_received as f64) < 0.75 * synced.traffic.beacons_received as f64,
        "free-running clocks must lose beacon receptions: {} vs {}",
        free.traffic.beacons_received,
        synced.traffic.beacons_received
    );
    assert!(
        free.mean_error_after(60.0) > synced.mean_error_after(60.0),
        "free-running clocks must hurt accuracy: {:.1} vs {:.1}",
        free.mean_error_after(60.0),
        synced.mean_error_after(60.0)
    );
}

#[test]
fn equipped_robots_report_no_error_and_are_excluded() {
    let m = run(&quick(10).build());
    for p in &m.error_series {
        assert_eq!(p.robots, 10, "only the 10 unequipped robots report");
    }
    let equipped_errors: Vec<f64> = m
        .final_states
        .iter()
        .filter(|r| r.equipped)
        .map(|r| r.true_position.distance_to(r.estimate))
        .collect();
    assert_eq!(equipped_errors.len(), 10);
    assert!(equipped_errors.iter().all(|&e| e == 0.0));
}

#[test]
fn odometry_only_mode_uses_no_radio() {
    let m = run(&quick(11).mode(EstimatorMode::OdometryOnly).build());
    assert_eq!(m.traffic.beacons_sent, 0);
    assert_eq!(m.traffic.syncs_delivered, 0);
    assert_eq!(m.energy.total_j(), 0.0, "radios are off");
    // And everyone reports (the paper averages over all 50 robots here).
    assert!(m.error_series.iter().all(|p| p.robots == 20));
}

#[test]
fn relay_beaconing_adds_beacon_sources() {
    let mut base = quick(12);
    base.equipped(4);
    let off = run(&base.relay_beaconing(false).build());
    let on = run(&base.relay_beaconing(true).build());
    assert!(
        on.traffic.beacons_sent > off.traffic.beacons_sent,
        "relaying must add beacons: {} vs {}",
        on.traffic.beacons_sent,
        off.traffic.beacons_sent
    );
}

#[test]
fn final_states_feed_geo_routing() {
    use cocoa_suite::georouting::prelude::*;
    let m = run(&quick(13).build());
    let nodes: Vec<RoutingNode> = m
        .final_states
        .iter()
        .map(|r| RoutingNode {
            true_position: r.true_position,
            believed_position: r.estimate,
        })
        .collect();
    let graph = UnitDiskGraph::new(nodes, 60.0);
    let pairs: Vec<(usize, usize)> = (0..graph.len()).map(|i| (i, graph.len() - 1 - i)).collect();
    let stats = delivery_experiment(&graph, &pairs);
    assert!(stats.attempted > 0);
    assert!(
        stats.delivery_rate() > 0.5,
        "CoCoA coordinates should route most packets, got {:.0}%",
        stats.delivery_rate() * 100.0
    );
}

#[test]
fn mesh_statistics_are_consistent() {
    let m = run(&quick(14).build());
    // The Sync robot originates one query and one SYNC data packet per
    // window (6 windows in 300 s at T = 50).
    assert_eq!(m.mesh.queries_originated, 6);
    assert_eq!(m.mesh.data_originated, 6);
    assert!(m.mesh.data_delivered > 0, "SYNC must reach members");
    assert!(m.mesh.queries_rebroadcast > 0, "queries must flood");
}

#[test]
fn packet_loss_degrades_gracefully() {
    // k = 3 beacons per window absorb moderate loss; heavy loss starves
    // windows and costs fixes.
    let clean = run(&quick(20).build());
    let lossy = {
        let mut b = quick(20);
        b.packet_loss(0.5);
        run(&b.build())
    };
    assert!(
        (lossy.traffic.beacons_received as f64) < 0.62 * clean.traffic.beacons_received as f64,
        "50% loss must roughly halve receptions: {} vs {}",
        lossy.traffic.beacons_received,
        clean.traffic.beacons_received
    );
    assert!(
        lossy.traffic.fixes <= clean.traffic.fixes,
        "loss must not add fixes"
    );
    // Still functional: most windows fix (redundant beacons at work).
    assert!(
        lossy.traffic.fixes * 10 >= clean.traffic.fixes * 5,
        "half the fixes should survive 50% loss: {} vs {}",
        lossy.traffic.fixes,
        clean.traffic.fixes
    );
}

#[test]
fn traced_runs_record_protocol_milestones() {
    use cocoa_suite::sim::trace::{Trace, TraceLevel};
    let s = quick(21).build();
    let (metrics, trace) = run_traced(&s, Trace::with_capacity(TraceLevel::Debug, 50_000));
    // One Info record per beacon period.
    let windows: Vec<_> = trace
        .by_subsystem("coordinator")
        .filter(|r| r.level == TraceLevel::Info)
        .collect();
    assert_eq!(windows.len() as u64, s.num_windows());
    // One Debug fix record per fresh fix.
    let fixes = trace.by_subsystem("localization").count() as u64;
    assert!(
        fixes >= metrics.traffic.fixes,
        "trace must record every fix (and any starvations): {} vs {}",
        fixes,
        metrics.traffic.fixes
    );
    // Tracing never perturbs the simulation itself.
    let untraced = run(&s);
    assert_eq!(untraced, metrics);
}
