//! Quickstart: run the paper's headline CoCoA configuration and print a
//! summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! 50 robots roam a 200 m × 200 m field for (a downsized) 10 minutes; the
//! 25 robots with localization devices beacon during each 3-second
//! transmit window of a 100-second beacon period, everyone else localizes
//! by Bayesian inference on beacon RSSI and dead-reckons in between, and
//! the whole team sleeps its radios between windows.

use cocoa_suite::core::prelude::*;
use cocoa_suite::sim::time::SimDuration;

fn main() {
    let scenario = Scenario::builder()
        .seed(2026)
        .duration(SimDuration::from_secs(600))
        .beacon_period(SimDuration::from_secs(100))
        .mode(EstimatorMode::Cocoa)
        .build();

    println!(
        "Running CoCoA: {} robots ({} equipped), T = {}, t = {}, {} simulated",
        scenario.num_robots,
        scenario.num_equipped,
        scenario.beacon_period,
        scenario.transmit_window,
        scenario.duration
    );

    let metrics = run(&scenario);

    println!("\n== localization ==");
    println!(
        "mean error over time : {:>8.2} m",
        metrics.mean_error_over_time()
    );
    println!(
        "max (per-second mean): {:>8.2} m",
        metrics.max_error_over_time()
    );
    println!("fresh RF fixes       : {:>8}", metrics.traffic.fixes);
    println!(
        "beacons sent/received: {:>8} / {}",
        metrics.traffic.beacons_sent, metrics.traffic.beacons_received
    );

    println!("\n== energy (team) ==");
    let team = metrics.energy.team();
    println!("total                : {:>8.1} J", team.total_j());
    println!("  tx                 : {:>8.3} J", team.tx_uj / 1e6);
    println!("  rx                 : {:>8.3} J", team.rx_uj / 1e6);
    println!("  idle (awake)       : {:>8.1} J", team.idle_uj / 1e6);
    println!("  sleep              : {:>8.1} J", team.sleep_uj / 1e6);
    println!("  wake-ups           : {:>8.3} J", team.wake_uj / 1e6);

    println!("\n== coordination ==");
    println!(
        "SYNCs delivered/missed: {:>7} / {}",
        metrics.traffic.syncs_delivered, metrics.traffic.syncs_missed
    );
    println!(
        "mesh control packets  : {:>7} (queries rebroadcast {}, suppressed by MRMM {})",
        metrics.mesh.control_overhead(),
        metrics.mesh.queries_rebroadcast,
        metrics.mesh.queries_suppressed
    );
    println!("events processed      : {:>7}", metrics.events_processed);
}
