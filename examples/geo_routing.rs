//! Geographic routing over CoCoA coordinates (paper Section 6).
//!
//! ```sh
//! cargo run --release --example geo_routing
//! ```
//!
//! The paper's conclusion claims "CoCoA coordinates are good enough to
//! enable scalable geographic routing". This example tests the claim end
//! to end: it runs a CoCoA deployment, snapshots every robot's true
//! position and self-estimate, builds the physical unit-disk graph, and
//! routes packets between random pairs with greedy + face (GFG/GPSR)
//! forwarding — once with perfect coordinates, once with CoCoA's
//! estimates.

use cocoa_suite::core::prelude::*;
use cocoa_suite::georouting::prelude::*;
use cocoa_suite::sim::rng::SeedSplitter;
use cocoa_suite::sim::time::SimDuration;
use rand::Rng;

/// A routing range short enough that multi-hop paths actually occur in a
/// 200 m field.
const ROUTING_RANGE_M: f64 = 50.0;

fn main() {
    let scenario = Scenario::builder()
        .seed(31)
        .duration(SimDuration::from_secs(600))
        .mode(EstimatorMode::Cocoa)
        .build();
    println!(
        "Running CoCoA for {} to obtain coordinates...",
        scenario.duration
    );
    let metrics = run(&scenario);
    println!(
        "team mean localization error: {:.1} m",
        metrics.mean_error_over_time()
    );

    // Build both graphs from the same physical snapshot.
    let exact: Vec<RoutingNode> = metrics
        .final_states
        .iter()
        .map(|r| RoutingNode::exact(r.true_position))
        .collect();
    let cocoa: Vec<RoutingNode> = metrics
        .final_states
        .iter()
        .map(|r| RoutingNode {
            true_position: r.true_position,
            believed_position: r.estimate,
        })
        .collect();
    let g_exact = UnitDiskGraph::new(exact, ROUTING_RANGE_M);
    let g_cocoa = UnitDiskGraph::new(cocoa, ROUTING_RANGE_M);

    let mut rng = SeedSplitter::new(31).stream("pairs", 0);
    let n = g_exact.len();
    let pairs: Vec<(usize, usize)> = (0..300)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    let s_exact = delivery_experiment(&g_exact, &pairs);
    let s_cocoa = delivery_experiment(&g_cocoa, &pairs);

    println!(
        "\nunit-disk graph: {} nodes, {} edges, routing range {ROUTING_RANGE_M} m",
        g_exact.len(),
        g_exact.edge_count()
    );
    println!("\n{:<22} {:>10} {:>10}", "", "exact", "CoCoA");
    println!(
        "{:<22} {:>10} {:>10}",
        "pairs attempted", s_exact.attempted, s_cocoa.attempted
    );
    println!(
        "{:<22} {:>9.1}% {:>9.1}%",
        "delivery rate",
        s_exact.delivery_rate() * 100.0,
        s_cocoa.delivery_rate() * 100.0
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "mean hops (delivered)", s_exact.mean_hops, s_cocoa.mean_hops
    );
    println!(
        "{:<22} {:>9.1}% {:>9.1}%",
        "face-mode hops",
        s_exact.face_fraction * 100.0,
        s_cocoa.face_fraction * 100.0
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "path stretch", s_exact.mean_stretch, s_cocoa.mean_stretch
    );
    println!(
        "\nCoCoA coordinates deliver {:.0}% of what perfect coordinates deliver.",
        100.0 * s_cocoa.delivery_rate() / s_exact.delivery_rate().max(1e-9)
    );
}
