//! A single robot's odometry drift: the data behind paper Fig. 5.
//!
//! ```sh
//! cargo run --release --example odometry_drift [> path.csv]
//! ```
//!
//! Drives one robot through the random-task movement model for ten
//! minutes, recording the true path and the dead-reckoned path, then
//! prints the trajectory as CSV plus a summary of how the two diverge.

use cocoa_suite::mobility::prelude::*;
use cocoa_suite::mobility::sweep::{SweepConfig, SweepModel};
use cocoa_suite::net::geometry::{Area, Point};
use cocoa_suite::sim::rng::SeedSplitter;
use cocoa_suite::sim::time::SimTime;

fn main() {
    let split = SeedSplitter::new(5);
    let mut move_rng = split.stream("move", 0);
    let mut odo_rng = split.stream("odo", 0);
    let area = Area::square(200.0);
    let mut robot = RobotMotion::new(
        WaypointConfig::paper(area, 2.0),
        OdometryConfig::default(),
        Point::new(100.0, 100.0),
        &mut move_rng,
    );

    let mut trajectory = Trajectory::new();
    trajectory.record(
        SimTime::ZERO,
        robot.true_position(),
        robot.odometry_pose().position,
    );
    for tick in 1..=600u64 {
        robot.step(1.0, &mut move_rng, &mut odo_rng);
        trajectory.record(
            SimTime::from_secs(tick),
            robot.true_position(),
            robot.odometry_pose().position,
        );
    }

    print!("{}", trajectory.to_csv());
    eprintln!("\n# Fig. 5 style summary (one robot, 10 min, v_max = 2 m/s)");
    eprintln!("# legs completed : {}", robot.waypoints().legs_completed());
    eprintln!("# mean error     : {:.1} m", trajectory.mean_error());
    eprintln!(
        "# final error    : {:.1} m",
        trajectory.last_error().unwrap_or(0.0)
    );
    eprintln!("# max error      : {:.1} m", trajectory.max_error());
    eprintln!("# (real position and odometry estimate diverge without bound;");
    eprintln!("#  every turn adds angular error, every metre adds displacement error)");

    // The same odometer on a systematic lawnmower sweep: long straight
    // lanes accumulate heading drift differently than random tasks.
    let mut sweep = SweepModel::new(SweepConfig::new(area, 10.0, 2.0), &mut move_rng);
    let mut sweep_odo = Odometer::new(OdometryConfig::default(), sweep.pose());
    let mut sweep_traj = Trajectory::new();
    for tick in 0..=600u64 {
        if tick > 0 {
            let (_, segments) = sweep.step(1.0);
            for s in &segments {
                sweep_odo.observe(s, &mut odo_rng);
            }
        }
        sweep_traj.record(
            SimTime::from_secs(tick),
            sweep.pose().position,
            sweep_odo.estimated_pose().position,
        );
    }
    eprintln!("#");
    eprintln!("# same odometer, lawnmower sweep instead of random tasks:");
    eprintln!("# lanes completed : {}", sweep.lanes_completed());
    eprintln!("# mean error      : {:.1} m", sweep_traj.mean_error());
    eprintln!(
        "# final error     : {:.1} m",
        sweep_traj.last_error().unwrap_or(0.0)
    );
}
