//! Search-and-rescue: the paper's motivating application.
//!
//! ```sh
//! cargo run --release --example search_and_rescue
//! ```
//!
//! A team sweeps a disaster area. Only a third of the robots carry laser
//! rangers (cost!); the rest localize through CoCoA. When any robot passes
//! within sensing range of a survivor, it reports the survivor at *its own
//! estimated position* — the quality of that report is exactly the quality
//! of CoCoA localization. The paper argues an ~8 m report radius is good
//! enough to dispatch rescuers (Section 6).
//!
//! We place survivors, run the team, log every detection, and score how
//! far each reported location is from the survivor's true location.

use cocoa_suite::core::prelude::*;
use cocoa_suite::net::geometry::Point;
use cocoa_suite::sim::rng::SeedSplitter;
use cocoa_suite::sim::time::SimDuration;
use rand::Rng;

/// A robot "senses" a survivor within this range (e.g. a camera or
/// thermal sensor — independent of the RF localization).
const SENSING_RANGE_M: f64 = 8.0;

fn main() {
    let seed = 77;
    let mut rng = SeedSplitter::new(seed).stream("survivors", 0);
    let survivors: Vec<Point> = (0..8)
        .map(|_| Point::new(rng.gen::<f64>() * 200.0, rng.gen::<f64>() * 200.0))
        .collect();

    // A third of the team carries localization devices (paper Section 6:
    // "average localization error is about 8m when only one third of the
    // robots are equipped").
    let scenario = Scenario::builder()
        .seed(seed)
        .duration(SimDuration::from_secs(900))
        .equipped(17)
        .beacon_period(SimDuration::from_secs(100))
        .mode(EstimatorMode::Cocoa)
        .build();

    println!(
        "Search & rescue: {} robots ({} with laser rangers), {} survivors hidden",
        scenario.num_robots,
        scenario.num_equipped,
        survivors.len()
    );

    let metrics = run(&scenario);

    // Score the *final* sweep: which survivors are currently within
    // sensing range of some robot, and how good is the reported location?
    let mut reports: Vec<(usize, f64)> = Vec::new();
    for (si, survivor) in survivors.iter().enumerate() {
        let best = metrics
            .final_states
            .iter()
            .filter(|r| r.true_position.distance_to(*survivor) <= SENSING_RANGE_M)
            .map(|r| {
                // The robot reports: "survivor near my estimated position".
                r.estimate.distance_to(*survivor)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite"));
        if let Some(err) = best {
            reports.push((si, err));
        }
    }

    println!(
        "\nteam mean localization error: {:.1} m",
        metrics.mean_error_over_time()
    );
    println!(
        "survivors currently in sensing range of some robot: {}/{}",
        reports.len(),
        survivors.len()
    );
    for (si, err) in &reports {
        let ok = if *err <= 2.0 * SENSING_RANGE_M {
            "dispatchable"
        } else {
            "too coarse"
        };
        println!("  survivor #{si}: reported within {err:.1} m of truth ({ok})");
    }
    if !reports.is_empty() {
        let mean: f64 = reports.iter().map(|r| r.1).sum::<f64>() / reports.len() as f64;
        println!("mean report error: {mean:.1} m (paper argues <= ~8 m suffices)");
    }
}
