//! The offline calibration phase (paper Section 2.2, Fig. 1).
//!
//! ```sh
//! cargo run --release --example calibration
//! ```
//!
//! Runs the calibration campaign against the synthetic outdoor channel and
//! prints the PDF Table: one row per RSSI bin with the fitted distance
//! PDF's parameters, plus ASCII plots of the two example PDFs the paper
//! shows (Gaussian at −52 dBm, non-Gaussian at −86 dBm).

use cocoa_suite::net::calibration::{calibrate, CalibrationConfig, DistancePdf};
use cocoa_suite::net::channel::RfChannel;
use cocoa_suite::net::rssi::RssiBin;
use cocoa_suite::sim::rng::SeedSplitter;

fn ascii_plot(pdf: &DistancePdf, width: usize) -> String {
    let max_d = pdf.support_max().min(160.0);
    let samples: Vec<(f64, f64)> = (0..width)
        .map(|i| {
            let d = 0.5 + max_d * i as f64 / width as f64;
            (d, pdf.density(d))
        })
        .collect();
    let peak = samples
        .iter()
        .map(|s| s.1)
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for rows in (1..=8).rev() {
        let threshold = peak * rows as f64 / 8.0;
        let line: String = samples
            .iter()
            .map(|&(_, v)| if v >= threshold { '#' } else { ' ' })
            .collect();
        out.push_str(&format!("  |{line}\n"));
    }
    out.push_str(&format!(
        "  +{}\n   0 m{:>width$.0} m\n",
        "-".repeat(width),
        max_d,
        width = width - 3
    ));
    out
}

fn main() {
    let channel = RfChannel::default();
    let mut rng = SeedSplitter::new(7).stream("calibration", 0);
    let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);

    println!("PDF Table: {} calibrated RSSI bins", table.len());
    println!("Gaussian regime floor: {}", table.gaussian_floor());
    println!("\n  RSSI bin    form       mean [m]  sigma [m]");
    for (bin, pdf) in table.entries() {
        println!(
            "  {:>8}    {:<9}  {:>7.1}  {:>7.1}",
            bin.to_string(),
            if pdf.is_gaussian() {
                "gaussian"
            } else {
                "empirical"
            },
            pdf.mean(),
            pdf.sigma()
        );
    }

    for (bin, caption) in [
        (RssiBin(-52), "Fig. 1(a): RSSI = -52 dBm — Gaussian"),
        (
            RssiBin(-86),
            "Fig. 1(b): RSSI = -86 dBm — non-Gaussian (multipath)",
        ),
    ] {
        if let Some(pdf) = table.lookup(bin.center()) {
            println!("\n{caption}");
            print!("{}", ascii_plot(pdf, 64));
        }
    }
}
