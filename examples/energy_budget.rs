//! Energy budgeting: choosing the beacon period `T` (paper Section 4.3.1).
//!
//! ```sh
//! cargo run --release --example energy_budget
//! ```
//!
//! Sweeps the beacon period and prints, for each `T`, the localization
//! accuracy and the team energy with and without CoCoA's sleep
//! coordination — the operating curve an operator uses to pick `T`. The
//! paper lands on T between 50 and 100 s; this example shows the same
//! trade-off on a downsized run.

use cocoa_suite::core::experiment::{fig9_period, ExperimentScale};
use cocoa_suite::sim::time::SimDuration;

fn main() {
    let scale = ExperimentScale {
        seed: 11,
        duration: SimDuration::from_secs(600),
        num_robots: 50,
    };
    println!(
        "Sweeping beacon period T ({} robots, {} simulated)...\n",
        scale.num_robots, scale.duration
    );
    let fig = fig9_period(scale, &[10, 50, 100, 300]);
    println!("{}", fig.render());

    // A simple operating-point recommendation, the way Section 4.3.1
    // reasons: the smallest T whose error is within 25% of the best and
    // whose energy is within 2x of the cheapest.
    let best_err = fig
        .points
        .iter()
        .map(|p| p.mean_error_m)
        .fold(f64::INFINITY, f64::min);
    let cheapest = fig
        .points
        .iter()
        .map(|p| p.energy_coordinated_j)
        .fold(f64::INFINITY, f64::min);
    let pick = fig
        .points
        .iter()
        .find(|p| p.mean_error_m <= best_err * 1.25 && p.energy_coordinated_j <= cheapest * 2.0);
    match pick {
        Some(p) => println!(
            "recommended operating point: T = {} s ({:.1} m, {:.0} J, {:.1}x savings)",
            p.period_s,
            p.mean_error_m,
            p.energy_coordinated_j,
            p.savings_factor()
        ),
        None => println!("no single T satisfies both constraints; pick per application"),
    }
}
