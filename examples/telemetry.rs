//! Telemetry walkthrough: observe a run without perturbing it.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```
//!
//! Runs one small CoCoA deployment with the telemetry bus at `Full`,
//! then tours the three surfaces the bus records:
//!
//! 1. **events** — the typed, sim-time-stamped stream (beacons, fixes,
//!    SYNC delivery, faults, per-robot samples);
//! 2. **counters** — end-of-run totals from every subsystem under one
//!    registry;
//! 3. **spans** — wall-clock attribution of where the run actually
//!    spent its time.
//!
//! Finally it exports the trace as JSONL, re-parses it with the
//! `tracefile` reader (what the `cocoa-trace` binary uses) and rebuilds
//! the error curve from the trace alone — exactly equal to the metrics
//! the run returned, which is the whole point: the trace is a complete,
//! deterministic record of the run.

use cocoa_suite::core::prelude::*;
use cocoa_suite::core::tracefile::TraceFile;
use cocoa_suite::sim::telemetry::{Telemetry, TelemetryEvent, TelemetryLevel};
use cocoa_suite::sim::time::SimDuration;

fn main() {
    let scenario = Scenario::builder()
        .seed(7)
        .robots(12)
        .equipped(6)
        .duration(SimDuration::from_secs(300))
        .beacon_period(SimDuration::from_secs(50))
        .grid_resolution(4.0)
        .build();

    // Per-robot timeline samples every 5 s (default: the metrics interval).
    let mut telemetry = Telemetry::new(TelemetryLevel::Full);
    telemetry.set_sample_interval(SimDuration::from_secs(5));

    let (metrics, telemetry) = run_with_telemetry(&scenario, telemetry);

    // --- Surface 1: the typed event stream -----------------------------
    println!(
        "events: {} emitted, {} dropped",
        telemetry.events_emitted(),
        telemetry.dropped_events()
    );
    let mut fixes = 0u32;
    let mut first_fix: Option<(f64, u32, f64)> = None;
    for e in telemetry.events() {
        if let TelemetryEvent::Fix { robot, err_m, .. } = e.event {
            fixes += 1;
            if first_fix.is_none() {
                first_fix = Some((e.t_us as f64 / 1e6, robot, err_m));
            }
        }
    }
    if let Some((t_s, robot, err_m)) = first_fix {
        println!(
            "first fix: robot {robot} at t = {t_s:.2} s, error {err_m:.2} m ({fixes} fixes total)"
        );
    }

    // --- Surface 2: the counter registry -------------------------------
    println!("\ncounters (subsystem totals):");
    for (name, value) in telemetry.counters().sorted() {
        if name.starts_with("traffic.") || name.starts_with("telemetry.") {
            println!("  {name:<28} {value}");
        }
    }

    // --- Surface 3: the span profile -----------------------------------
    println!("\nhottest spans:");
    let spans = telemetry.spans();
    let root = spans.total_ns("run.total").unwrap_or(1);
    for s in spans.report().into_iter().take(6) {
        println!(
            "  {:<20} {:>9.3} ms  ×{:<6} {:>5.1}%",
            s.name,
            s.total_ns as f64 / 1e6,
            s.count,
            100.0 * s.total_ns as f64 / root as f64
        );
    }
    if let Some(c) = spans.coverage("run.total") {
        println!("  run.* phases cover {:.1}% of the run", c * 100.0);
    }

    // --- Round trip: JSONL out, tracefile in, curves rebuilt -----------
    let jsonl = telemetry.to_jsonl(false);
    let trace = TraceFile::parse(&jsonl).expect("the bus writes valid traces");
    let rebuilt = trace.team_error_curve();
    let exact = rebuilt
        .iter()
        .zip(&metrics.error_series)
        .all(|(r, p)| r.0 == p.t_s && r.1 == p.mean_error_m);
    println!(
        "\ntrace: {} JSONL lines; error curve rebuilt from the trace {} the metrics series ({} points)",
        jsonl.lines().count(),
        if exact { "exactly matches" } else { "DIVERGES FROM" },
        rebuilt.len()
    );
    println!(
        "final mean error {:.2} m, team energy {:.1} J — and the run itself is \
         bit-identical to one executed with telemetry off",
        metrics.mean_error_over_time(),
        metrics.energy.total_j()
    );
}
