//! Exploration / coverage mapping: another infrastructure-less
//! application from the paper's introduction ("exploring remote
//! terrains").
//!
//! ```sh
//! cargo run --release --example exploration
//! ```
//!
//! Robots sweep the field and mark the map cells they visit — but they
//! mark the cell of their *estimated* position. The quality of the
//! resulting coverage map is bounded by localization: cells marked
//! visited that were never actually entered are false coverage (a rescue
//! team would wrongly skip them). This example measures map accuracy for
//! CoCoA vs odometry-only localization under the identical sweep.

use cocoa_suite::core::prelude::*;
use cocoa_suite::sim::time::{SimDuration, SimTime};

const CELL_M: f64 = 10.0;
const GRID: usize = 20; // 200 m / 10 m

fn cell_of(x: f64, y: f64) -> (usize, usize) {
    (
        ((x / CELL_M) as usize).min(GRID - 1),
        ((y / CELL_M) as usize).min(GRID - 1),
    )
}

struct CoverageScore {
    true_cells: usize,
    claimed_cells: usize,
    correct_cells: usize,
}

fn score(mode: EstimatorMode) -> CoverageScore {
    // One deterministic run; robots log their position every 30 s.
    let minutes = 15u64;
    let s = Scenario::builder()
        .seed(606)
        .duration(SimDuration::from_secs(minutes * 60))
        .mode(mode)
        .snapshots((1..=minutes * 2).map(|i| SimTime::from_secs(i * 30)))
        .build();
    let metrics = run(&s);

    let mut truth = [[false; GRID]; GRID];
    let mut claimed = [[false; GRID]; GRID];
    for (_, states) in &metrics.position_snapshots {
        for r in states {
            let (tx, ty) = cell_of(r.true_position.x, r.true_position.y);
            truth[tx][ty] = true;
            let (ex, ey) = cell_of(r.estimate.x, r.estimate.y);
            claimed[ex][ey] = true;
        }
    }
    let mut true_cells = 0;
    let mut claimed_cells = 0;
    let mut correct_cells = 0;
    for i in 0..GRID {
        for j in 0..GRID {
            if truth[i][j] {
                true_cells += 1;
            }
            if claimed[i][j] {
                claimed_cells += 1;
                if truth[i][j] {
                    correct_cells += 1;
                }
            }
        }
    }
    CoverageScore {
        true_cells,
        claimed_cells,
        correct_cells,
    }
}

fn main() {
    println!("Coverage mapping: 50 robots sweep 200x200 m for 15 min; cells 10x10 m.");
    println!("Robots mark the cell of their *estimated* position every 30 s.\n");
    println!(
        "{:<16}{:>14}{:>14}{:>12}{:>10}",
        "localization", "cells visited", "cells claimed", "correct", "precision"
    );
    for (label, mode) in [
        ("CoCoA", EstimatorMode::Cocoa),
        ("odometry-only", EstimatorMode::OdometryOnly),
    ] {
        let s = score(mode);
        println!(
            "{:<16}{:>14}{:>14}{:>12}{:>9.0}%",
            label,
            s.true_cells,
            s.claimed_cells,
            s.correct_cells,
            100.0 * s.correct_cells as f64 / s.claimed_cells.max(1) as f64
        );
    }
    println!("\n(higher precision = fewer map cells wrongly marked as searched)");
}
