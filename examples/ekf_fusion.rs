//! Fusion styles head to head: CoCoA's reset-style fusion vs an EKF.
//!
//! ```sh
//! cargo run --release --example ekf_fusion
//! ```
//!
//! The paper (Section 5) notes CoCoA "is not tied to a specific
//! localization technique". This example compares, on identical synthetic
//! data, the two fusion philosophies:
//!
//! - **CoCoA style**: every beacon period, throw the estimate away, take a
//!   fresh Bayesian fix from the window's beacons, dead-reckon in between;
//! - **EKF style**: never reset — predict from odometry displacements
//!   every second, fuse each beacon range as it arrives (initialized by
//!   the first Bayesian fix, since range-only EKFs cannot cold-start).
//!
//! One robot wanders the paper's field for 15 minutes; 25 static anchors
//! beacon every T = 100 s for 3 s.

use cocoa_suite::localization::bayes::BayesianLocalizer;
use cocoa_suite::localization::ekf::{EkfConfig, EkfLocalizer};
use cocoa_suite::localization::grid::GridConfig;
use cocoa_suite::mobility::prelude::*;
use cocoa_suite::net::calibration::{calibrate, CalibrationConfig};
use cocoa_suite::net::channel::RfChannel;
use cocoa_suite::net::geometry::{Area, Point};
use cocoa_suite::sim::rng::SeedSplitter;
use rand::Rng;

const PERIOD_S: u64 = 100;
const WINDOW_S: u64 = 3;
const DURATION_S: u64 = 900;

fn main() {
    let area = Area::square(200.0);
    let channel = RfChannel::default();
    let split = SeedSplitter::new(99);
    let table = calibrate(
        &channel,
        &CalibrationConfig::default(),
        &mut split.stream("cal", 0),
    );
    let mut anchor_rng = split.stream("anchors", 0);
    let anchors: Vec<Point> = (0..25)
        .map(|_| {
            Point::new(
                anchor_rng.gen::<f64>() * 200.0,
                anchor_rng.gen::<f64>() * 200.0,
            )
        })
        .collect();

    let mut move_rng = split.stream("move", 0);
    let mut odo_rng = split.stream("odo", 0);
    let mut chan_rng = split.stream("chan", 0);
    let mut robot = RobotMotion::new(
        WaypointConfig::paper(area, 2.0),
        OdometryConfig::default(),
        Point::new(100.0, 100.0),
        &mut move_rng,
    );

    // CoCoA-style state.
    let mut bayes = BayesianLocalizer::new(GridConfig::new(area, 2.0));
    let mut cocoa_fix: Option<Point> = None;
    let mut odo_at_fix = robot.odometry_pose().position;

    // EKF state (initialized after the first Bayesian fix).
    let mut ekf: Option<EkfLocalizer> = None;
    let mut last_odo = robot.odometry_pose().position;

    let mut cocoa_stats = cocoa_suite::sim::stats::RunningStats::new();
    let mut ekf_stats = cocoa_suite::sim::stats::RunningStats::new();

    for t in 1..=DURATION_S {
        robot.step(1.0, &mut move_rng, &mut odo_rng);
        // EKF prediction from the odometry displacement this second.
        let odo_now = robot.odometry_pose().position;
        if let Some(f) = ekf.as_mut() {
            f.predict(odo_now - last_odo);
        }
        last_odo = odo_now;

        let in_window = t % PERIOD_S < WINDOW_S;
        if t % PERIOD_S == 0 {
            bayes.reset(); // window opens: throw the old posterior away
        }
        if in_window {
            // Each anchor sends one beacon per second of the window.
            for &a in &anchors {
                let d = robot.true_position().distance_to(a).max(0.3);
                let rssi = channel.sample_rssi(d, &mut chan_rng);
                if !channel.is_detectable(rssi) {
                    continue;
                }
                bayes.observe_beacon(&table, a, rssi);
                if let Some(f) = ekf.as_mut() {
                    f.update_from_beacon(&table, a, rssi);
                }
            }
        }
        if t % PERIOD_S == WINDOW_S - 1 {
            // Window closes: take the fix.
            if let Some(fix) = bayes.estimate() {
                cocoa_fix = Some(fix);
                odo_at_fix = odo_now;
                if ekf.is_none() {
                    // Bootstrap the EKF from the first Bayesian fix.
                    ekf = Some(EkfLocalizer::new(
                        EkfConfig {
                            initial_sigma_m: 10.0,
                            ..EkfConfig::default()
                        },
                        area,
                        Some(fix),
                    ));
                }
            }
        }

        // Score both estimators once warm.
        if t > PERIOD_S + WINDOW_S {
            if let Some(fix) = cocoa_fix {
                let est = fix + (odo_now - odo_at_fix);
                cocoa_stats.push(robot.true_position().distance_to(area.clamp(est)));
            }
            if let Some(f) = &ekf {
                ekf_stats.push(robot.true_position().distance_to(f.estimate()));
            }
        }
    }

    println!(
        "fusion comparison over {} s (T = {PERIOD_S} s, one robot, 25 anchors)\n",
        DURATION_S - PERIOD_S
    );
    println!(
        "{:<28}{:>10}{:>10}{:>10}",
        "estimator", "mean [m]", "std [m]", "max [m]"
    );
    println!(
        "{:<28}{:>10.2}{:>10.2}{:>10.2}",
        "CoCoA (reset + odometry)",
        cocoa_stats.mean(),
        cocoa_stats.std_dev(),
        cocoa_stats.max()
    );
    println!(
        "{:<28}{:>10.2}{:>10.2}{:>10.2}",
        "EKF (continuous fusion)",
        ekf_stats.mean(),
        ekf_stats.std_dev(),
        ekf_stats.max()
    );
    let f = ekf.expect("ekf bootstrapped");
    println!(
        "\nEKF fused {} ranges, gated {} ({} windows of beacons)",
        f.updates_applied(),
        f.updates_gated(),
        DURATION_S / PERIOD_S
    );
    println!("(both styles see identical beacons, odometry and channel noise)");
}
