//! Robot pose: planar position plus heading.

use serde::{Deserialize, Serialize};

use cocoa_net::geometry::{Point, Vec2};

/// Normalizes an angle to `(-π, π]`.
///
/// # Examples
///
/// ```
/// use cocoa_mobility::pose::normalize_angle;
/// use std::f64::consts::PI;
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = a % two_pi;
    if a <= -std::f64::consts::PI {
        a += two_pi;
    } else if a > std::f64::consts::PI {
        a -= two_pi;
    }
    a
}

/// A planar pose: where the robot is and which way it faces.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in the deployment plane, metres.
    pub position: Point,
    /// Heading, radians (atan2 convention: east = 0, CCW positive).
    pub heading: f64,
}

impl Pose {
    /// Creates a pose.
    pub fn new(position: Point, heading: f64) -> Self {
        Pose {
            position,
            heading: normalize_angle(heading),
        }
    }

    /// A pose at `position` facing east.
    pub fn at(position: Point) -> Self {
        Pose {
            position,
            heading: 0.0,
        }
    }

    /// The unit vector of the current heading.
    pub fn direction(&self) -> Vec2 {
        Vec2::from_angle(self.heading)
    }

    /// The pose after turning by `delta` radians in place.
    pub fn turned(&self, delta: f64) -> Pose {
        Pose::new(self.position, self.heading + delta)
    }

    /// The pose after advancing `distance` metres along the heading.
    pub fn advanced(&self, distance: f64) -> Pose {
        Pose {
            position: self.position + self.direction() * distance,
            heading: self.heading,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalize_covers_edge_cases() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert!((normalize_angle(PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-PI) - PI).abs() < 1e-12, "-π maps to +π");
        assert!((normalize_angle(2.0 * PI)).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn turn_and_advance() {
        let p = Pose::at(Point::ORIGIN);
        let north = p.turned(FRAC_PI_2);
        let moved = north.advanced(10.0);
        assert!((moved.position.x).abs() < 1e-9);
        assert!((moved.position.y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn heading_wraps_on_turn() {
        let p = Pose::new(Point::ORIGIN, PI - 0.1);
        let q = p.turned(0.2);
        assert!(q.heading < 0.0, "wrapped past π: {}", q.heading);
    }

    #[test]
    fn direction_is_unit() {
        for h in [0.0, 0.7, -2.1, 3.0] {
            assert!((Pose::new(Point::ORIGIN, h).direction().norm() - 1.0).abs() < 1e-12);
        }
    }
}
