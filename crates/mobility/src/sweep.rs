//! A systematic boustrophedon ("lawnmower") sweep: the motion pattern of
//! search-and-rescue and area-coverage tasks the paper's introduction
//! motivates, as an alternative to the random-task model.
//!
//! The robot traverses the area in parallel lanes, turning at the edges,
//! at a constant commanded speed. Unlike the random-task model there is
//! no randomness in the *path* — only the starting lane offset is drawn —
//! which makes sweeps a worst case for odometry (long straight legs, few
//! turns, then systematic 180° turn pairs) and a natural workload for the
//! coverage-mapping example.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cocoa_net::geometry::{Area, Point};
use cocoa_sim::dist::uniform;

use crate::pose::{normalize_angle, Pose};
use crate::waypoint::Segment;

/// Configuration of the sweep pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The area to cover.
    pub area: Area,
    /// Spacing between lanes, metres (sensor footprint).
    pub lane_spacing_m: f64,
    /// Constant commanded speed, m/s.
    pub speed: f64,
}

impl SweepConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the spacing or speed are not strictly positive, or the
    /// spacing exceeds the area height.
    pub fn new(area: Area, lane_spacing_m: f64, speed: f64) -> Self {
        assert!(lane_spacing_m > 0.0, "lane spacing must be positive");
        assert!(speed > 0.0, "speed must be positive");
        assert!(
            lane_spacing_m <= area.height(),
            "lane spacing exceeds the area"
        );
        SweepConfig {
            area,
            lane_spacing_m,
            speed,
        }
    }
}

/// The sweep state machine. Implements the same `(pose, segments)` step
/// interface as [`crate::waypoint::WaypointModel`], so odometers and
/// trajectories consume it unchanged.
///
/// # Examples
///
/// ```
/// use cocoa_mobility::sweep::{SweepConfig, SweepModel};
/// use cocoa_net::geometry::Area;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let cfg = SweepConfig::new(Area::square(100.0), 10.0, 1.0);
/// let mut rng = SeedSplitter::new(1).stream("sweep", 0);
/// let mut m = SweepModel::new(cfg, &mut rng);
/// for _ in 0..600 {
///     let (pose, _) = m.step(1.0);
///     assert!(cfg.area.contains(pose.position));
/// }
/// // (a wrap hop can cost up to one lane-length of travel)
/// assert!(m.lanes_completed() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepModel {
    config: SweepConfig,
    pose: Pose,
    /// +1 = sweeping east, −1 = sweeping west.
    direction: f64,
    /// Current lane's y coordinate.
    lane_y: f64,
    lanes_completed: u64,
}

impl SweepModel {
    /// Starts the sweep at a random lane on the western edge.
    pub fn new<R: Rng + ?Sized>(config: SweepConfig, rng: &mut R) -> Self {
        let lanes = (config.area.height() / config.lane_spacing_m)
            .floor()
            .max(1.0);
        let lane = uniform(0.0, lanes, rng).floor();
        let lane_y = config.area.y_min + (lane + 0.5) * config.lane_spacing_m;
        let lane_y = lane_y.min(config.area.y_max);
        SweepModel {
            config,
            pose: Pose::new(Point::new(config.area.x_min, lane_y), 0.0),
            direction: 1.0,
            lane_y,
            lanes_completed: 0,
        }
    }

    /// The robot's true pose.
    pub fn pose(&self) -> Pose {
        self.pose
    }

    /// Completed lane traversals.
    pub fn lanes_completed(&self) -> u64 {
        self.lanes_completed
    }

    fn next_lane_y(&self) -> f64 {
        let candidate = self.lane_y + self.config.lane_spacing_m;
        if candidate > self.config.area.y_max {
            // Wrap to the first lane: continuous patrol.
            self.config.area.y_min + self.config.lane_spacing_m / 2.0
        } else {
            candidate
        }
    }

    /// Advances the sweep by `dt` seconds. Returns the new pose and the
    /// turn+run segments performed (lane runs plus edge transitions).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn step(&mut self, dt: f64) -> (Pose, Vec<Segment>) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        let mut remaining = dt;
        let mut segments = Vec::with_capacity(1);
        while remaining > 1e-12 {
            let target_x = if self.direction > 0.0 {
                self.config.area.x_max
            } else {
                self.config.area.x_min
            };
            let along = (target_x - self.pose.position.x) * self.direction;
            if along > 1e-9 {
                // Run along the lane.
                let desired_heading = if self.direction > 0.0 {
                    0.0
                } else {
                    std::f64::consts::PI
                };
                let turn = normalize_angle(desired_heading - self.pose.heading);
                let seg_time = remaining.min(along / self.config.speed);
                let distance = self.config.speed * seg_time;
                self.pose =
                    Pose::new(self.pose.position, self.pose.heading + turn).advanced(distance);
                self.pose.position = self.config.area.clamp(self.pose.position);
                segments.push(Segment {
                    turn,
                    distance,
                    duration: seg_time,
                });
                remaining -= seg_time;
            } else {
                // Edge reached: hop to the next lane (modelled as a turn +
                // short cross run + turn, compressed into one transition
                // run at the same speed).
                let next_y = self.next_lane_y();
                let hop = (next_y - self.pose.position.y).abs();
                let desired_heading = if next_y >= self.pose.position.y {
                    std::f64::consts::FRAC_PI_2
                } else {
                    -std::f64::consts::FRAC_PI_2
                };
                let turn = normalize_angle(desired_heading - self.pose.heading);
                let seg_time = remaining.min(hop / self.config.speed);
                let distance = self.config.speed * seg_time;
                self.pose =
                    Pose::new(self.pose.position, self.pose.heading + turn).advanced(distance);
                self.pose.position = self.config.area.clamp(self.pose.position);
                segments.push(Segment {
                    turn,
                    distance,
                    duration: seg_time,
                });
                remaining -= seg_time;
                if (self.pose.position.y - next_y).abs() < 1e-9 {
                    // Hop finished: the lane behind us is complete.
                    self.lanes_completed += 1;
                    self.lane_y = next_y;
                    self.direction = -self.direction;
                }
                if seg_time <= 0.0 {
                    // Zero-length hop (wrap landed on the same lane):
                    // flip and continue to avoid spinning in place.
                    self.lanes_completed += 1;
                    self.lane_y = next_y;
                    self.direction = -self.direction;
                    break;
                }
            }
        }
        (self.pose, segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::rng::SeedSplitter;

    fn model(seed: u64) -> SweepModel {
        let mut rng = SeedSplitter::new(seed).stream("sweep", 0);
        SweepModel::new(SweepConfig::new(Area::square(100.0), 10.0, 2.0), &mut rng)
    }

    #[test]
    fn stays_in_area_and_progresses() {
        let mut m = model(1);
        let area = Area::square(100.0);
        for _ in 0..2_000 {
            let (pose, _) = m.step(1.0);
            assert!(area.contains(pose.position));
        }
        assert!(m.lanes_completed() >= 10, "lanes {}", m.lanes_completed());
    }

    #[test]
    fn segments_account_for_time() {
        let mut m = model(2);
        for _ in 0..300 {
            let (_, segments) = m.step(1.0);
            let total: f64 = segments.iter().map(|s| s.duration).sum();
            assert!(
                (total - 1.0).abs() < 1e-9 || total <= 1.0,
                "covered {total}"
            );
        }
    }

    #[test]
    fn alternates_direction_between_lanes() {
        let mut m = model(3);
        let mut directions = Vec::new();
        let mut last_lanes = 0;
        for _ in 0..600 {
            m.step(1.0);
            if m.lanes_completed() > last_lanes {
                last_lanes = m.lanes_completed();
                directions.push(m.direction);
            }
        }
        assert!(directions.len() >= 4);
        for w in directions.windows(2) {
            assert_ne!(w[0], w[1], "direction must flip per lane");
        }
    }

    #[test]
    fn odometer_consumes_sweep_segments() {
        use crate::odometry::{Odometer, OdometryConfig};
        let mut m = model(4);
        let mut odo = Odometer::new(OdometryConfig::noiseless(), m.pose());
        let mut rng = SeedSplitter::new(4).stream("odo", 0);
        for _ in 0..500 {
            let (pose, segments) = m.step(1.0);
            for s in &segments {
                odo.observe(s, &mut rng);
            }
            let err = pose.position.distance_to(odo.estimated_pose().position);
            assert!(
                err < 1e-6,
                "noiseless odometer must track the sweep, err {err}"
            );
        }
    }

    #[test]
    fn sweep_covers_all_lanes_eventually() {
        let mut m = model(5);
        let mut lanes_seen = std::collections::HashSet::new();
        for _ in 0..3_000 {
            m.step(1.0);
            lanes_seen.insert((m.pose().position.y / 10.0).floor() as i64);
        }
        assert!(lanes_seen.len() >= 9, "covered {} lanes", lanes_seen.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = model(6);
        let mut b = model(6);
        for _ in 0..200 {
            assert_eq!(a.step(1.0).0, b.step(1.0).0);
        }
    }

    #[test]
    #[should_panic(expected = "lane spacing")]
    fn zero_spacing_rejected() {
        let _ = SweepConfig::new(Area::square(100.0), 0.0, 1.0);
    }
}
