//! # cocoa-mobility — robot movement and odometry substrate
//!
//! Implements the two motion-related models the paper adds to Glomosim
//! (Section 3):
//!
//! - [`waypoint`]: the random-task movement model — move to a uniformly
//!   random destination at a speed drawn uniformly from `[0.1, v_max]`,
//!   then receive a new command;
//! - [`odometry`]: dead reckoning with zero-mean Gaussian displacement
//!   error (σ = 0.1 m/s) and angular error (σ = 10°);
//! - [`motion`]: the combined truth + belief pipeline per robot;
//! - [`trajectory`]: recording of true vs estimated paths (paper Fig. 5).
//!
//! # Examples
//!
//! ```
//! use cocoa_mobility::prelude::*;
//! use cocoa_net::geometry::{Area, Point};
//! use cocoa_sim::rng::SeedSplitter;
//!
//! let split = SeedSplitter::new(1);
//! let mut move_rng = split.stream("move", 0);
//! let mut odo_rng = split.stream("odo", 0);
//! let mut robot = RobotMotion::new(
//!     WaypointConfig::paper(Area::square(200.0), 2.0),
//!     OdometryConfig::default(),
//!     Point::new(100.0, 100.0),
//!     &mut move_rng,
//! );
//! for _ in 0..60 {
//!     robot.step(1.0, &mut move_rng, &mut odo_rng);
//! }
//! // After a minute of motion the dead-reckoned estimate has drifted.
//! assert!(robot.odometry_error() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod motion;
pub mod odometry;
pub mod pose;
pub mod sweep;
pub mod trajectory;
pub mod waypoint;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::motion::RobotMotion;
    pub use crate::odometry::{Odometer, OdometryConfig};
    pub use crate::pose::Pose;
    pub use crate::sweep::{SweepConfig, SweepModel};
    pub use crate::trajectory::{Trajectory, TrajectorySample};
    pub use crate::waypoint::{Segment, WaypointConfig, WaypointModel};
}
