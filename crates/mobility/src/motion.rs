//! The combined true-motion + odometry pipeline for one robot.
//!
//! Couples a [`WaypointModel`] (ground truth) with an [`Odometer`]
//! (dead-reckoned belief) using separate RNG streams, so enabling or
//! disabling odometry noise never perturbs the trajectories — a property
//! the cross-experiment comparisons (paper Figs. 4, 6, 7) rely on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cocoa_net::geometry::{Point, Vec2};

use crate::odometry::{Odometer, OdometryConfig};
use crate::pose::Pose;
use crate::waypoint::{WaypointConfig, WaypointModel};

/// One robot's motion state: where it really is and where its odometer
/// believes it is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobotMotion {
    waypoints: WaypointModel,
    odometer: Odometer,
}

impl RobotMotion {
    /// Creates the motion state with the robot at `start`, odometer
    /// initialized to the true pose (as in the paper's odometry-only
    /// experiment).
    pub fn new<R: Rng + ?Sized>(
        waypoint_config: WaypointConfig,
        odometry_config: OdometryConfig,
        start: Point,
        move_rng: &mut R,
    ) -> Self {
        let waypoints = WaypointModel::new(waypoint_config, start, move_rng);
        let odometer = Odometer::new(odometry_config, waypoints.pose());
        RobotMotion {
            waypoints,
            odometer,
        }
    }

    /// Reassembles motion state from checkpointed parts (see
    /// [`WaypointModel::from_checkpoint`] and [`Odometer::from_checkpoint`]).
    pub fn from_parts(waypoints: WaypointModel, odometer: Odometer) -> Self {
        RobotMotion {
            waypoints,
            odometer,
        }
    }

    /// Advances true motion by `dt` seconds and feeds the performed
    /// segments through the noisy odometer.
    pub fn step<R1: Rng + ?Sized, R2: Rng + ?Sized>(
        &mut self,
        dt: f64,
        move_rng: &mut R1,
        odo_rng: &mut R2,
    ) {
        let (_, segments) = self.waypoints.step(dt, move_rng);
        for s in &segments {
            self.odometer.observe(s, odo_rng);
        }
    }

    /// Ground-truth pose.
    pub fn true_pose(&self) -> Pose {
        self.waypoints.pose()
    }

    /// Ground-truth position.
    pub fn true_position(&self) -> Point {
        self.waypoints.position()
    }

    /// Dead-reckoned pose.
    pub fn odometry_pose(&self) -> Pose {
        self.odometer.estimated_pose()
    }

    /// Distance between truth and the dead-reckoned estimate, metres.
    pub fn odometry_error(&self) -> f64 {
        self.true_position()
            .distance_to(self.odometer.estimated_pose().position)
    }

    /// Resets the odometer estimate (e.g. after an RF fix).
    pub fn reset_odometry_to(&mut self, pose: Pose) {
        self.odometer.reset_to(pose);
    }

    /// Current true velocity, m/s.
    pub fn velocity(&self) -> Vec2 {
        self.waypoints.velocity()
    }

    /// Distance remaining to the current waypoint (`d_rest`), metres.
    pub fn d_rest(&self) -> f64 {
        self.waypoints.d_rest()
    }

    /// Read-only access to the waypoint model.
    pub fn waypoints(&self) -> &WaypointModel {
        &self.waypoints
    }

    /// Read-only access to the odometer.
    pub fn odometer(&self) -> &Odometer {
        &self.odometer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::geometry::Area;
    use cocoa_sim::rng::SeedSplitter;

    fn motion(seed: u64) -> (RobotMotion, cocoa_sim::rng::DetRng, cocoa_sim::rng::DetRng) {
        let split = SeedSplitter::new(seed);
        let mut move_rng = split.stream("move", 0);
        let odo_rng = split.stream("odo", 0);
        let m = RobotMotion::new(
            WaypointConfig::paper(Area::square(200.0), 2.0),
            OdometryConfig::default(),
            Point::new(100.0, 100.0),
            &mut move_rng,
        );
        (m, move_rng, odo_rng)
    }

    #[test]
    fn starts_with_zero_error() {
        let (m, _, _) = motion(1);
        assert_eq!(m.odometry_error(), 0.0);
    }

    #[test]
    fn error_grows_with_motion() {
        let (mut m, mut mr, mut or) = motion(2);
        for _ in 0..600 {
            m.step(1.0, &mut mr, &mut or);
        }
        assert!(m.odometry_error() > 1.0, "error {}", m.odometry_error());
    }

    #[test]
    fn odometry_noise_does_not_perturb_truth() {
        // Same seed, noisy vs noiseless odometry: identical true paths.
        let split = SeedSplitter::new(3);
        let mut mr1 = split.stream("move", 0);
        let mut or1 = split.stream("odo", 0);
        let mut noisy = RobotMotion::new(
            WaypointConfig::paper(Area::square(200.0), 2.0),
            OdometryConfig::default(),
            Point::new(50.0, 50.0),
            &mut mr1,
        );
        let mut mr2 = split.stream("move", 0);
        let mut or2 = split.stream("odo", 0);
        let mut clean = RobotMotion::new(
            WaypointConfig::paper(Area::square(200.0), 2.0),
            OdometryConfig::noiseless(),
            Point::new(50.0, 50.0),
            &mut mr2,
        );
        for _ in 0..300 {
            noisy.step(1.0, &mut mr1, &mut or1);
            clean.step(1.0, &mut mr2, &mut or2);
        }
        assert_eq!(noisy.true_pose(), clean.true_pose());
        assert!(clean.odometry_error() < 1e-6);
    }

    #[test]
    fn reset_sets_estimate() {
        let (mut m, mut mr, mut or) = motion(4);
        for _ in 0..100 {
            m.step(1.0, &mut mr, &mut or);
        }
        let truth = m.true_pose();
        m.reset_odometry_to(truth);
        assert_eq!(m.odometry_error(), 0.0);
    }
}
