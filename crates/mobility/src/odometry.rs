//! The odometry model (paper Section 3).
//!
//! > "We assume odometry displacement error to be zero-mean Gaussian with
//! > standard deviation 0.1 m/s and assume the angular odometry error to
//! > also be zero-mean Gaussian with standard deviation 10°."
//!
//! The odometer dead-reckons: it starts from a known pose and integrates
//! noisy measurements of each turn+run segment the robot performs.
//!
//! - The **displacement** error scales with `sqrt(duration)` so its
//!   statistics are independent of the simulation tick (at the paper's
//!   1 s tick the per-second sigma is exactly the quoted 0.1 m);
//! - the **angular** error is drawn once per *course change*, following
//!   the paper's Fig. 5 semantics ("when the robot turns by θ … it
//!   estimates a turn by θ′"): wheel odometry measures turns, and each
//!   measured turn is off by a zero-mean Gaussian with σ = 10°.
//!
//! This is the component whose unbounded error accumulation motivates the
//! whole paper (its Fig. 4 and Fig. 5): heading errors compound across
//! turns, and displacement errors integrate, so the dead-reckoned path
//! diverges without bound.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cocoa_sim::dist::Normal;

use crate::pose::Pose;
use crate::waypoint::Segment;

/// Odometry noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdometryConfig {
    /// Displacement error sigma, metres per √second of travel (paper: 0.1).
    pub displacement_sigma: f64,
    /// Angular error sigma per course change, radians (paper: 10°).
    pub angular_sigma: f64,
    /// Continuous heading drift sigma while moving, radians per √second —
    /// wheel slip and encoder mismatch on a differential drive curve the
    /// "straight" runs too. The default (0.8°/√s) is calibrated so that
    /// the 30-minute odometry-only drift reaches the ~100 m of the paper's
    /// Fig. 4 while a 100 s CoCoA period accrues only a few degrees.
    pub heading_drift_sigma: f64,
}

impl Default for OdometryConfig {
    fn default() -> Self {
        OdometryConfig {
            displacement_sigma: 0.1,
            angular_sigma: 10f64.to_radians(),
            heading_drift_sigma: 0.8f64.to_radians(),
        }
    }
}

impl OdometryConfig {
    /// A perfect odometer (for tests and ablations).
    pub fn noiseless() -> Self {
        OdometryConfig {
            displacement_sigma: 0.0,
            angular_sigma: 0.0,
            heading_drift_sigma: 0.0,
        }
    }
}

/// A dead-reckoning odometer.
///
/// # Examples
///
/// ```
/// use cocoa_mobility::odometry::{Odometer, OdometryConfig};
/// use cocoa_mobility::pose::Pose;
/// use cocoa_mobility::waypoint::Segment;
/// use cocoa_net::geometry::Point;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let mut odo = Odometer::new(OdometryConfig::default(), Pose::at(Point::ORIGIN));
/// let mut rng = SeedSplitter::new(3).stream("odo", 0);
/// odo.observe(&Segment { turn: 0.0, distance: 1.0, duration: 1.0 }, &mut rng);
/// let est = odo.estimated_pose();
/// assert!((est.position.x - 1.0).abs() < 1.0); // ~1 m east, noisy
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Odometer {
    config: OdometryConfig,
    estimate: Pose,
    distance_integrated: f64,
    observations: u64,
}

impl Odometer {
    /// Creates an odometer initialized at `initial` (the paper provides
    /// robots with their true initial position in the odometry-only
    /// experiment).
    pub fn new(config: OdometryConfig, initial: Pose) -> Self {
        Odometer {
            config,
            estimate: initial,
            distance_integrated: 0.0,
            observations: 0,
        }
    }

    /// The dead-reckoned pose estimate.
    pub fn estimated_pose(&self) -> Pose {
        self.estimate
    }

    /// Total distance integrated so far, metres (odometer reading).
    pub fn distance_integrated(&self) -> f64 {
        self.distance_integrated
    }

    /// Number of segments observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Resets the estimate to an externally supplied pose. CoCoA does this
    /// at the end of every transmit period with the RF fix.
    pub fn reset_to(&mut self, pose: Pose) {
        self.estimate = pose;
    }

    /// The odometer's complete state as checkpoint data.
    pub fn checkpoint(&self) -> OdometerCheckpoint {
        OdometerCheckpoint {
            config: self.config,
            estimate: self.estimate,
            distance_integrated: self.distance_integrated,
            observations: self.observations,
        }
    }

    /// Rebuilds an odometer from checkpointed state.
    pub fn from_checkpoint(c: OdometerCheckpoint) -> Self {
        Odometer {
            config: c.config,
            estimate: c.estimate,
            distance_integrated: c.distance_integrated,
            observations: c.observations,
        }
    }

    /// Feeds one true motion segment through the noisy sensors and
    /// integrates the measurement into the estimate. The angular noise
    /// fires only on segments that actually contain a course change.
    pub fn observe<R: Rng + ?Sized>(&mut self, segment: &Segment, rng: &mut R) {
        let scale = segment.duration.max(0.0).sqrt();
        let turned = segment.turn.abs() > 1e-9;
        let mut measured_turn = if self.config.angular_sigma > 0.0 && turned {
            segment.turn + Normal::new(0.0, self.config.angular_sigma).sample(rng)
        } else {
            segment.turn
        };
        if self.config.heading_drift_sigma > 0.0 && segment.distance > 1e-9 {
            measured_turn += Normal::new(0.0, self.config.heading_drift_sigma * scale).sample(rng);
        }
        let measured_distance = if self.config.displacement_sigma > 0.0 && segment.duration > 0.0 {
            segment.distance + Normal::new(0.0, self.config.displacement_sigma * scale).sample(rng)
        } else {
            segment.distance
        };
        self.estimate = self
            .estimate
            .turned(measured_turn)
            .advanced(measured_distance);
        self.distance_integrated += measured_distance;
        self.observations += 1;
    }
}

/// The odometer's complete state as checkpoint data (see
/// [`Odometer::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdometerCheckpoint {
    /// Odometry noise parameters.
    pub config: OdometryConfig,
    /// Current dead-reckoned pose estimate.
    pub estimate: Pose,
    /// Total distance integrated so far, metres.
    pub distance_integrated: f64,
    /// Segments observed so far.
    pub observations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waypoint::{WaypointConfig, WaypointModel};
    use cocoa_net::geometry::{Area, Point};
    use cocoa_sim::rng::SeedSplitter;

    #[test]
    fn noiseless_odometer_tracks_exactly() {
        let mut rng = SeedSplitter::new(1).stream("wp", 0);
        let cfg = WaypointConfig::paper(Area::square(200.0), 2.0);
        let mut model = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
        let mut odo = Odometer::new(OdometryConfig::noiseless(), model.pose());
        let mut odo_rng = SeedSplitter::new(1).stream("odo", 0);
        for _ in 0..600 {
            let (pose, segments) = model.step(1.0, &mut rng);
            for s in &segments {
                odo.observe(s, &mut odo_rng);
            }
            let err = pose.position.distance_to(odo.estimated_pose().position);
            assert!(err < 1e-6, "noiseless odometry drifted by {err} m");
        }
    }

    #[test]
    fn error_accumulates_over_time() {
        // The paper's core observation (Fig. 4): odometry-only error grows
        // without bound. Average over several robots to dodge lucky seeds.
        let mut total_early = 0.0;
        let mut total_late = 0.0;
        let robots = 10;
        for r in 0..robots {
            let mut rng = SeedSplitter::new(40 + r).stream("wp", r);
            let mut odo_rng = SeedSplitter::new(40 + r).stream("odo", r);
            let cfg = WaypointConfig::paper(Area::square(200.0), 2.0);
            let mut model = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
            let mut odo = Odometer::new(OdometryConfig::default(), model.pose());
            let mut early = 0.0;
            for tick in 0..1800 {
                let (pose, segments) = model.step(1.0, &mut rng);
                for s in &segments {
                    odo.observe(s, &mut odo_rng);
                }
                if tick == 59 {
                    early = pose.position.distance_to(odo.estimated_pose().position);
                }
            }
            let late = model
                .pose()
                .position
                .distance_to(odo.estimated_pose().position);
            total_early += early;
            total_late += late;
        }
        let early = total_early / robots as f64;
        let late = total_late / robots as f64;
        assert!(
            late > early,
            "error should grow: {early} m @1min vs {late} m @30min"
        );
        assert!(late > 50.0, "30-minute drift should be large, got {late} m");
    }

    #[test]
    fn reset_clears_accumulated_error() {
        let mut rng = SeedSplitter::new(2).stream("wp", 0);
        let mut odo_rng = SeedSplitter::new(2).stream("odo", 0);
        let cfg = WaypointConfig::paper(Area::square(200.0), 2.0);
        let mut model = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
        let mut odo = Odometer::new(OdometryConfig::default(), model.pose());
        for _ in 0..300 {
            let (_, segments) = model.step(1.0, &mut rng);
            for s in &segments {
                odo.observe(s, &mut odo_rng);
            }
        }
        odo.reset_to(model.pose());
        let err = model
            .pose()
            .position
            .distance_to(odo.estimated_pose().position);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn displacement_noise_statistics() {
        // Straight 1 m/s motion for n seconds: displacement errors are
        // N(0, 0.1) per second, so the final error sigma is 0.1 * sqrt(n).
        let n = 400;
        let trials = 200;
        let mut final_errors = Vec::new();
        for t in 0..trials {
            let mut rng = SeedSplitter::new(900 + t).stream("odo", 0);
            let mut odo = Odometer::new(
                OdometryConfig {
                    displacement_sigma: 0.1,
                    angular_sigma: 0.0,
                    heading_drift_sigma: 0.0,
                },
                Pose::at(Point::ORIGIN),
            );
            for _ in 0..n {
                odo.observe(
                    &Segment {
                        turn: 0.0,
                        distance: 1.0,
                        duration: 1.0,
                    },
                    &mut rng,
                );
            }
            final_errors.push(odo.estimated_pose().position.x - n as f64);
        }
        let mean = final_errors.iter().sum::<f64>() / trials as f64;
        let sd =
            (final_errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / trials as f64).sqrt();
        let expected = 0.1 * (n as f64).sqrt(); // 2.0
        assert!(mean.abs() < 0.5, "bias {mean}");
        assert!((sd - expected).abs() < 0.4, "sd {sd}, expected {expected}");
    }

    #[test]
    fn observations_counted_and_distance_integrated() {
        let mut rng = SeedSplitter::new(3).stream("odo", 0);
        let mut odo = Odometer::new(OdometryConfig::noiseless(), Pose::at(Point::ORIGIN));
        for _ in 0..10 {
            odo.observe(
                &Segment {
                    turn: 0.1,
                    distance: 2.0,
                    duration: 1.0,
                },
                &mut rng,
            );
        }
        assert_eq!(odo.observations(), 10);
        assert!((odo.distance_integrated() - 20.0).abs() < 1e-9);
    }
}
