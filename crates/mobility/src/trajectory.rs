//! Trajectory recording: the data behind paper Fig. 5 (an example odometry
//! drift path) and the per-second error series of Figs. 4, 6, 7.

use serde::{Deserialize, Serialize};

use cocoa_net::geometry::Point;
use cocoa_sim::time::SimTime;

/// One recorded sample: the truth and an estimate at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// When the sample was taken.
    pub time: SimTime,
    /// Ground-truth position.
    pub true_position: Point,
    /// Estimated position.
    pub estimated_position: Point,
}

impl TrajectorySample {
    /// Localization error of this sample, metres.
    pub fn error(&self) -> f64 {
        self.true_position.distance_to(self.estimated_position)
    }
}

/// An append-only record of one robot's true vs estimated path.
///
/// # Examples
///
/// ```
/// use cocoa_mobility::trajectory::Trajectory;
/// use cocoa_net::geometry::Point;
/// use cocoa_sim::time::SimTime;
///
/// let mut t = Trajectory::new();
/// t.record(SimTime::ZERO, Point::new(0.0, 0.0), Point::new(3.0, 4.0));
/// assert_eq!(t.max_error(), 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    samples: Vec<TrajectorySample>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded sample.
    pub fn record(&mut self, time: SimTime, true_position: Point, estimated_position: Point) {
        if let Some(last) = self.samples.last() {
            assert!(time >= last.time, "trajectory samples must be time-ordered");
        }
        self.samples.push(TrajectorySample {
            time,
            true_position,
            estimated_position,
        });
    }

    /// The recorded samples, oldest first.
    pub fn samples(&self) -> &[TrajectorySample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean localization error over all samples, metres (0 if empty).
    pub fn mean_error(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.error()).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest localization error over all samples, metres (0 if empty).
    pub fn max_error(&self) -> f64 {
        self.samples.iter().map(|s| s.error()).fold(0.0, f64::max)
    }

    /// The error of the most recent sample, if any.
    pub fn last_error(&self) -> Option<f64> {
        self.samples.last().map(|s| s.error())
    }

    /// Renders the trajectory as CSV (`t_s,true_x,true_y,est_x,est_y,error`),
    /// the format the examples print for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,true_x,true_y,est_x,est_y,error_m\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.1},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                s.time.as_secs_f64(),
                s.true_position.x,
                s.true_position.y,
                s.estimated_position.x,
                s.estimated_position.y,
                s.error()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn errors_aggregate() {
        let mut tr = Trajectory::new();
        tr.record(t(0), Point::new(0.0, 0.0), Point::new(0.0, 0.0));
        tr.record(t(1), Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        tr.record(t(2), Point::new(0.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(tr.max_error(), 5.0);
        assert!((tr.mean_error() - 2.0).abs() < 1e-12);
        assert_eq!(tr.last_error(), Some(1.0));
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn empty_trajectory_is_well_behaved() {
        let tr = Trajectory::new();
        assert!(tr.is_empty());
        assert_eq!(tr.mean_error(), 0.0);
        assert_eq!(tr.max_error(), 0.0);
        assert_eq!(tr.last_error(), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut tr = Trajectory::new();
        tr.record(t(5), Point::ORIGIN, Point::ORIGIN);
        tr.record(t(4), Point::ORIGIN, Point::ORIGIN);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trajectory::new();
        tr.record(t(0), Point::new(1.0, 2.0), Point::new(1.5, 2.0));
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("t_s,"));
        assert!(lines[1].starts_with("0.0,1.000,2.000,1.500"));
    }
}
