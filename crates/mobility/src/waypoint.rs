//! The paper's movement model (Section 3, "Movement and Odometry Models").
//!
//! > "each robot is given a random command to move to a random destination
//! > in the given area and starts moving towards the chosen destination
//! > with a speed chosen uniformly between 0.1 and v_max meters/second.
//! > Once the robot reaches the destination, it is given a new random
//! > command."
//!
//! This models robots performing tasks: travel somewhere, do a task, travel
//! on. There is no pause time in the paper's description, so there is none
//! here.
//!
//! The model also exposes the mobility knowledge MRMM prunes with: the
//! robot's current velocity vector and `d_rest`, the distance it will still
//! travel before its next course change.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cocoa_net::geometry::{Area, Point, Vec2};
use cocoa_sim::dist::uniform;

use crate::pose::{normalize_angle, Pose};

/// Configuration of the random-task movement model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointConfig {
    /// The deployment area destinations are drawn from.
    pub area: Area,
    /// Minimum commanded speed, m/s (paper: 0.1).
    pub v_min: f64,
    /// Maximum commanded speed, m/s (paper varies 0.5 and 2.0).
    pub v_max: f64,
}

impl WaypointConfig {
    /// The paper's configuration over `area` with maximum speed `v_max`.
    ///
    /// # Panics
    ///
    /// Panics if `v_max <= 0.1` (the paper's fixed lower bound).
    pub fn paper(area: Area, v_max: f64) -> Self {
        assert!(v_max > 0.1, "v_max must exceed the 0.1 m/s lower bound");
        WaypointConfig {
            area,
            v_min: 0.1,
            v_max,
        }
    }
}

/// One primitive motion the robot performed during a step: an in-place turn
/// followed by a straight run. This is exactly the decomposition the
/// odometry model applies its two noise terms to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Heading change at the start of the segment, radians.
    pub turn: f64,
    /// Straight-line distance travelled, metres.
    pub distance: f64,
    /// Wall-clock duration of the segment, seconds.
    pub duration: f64,
}

/// The per-robot movement state machine.
///
/// # Examples
///
/// ```
/// use cocoa_mobility::waypoint::{WaypointConfig, WaypointModel};
/// use cocoa_net::geometry::{Area, Point};
/// use cocoa_sim::rng::SeedSplitter;
///
/// let cfg = WaypointConfig::paper(Area::square(200.0), 2.0);
/// let mut rng = SeedSplitter::new(9).stream("mobility", 0);
/// let mut model = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
/// let (pose, segments) = model.step(1.0, &mut rng);
/// assert!(cfg.area.contains(pose.position));
/// assert!(!segments.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaypointModel {
    config: WaypointConfig,
    pose: Pose,
    destination: Point,
    speed: f64,
    legs_completed: u64,
}

impl WaypointModel {
    /// Creates the model with the robot at `start`, immediately issuing its
    /// first random command.
    ///
    /// # Panics
    ///
    /// Panics if `start` lies outside the configured area.
    pub fn new<R: Rng + ?Sized>(config: WaypointConfig, start: Point, rng: &mut R) -> Self {
        assert!(
            config.area.contains(start),
            "start {start} outside deployment area"
        );
        let mut m = WaypointModel {
            config,
            pose: Pose::at(start),
            destination: start,
            speed: config.v_min,
            legs_completed: 0,
        };
        m.issue_command(rng);
        // Face the first destination immediately so heading is meaningful.
        m.pose.heading = m.pose.position.bearing_to(m.destination);
        m
    }

    fn issue_command<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let a = self.config.area;
        self.destination = Point::new(
            uniform(a.x_min, a.x_max, rng),
            uniform(a.y_min, a.y_max, rng),
        );
        self.speed = if self.config.v_min < self.config.v_max {
            uniform(self.config.v_min, self.config.v_max, rng)
        } else {
            // Degenerate range: a fixed commanded speed, including the
            // static deployment v_min = v_max = 0. The draw still happens
            // so the random stream stays aligned across configurations.
            let _: f64 = rng.gen();
            self.config.v_min
        };
    }

    /// The robot's true pose.
    pub fn pose(&self) -> Pose {
        self.pose
    }

    /// The robot's true position (shorthand).
    pub fn position(&self) -> Point {
        self.pose.position
    }

    /// Current commanded speed, m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Current destination.
    pub fn destination(&self) -> Point {
        self.destination
    }

    /// Velocity vector, m/s.
    pub fn velocity(&self) -> Vec2 {
        match (self.destination - self.pose.position).normalized() {
            Some(dir) => dir * self.speed,
            None => Vec2::ZERO,
        }
    }

    /// Distance remaining to the current destination (`d_rest` in MRMM),
    /// metres.
    pub fn d_rest(&self) -> f64 {
        self.pose.position.distance_to(self.destination)
    }

    /// Number of waypoint legs completed so far.
    pub fn legs_completed(&self) -> u64 {
        self.legs_completed
    }

    /// The model's complete state as checkpoint data.
    pub fn checkpoint(&self) -> WaypointCheckpoint {
        WaypointCheckpoint {
            config: self.config,
            pose: self.pose,
            destination: self.destination,
            speed: self.speed,
            legs_completed: self.legs_completed,
        }
    }

    /// Rebuilds a model from checkpointed state without consuming any RNG
    /// draws (unlike [`WaypointModel::new`], which issues the first command).
    pub fn from_checkpoint(c: WaypointCheckpoint) -> Self {
        WaypointModel {
            config: c.config,
            pose: c.pose,
            destination: c.destination,
            speed: c.speed,
            legs_completed: c.legs_completed,
        }
    }

    /// Advances the robot by `dt` seconds, returning the new true pose and
    /// the turn+run segments performed (one per leg touched during the
    /// step; two or more when a destination is reached mid-step).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> (Pose, Vec<Segment>) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
        let mut remaining = dt;
        let mut segments = Vec::with_capacity(1);
        while remaining > 1e-12 {
            let to_dest = self.d_rest();
            let desired_heading = if to_dest > 1e-9 {
                self.pose.position.bearing_to(self.destination)
            } else {
                self.pose.heading
            };
            let turn = normalize_angle(desired_heading - self.pose.heading);
            let reach_time = if self.speed > 0.0 {
                to_dest / self.speed
            } else {
                f64::INFINITY
            };
            let seg_time = remaining.min(reach_time);
            let distance = self.speed * seg_time;
            self.pose = Pose::new(self.pose.position, self.pose.heading + turn).advanced(distance);
            // Numerical guard: never leave the deployment area.
            self.pose.position = self.config.area.clamp(self.pose.position);
            segments.push(Segment {
                turn,
                distance,
                duration: seg_time,
            });
            remaining -= seg_time;
            if reach_time <= remaining + 1e-12 || self.d_rest() < 1e-9 {
                // Destination reached: task done, new command.
                self.legs_completed += 1;
                self.pose.position = self.config.area.clamp(self.destination);
                self.issue_command(rng);
            }
            if seg_time <= 0.0 {
                break;
            }
        }
        (self.pose, segments)
    }
}

/// The waypoint model's complete state as checkpoint data (see
/// [`WaypointModel::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointCheckpoint {
    /// Movement-model configuration.
    pub config: WaypointConfig,
    /// Current true pose.
    pub pose: Pose,
    /// Current commanded destination.
    pub destination: Point,
    /// Current commanded speed, m/s.
    pub speed: f64,
    /// Waypoint legs completed so far.
    pub legs_completed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::rng::SeedSplitter;

    fn model(seed: u64, v_max: f64) -> (WaypointModel, cocoa_sim::rng::DetRng) {
        let mut rng = SeedSplitter::new(seed).stream("wp", 0);
        let cfg = WaypointConfig::paper(Area::square(200.0), v_max);
        let m = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
        (m, rng)
    }

    #[test]
    fn stays_inside_area() {
        let (mut m, mut rng) = model(1, 2.0);
        for _ in 0..5_000 {
            let (pose, _) = m.step(1.0, &mut rng);
            assert!(
                Area::square(200.0).contains(pose.position),
                "escaped at {}",
                pose.position
            );
        }
    }

    #[test]
    fn speed_respects_bounds() {
        let (mut m, mut rng) = model(2, 0.5);
        for _ in 0..2_000 {
            m.step(1.0, &mut rng);
            assert!(
                (0.1..=0.5).contains(&m.speed()),
                "speed {} out of bounds",
                m.speed()
            );
        }
    }

    #[test]
    fn distance_per_step_bounded_by_speed() {
        let (mut m, mut rng) = model(3, 2.0);
        for _ in 0..1_000 {
            let before = m.position();
            let (pose, _) = m.step(1.0, &mut rng);
            let moved = before.distance_to(pose.position);
            assert!(moved <= 2.0 + 1e-9, "moved {moved} m in 1 s at v_max=2");
        }
    }

    #[test]
    fn eventually_completes_legs() {
        let (mut m, mut rng) = model(4, 2.0);
        for _ in 0..1_800 {
            m.step(1.0, &mut rng);
        }
        assert!(
            m.legs_completed() >= 5,
            "expected several tasks in 30 min, got {}",
            m.legs_completed()
        );
    }

    #[test]
    fn segments_account_for_step_duration() {
        let (mut m, mut rng) = model(5, 2.0);
        for _ in 0..500 {
            let (_, segments) = m.step(1.0, &mut rng);
            let total: f64 = segments.iter().map(|s| s.duration).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "segment durations sum to {total}"
            );
        }
    }

    #[test]
    fn segment_distances_match_displacement_on_straight_legs() {
        let (mut m, mut rng) = model(6, 1.0);
        for _ in 0..200 {
            let before = m.position();
            let (pose, segments) = m.step(1.0, &mut rng);
            if segments.len() == 1 {
                let direct = before.distance_to(pose.position);
                assert!((segments[0].distance - direct).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn d_rest_shrinks_along_a_leg() {
        let (mut m, mut rng) = model(7, 1.0);
        let mut last = m.d_rest();
        for _ in 0..20 {
            let legs_before = m.legs_completed();
            m.step(0.5, &mut rng);
            if m.legs_completed() == legs_before {
                assert!(m.d_rest() < last + 1e-9);
            }
            last = m.d_rest();
        }
    }

    #[test]
    fn velocity_points_at_destination() {
        let (m, _) = model(8, 2.0);
        let v = m.velocity();
        let dir = (m.destination() - m.position()).normalized().unwrap();
        assert!((v.normalized().unwrap().dot(dir) - 1.0).abs() < 1e-9);
        assert!((v.norm() - m.speed()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, mut rng_a) = model(9, 2.0);
        let (mut b, mut rng_b) = model(9, 2.0);
        for _ in 0..100 {
            let (pa, _) = a.step(1.0, &mut rng_a);
            let (pb, _) = b.step(1.0, &mut rng_b);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn static_config_never_moves_and_reports_zero_velocity() {
        let mut rng = SeedSplitter::new(11).stream("wp", 0);
        let cfg = WaypointConfig {
            area: Area::square(200.0),
            v_min: 0.0,
            v_max: 0.0,
        };
        let start = Point::new(50.0, 60.0);
        let mut m = WaypointModel::new(cfg, start, &mut rng);
        for _ in 0..100 {
            let (pose, segments) = m.step(1.0, &mut rng);
            assert_eq!(pose.position, start, "static robot drifted");
            let total: f64 = segments.iter().map(|s| s.distance).sum();
            assert_eq!(total, 0.0);
        }
        assert_eq!(m.velocity(), Vec2::ZERO);
        assert_eq!(m.legs_completed(), 0);
    }

    #[test]
    fn fixed_speed_config_commands_that_speed() {
        let mut rng = SeedSplitter::new(12).stream("wp", 0);
        let cfg = WaypointConfig {
            area: Area::square(200.0),
            v_min: 1.5,
            v_max: 1.5,
        };
        let mut m = WaypointModel::new(cfg, Point::new(100.0, 100.0), &mut rng);
        for _ in 0..500 {
            m.step(1.0, &mut rng);
            assert_eq!(m.speed(), 1.5);
        }
    }

    #[test]
    #[should_panic(expected = "outside deployment area")]
    fn start_outside_area_panics() {
        let mut rng = SeedSplitter::new(1).stream("wp", 0);
        let cfg = WaypointConfig::paper(Area::square(200.0), 2.0);
        let _ = WaypointModel::new(cfg, Point::new(300.0, 0.0), &mut rng);
    }
}
