//! Property-based tests for the motion and odometry models.

use cocoa_mobility::prelude::*;
use cocoa_net::geometry::{Area, Point};
use cocoa_sim::rng::SeedSplitter;
use proptest::prelude::*;

proptest! {
    /// Robots never leave the deployment area, at any speed or seed.
    #[test]
    fn robots_stay_in_area(seed in 0u64..1000, v_max in 0.2..5.0f64, steps in 1usize..300) {
        let area = Area::square(200.0);
        let mut rng = SeedSplitter::new(seed).stream("wp", 0);
        let mut m = WaypointModel::new(
            WaypointConfig::paper(area, v_max),
            Point::new(100.0, 100.0),
            &mut rng,
        );
        for _ in 0..steps {
            let (pose, _) = m.step(1.0, &mut rng);
            prop_assert!(area.contains(pose.position), "escaped to {}", pose.position);
        }
    }

    /// Commanded speed always respects the paper's [0.1, v_max] bounds.
    #[test]
    fn speed_in_bounds(seed in 0u64..1000, v_max in 0.2..5.0f64) {
        let area = Area::square(200.0);
        let mut rng = SeedSplitter::new(seed).stream("wp", 1);
        let mut m = WaypointModel::new(
            WaypointConfig::paper(area, v_max),
            Point::new(50.0, 50.0),
            &mut rng,
        );
        for _ in 0..100 {
            m.step(1.0, &mut rng);
            prop_assert!(m.speed() >= 0.1 - 1e-12 && m.speed() <= v_max + 1e-12);
        }
    }

    /// Segment durations always account exactly for the step duration.
    #[test]
    fn segments_cover_step(seed in 0u64..500, dt in 0.1..5.0f64) {
        let area = Area::square(200.0);
        let mut rng = SeedSplitter::new(seed).stream("wp", 2);
        let mut m = WaypointModel::new(
            WaypointConfig::paper(area, 2.0),
            Point::new(100.0, 100.0),
            &mut rng,
        );
        for _ in 0..30 {
            let (_, segments) = m.step(dt, &mut rng);
            let total: f64 = segments.iter().map(|s| s.duration).sum();
            prop_assert!((total - dt).abs() < 1e-9, "covered {total} of {dt}");
            for s in &segments {
                prop_assert!(s.distance >= 0.0 && s.duration >= 0.0);
            }
        }
    }

    /// The noiseless odometer reproduces the true pose exactly for any
    /// trajectory.
    #[test]
    fn noiseless_odometry_is_exact(seed in 0u64..500) {
        let area = Area::square(200.0);
        let mut rng = SeedSplitter::new(seed).stream("wp", 3);
        let mut m = WaypointModel::new(
            WaypointConfig::paper(area, 2.0),
            Point::new(100.0, 100.0),
            &mut rng,
        );
        let mut odo = Odometer::new(OdometryConfig::noiseless(), m.pose());
        let mut odo_rng = SeedSplitter::new(seed).stream("odo", 3);
        for _ in 0..120 {
            let (pose, segments) = m.step(1.0, &mut rng);
            for s in &segments {
                odo.observe(s, &mut odo_rng);
            }
            let err = pose.position.distance_to(odo.estimated_pose().position);
            prop_assert!(err < 1e-6, "drifted {err}");
        }
    }

    /// Odometry noise is unbiased in displacement: over many trials the
    /// mean along-track error stays near zero.
    #[test]
    fn displacement_noise_unbiased(base_seed in 0u64..20) {
        let mut sum = 0.0;
        let trials = 80;
        for t in 0..trials {
            let mut rng = SeedSplitter::new(base_seed * 1000 + t).stream("odo", 0);
            let mut odo = Odometer::new(
                OdometryConfig { displacement_sigma: 0.1, angular_sigma: 0.0, heading_drift_sigma: 0.0 },
                Pose::at(Point::ORIGIN),
            );
            for _ in 0..50 {
                odo.observe(&Segment { turn: 0.0, distance: 1.0, duration: 1.0 }, &mut rng);
            }
            sum += odo.estimated_pose().position.x - 50.0;
        }
        let mean = sum / trials as f64;
        // sigma of the mean ~ 0.1*sqrt(50)/sqrt(80) ~ 0.08; allow 5 sigma.
        prop_assert!(mean.abs() < 0.4, "bias {mean}");
    }

    /// Trajectory aggregates are consistent: mean <= max, and errors are
    /// non-negative.
    #[test]
    fn trajectory_invariants(points in proptest::collection::vec((0.0..200.0f64, 0.0..200.0f64, 0.0..200.0f64, 0.0..200.0f64), 1..100)) {
        use cocoa_sim::time::SimTime;
        let mut tr = Trajectory::new();
        for (i, &(tx, ty, ex, ey)) in points.iter().enumerate() {
            tr.record(SimTime::from_secs(i as u64), Point::new(tx, ty), Point::new(ex, ey));
        }
        prop_assert!(tr.mean_error() <= tr.max_error() + 1e-12);
        prop_assert!(tr.mean_error() >= 0.0);
        prop_assert_eq!(tr.len(), points.len());
    }
}
