//! The 802.11 energy model.
//!
//! The paper adopts Feeney & Nilsson's measurements of a Lucent WaveLAN
//! card (INFOCOM 2001): per-packet transmission/reception costs that are
//! linear in packet size, plus state power draws. Its headline numbers —
//! quoted directly in Section 2.3 — are **idle ≈ 900 mW vs sleep ≈ 50 mW**,
//! which is where all of CoCoA's coordination savings come from. We model:
//!
//! - state power: idle, sleep (and off = 0);
//! - per-packet incremental energy for broadcast send/receive, linear in
//!   size (`cost = m × bytes + b`);
//! - a fixed energy charge for waking the radio from sleep.
//!
//! Everything lands in an auditable [`EnergyLedger`] with one bucket per
//! category so Fig. 9(b)'s with/without-coordination ratio can be traced to
//! its sources.

use serde::{Deserialize, Serialize};

use cocoa_sim::time::SimDuration;

/// Energy model parameters (defaults follow Feeney & Nilsson's broadcast
/// measurements and the paper's idle/sleep quotes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Power drawn while idle (awake, not actively tx/rx), milliwatts.
    pub idle_mw: f64,
    /// Power drawn while sleeping, milliwatts.
    pub sleep_mw: f64,
    /// Per-byte incremental cost of a broadcast send, microjoules/byte.
    pub tx_uj_per_byte: f64,
    /// Fixed incremental cost of a broadcast send, microjoules.
    pub tx_uj_fixed: f64,
    /// Per-byte incremental cost of a broadcast receive, microjoules/byte.
    pub rx_uj_per_byte: f64,
    /// Fixed incremental cost of a broadcast receive, microjoules.
    pub rx_uj_fixed: f64,
    /// Energy to power the radio up from sleep or off, microjoules.
    pub wake_uj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            idle_mw: 900.0,
            sleep_mw: 50.0,
            tx_uj_per_byte: 1.9,
            tx_uj_fixed: 266.0,
            rx_uj_per_byte: 0.5,
            rx_uj_fixed: 56.0,
            wake_uj: 1_000.0,
        }
    }
}

impl EnergyParams {
    /// Incremental energy of broadcasting a packet of `bytes`, microjoules.
    pub fn tx_cost_uj(&self, bytes: usize) -> f64 {
        self.tx_uj_per_byte * bytes as f64 + self.tx_uj_fixed
    }

    /// Incremental energy of receiving a broadcast of `bytes`, microjoules.
    pub fn rx_cost_uj(&self, bytes: usize) -> f64 {
        self.rx_uj_per_byte * bytes as f64 + self.rx_uj_fixed
    }
}

/// Where time-proportional energy is being accrued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Radio fully off: no power draw, cannot receive.
    Off,
    /// Radio sleeping: minimal draw, cannot receive.
    Sleep,
    /// Radio awake (idle/receive-ready).
    Idle,
}

impl PowerState {
    /// Stable machine name of this state (telemetry event field).
    pub fn as_str(&self) -> &'static str {
        match self {
            PowerState::Off => "off",
            PowerState::Sleep => "sleep",
            PowerState::Idle => "idle",
        }
    }
}

/// Per-category energy account for one radio, microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Incremental transmit energy.
    pub tx_uj: f64,
    /// Incremental receive energy.
    pub rx_uj: f64,
    /// Idle-state energy.
    pub idle_uj: f64,
    /// Sleep-state energy.
    pub sleep_uj: f64,
    /// Radio wake-up transitions.
    pub wake_uj: f64,
}

impl EnergyLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Charges a broadcast transmission of `bytes`.
    pub fn charge_tx(&mut self, params: &EnergyParams, bytes: usize) {
        self.tx_uj += params.tx_cost_uj(bytes);
    }

    /// Charges a broadcast reception of `bytes`.
    pub fn charge_rx(&mut self, params: &EnergyParams, bytes: usize) {
        self.rx_uj += params.rx_cost_uj(bytes);
    }

    /// Charges one wake-up transition.
    pub fn charge_wake(&mut self, params: &EnergyParams) {
        self.wake_uj += params.wake_uj;
    }

    /// Accrues time-proportional energy for `dt` spent in `state`.
    pub fn accrue(&mut self, params: &EnergyParams, state: PowerState, dt: SimDuration) {
        let secs = dt.as_secs_f64();
        match state {
            PowerState::Off => {}
            PowerState::Sleep => self.sleep_uj += params.sleep_mw * secs * 1_000.0,
            PowerState::Idle => self.idle_uj += params.idle_mw * secs * 1_000.0,
        }
    }

    /// Total energy, microjoules.
    pub fn total_uj(&self) -> f64 {
        self.tx_uj + self.rx_uj + self.idle_uj + self.sleep_uj + self.wake_uj
    }

    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.total_uj() / 1e6
    }

    /// Adds another ledger into this one (for team-wide totals).
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.tx_uj += other.tx_uj;
        self.rx_uj += other.rx_uj;
        self.idle_uj += other.idle_uj;
        self.sleep_uj += other.sleep_uj;
        self.wake_uj += other.wake_uj;
    }
}

impl std::fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tx={:.3}J rx={:.3}J idle={:.3}J sleep={:.3}J wake={:.3}J total={:.3}J",
            self.tx_uj / 1e6,
            self.rx_uj / 1e6,
            self.idle_uj / 1e6,
            self.sleep_uj / 1e6,
            self.wake_uj / 1e6,
            self.total_j()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_ratio_holds() {
        // The entire premise of Section 2.3: sleeping is ~18x cheaper than
        // idling (50 mW vs 900 mW).
        let p = EnergyParams::default();
        assert!((p.idle_mw / p.sleep_mw - 18.0).abs() < 1e-9);
    }

    #[test]
    fn packet_costs_are_linear_in_size() {
        let p = EnergyParams::default();
        let small = p.tx_cost_uj(50);
        let large = p.tx_cost_uj(150);
        assert!((large - small - 1.9 * 100.0).abs() < 1e-9);
        assert!(
            p.rx_cost_uj(100) < p.tx_cost_uj(100),
            "rx is cheaper than tx"
        );
    }

    #[test]
    fn ledger_accrues_state_power() {
        let p = EnergyParams::default();
        let mut l = EnergyLedger::new();
        l.accrue(&p, PowerState::Idle, SimDuration::from_secs(10));
        // 900 mW * 10 s = 9 J
        assert!((l.idle_uj - 9e6).abs() < 1e-3);
        l.accrue(&p, PowerState::Sleep, SimDuration::from_secs(10));
        assert!((l.sleep_uj - 0.5e6).abs() < 1e-3);
        l.accrue(&p, PowerState::Off, SimDuration::from_secs(100));
        assert!((l.total_j() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_charges_packets_and_wakes() {
        let p = EnergyParams::default();
        let mut l = EnergyLedger::new();
        l.charge_tx(&p, 65);
        l.charge_rx(&p, 65);
        l.charge_wake(&p);
        assert!((l.tx_uj - (1.9 * 65.0 + 266.0)).abs() < 1e-9);
        assert!((l.rx_uj - (0.5 * 65.0 + 56.0)).abs() < 1e-9);
        assert_eq!(l.wake_uj, 1_000.0);
    }

    #[test]
    fn merge_sums_categories() {
        let p = EnergyParams::default();
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        a.charge_tx(&p, 100);
        b.charge_rx(&p, 100);
        b.accrue(&p, PowerState::Idle, SimDuration::from_secs(1));
        let mut team = EnergyLedger::new();
        team.merge(&a);
        team.merge(&b);
        assert!((team.total_uj() - (a.total_uj() + b.total_uj())).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        let s = EnergyLedger::new().to_string();
        assert!(s.contains("total"));
    }
}
