//! Received signal strength values and their quantization.
//!
//! The PDF Table of the paper (Section 2.2) is keyed by integer-dBm RSSI
//! values as reported by the 802.11 card, so this module provides both a
//! continuous [`Dbm`] newtype and the [`RssiBin`] quantization used as the
//! table key.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A signal power in dBm.
///
/// Newtype so powers cannot be confused with distances or plain floats in
/// the localization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Creates a power value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "RSSI must not be NaN");
        Dbm(v)
    }

    /// The raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to milliwatts.
    ///
    /// # Examples
    ///
    /// ```
    /// use cocoa_net::rssi::Dbm;
    /// assert!((Dbm::new(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
    /// assert!((Dbm::new(10.0).to_milliwatts() - 10.0).abs() < 1e-12);
    /// ```
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a power from milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not strictly positive.
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(
            mw > 0.0,
            "power must be positive to express in dBm, got {mw}"
        );
        Dbm(10.0 * mw.log10())
    }

    /// Quantizes to the integer-dBm bin used as PDF-table key.
    pub fn bin(self) -> RssiBin {
        RssiBin(self.0.round() as i16)
    }
}

impl Add<f64> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: f64) -> Dbm {
        Dbm(self.0 + rhs)
    }
}

impl Sub<f64> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: f64) -> Dbm {
        Dbm(self.0 - rhs)
    }
}

impl Sub for Dbm {
    type Output = f64;
    fn sub(self, rhs: Dbm) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

/// An integer-dBm RSSI bin: the key of the calibration PDF table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RssiBin(pub i16);

impl RssiBin {
    /// The bin centre as a continuous power.
    pub fn center(self) -> Dbm {
        Dbm(f64::from(self.0))
    }
}

impl fmt::Display for RssiBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milliwatt_roundtrip() {
        for v in [-90.0, -52.0, 0.0, 15.0] {
            let d = Dbm::new(v);
            let back = Dbm::from_milliwatts(d.to_milliwatts());
            assert!((back.value() - v).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = Dbm::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_milliwatts() {
        let _ = Dbm::from_milliwatts(0.0);
    }

    #[test]
    fn binning_rounds_to_nearest() {
        assert_eq!(Dbm::new(-52.4).bin(), RssiBin(-52));
        assert_eq!(Dbm::new(-52.6).bin(), RssiBin(-53));
        assert_eq!(RssiBin(-52).center(), Dbm(-52.0));
    }

    #[test]
    fn arithmetic() {
        let d = Dbm::new(-50.0);
        assert_eq!((d + 10.0).value(), -40.0);
        assert_eq!((d - 10.0).value(), -60.0);
        assert_eq!(Dbm::new(-40.0) - Dbm::new(-50.0), 10.0);
    }

    #[test]
    fn display() {
        assert_eq!(Dbm::new(-52.25).to_string(), "-52.2 dBm");
        assert_eq!(RssiBin(-86).to_string(), "-86 dBm");
    }
}
