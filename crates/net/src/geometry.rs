//! Planar geometry for the deployment area.
//!
//! Robots in the paper move in a 200 m × 200 m field; everything here is 2-D.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A point in the deployment plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate, metres.
    pub x: f64,
    /// North coordinate, metres.
    pub y: f64,
}

/// A displacement between two [`Point`]s, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East component, metres.
    pub x: f64,
    /// North component, metres.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cocoa_net::geometry::Point;
    /// let a = Point::new(0.0, 0.0);
    /// let b = Point::new(3.0, 4.0);
    /// assert_eq!(a.distance_to(b), 5.0);
    /// ```
    pub fn distance_to(self, other: Point) -> f64 {
        (other - self).norm()
    }

    /// Squared Euclidean distance (avoids the square root on hot paths).
    pub fn distance_sq_to(self, other: Point) -> f64 {
        let d = other - self;
        d.x * d.x + d.y * d.y
    }

    /// Bearing (radians, atan2 convention: east = 0, counter-clockwise
    /// positive) from `self` towards `other`.
    pub fn bearing_to(self, other: Point) -> f64 {
        let d = other - self;
        d.y.atan2(d.x)
    }

    /// The midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Vec2 {
    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians (atan2 convention).
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Angle of this vector (radians, atan2 convention).
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Scales to unit length; returns `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangular deployment area.
///
/// The paper's evaluation uses a 40 000 m² (200 m × 200 m) field; the
/// bounding coordinates `x_min..x_max × y_min..y_max` appear directly in the
/// Bayesian constraint (paper Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Area {
    /// Western bound, metres.
    pub x_min: f64,
    /// Eastern bound, metres.
    pub x_max: f64,
    /// Southern bound, metres.
    pub y_min: f64,
    /// Northern bound, metres.
    pub y_max: f64,
}

impl Area {
    /// Creates an area from its bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or not finite.
    pub fn new(x_min: f64, x_max: f64, y_min: f64, y_max: f64) -> Self {
        assert!(
            x_min.is_finite() && x_max.is_finite() && y_min.is_finite() && y_max.is_finite(),
            "area bounds must be finite"
        );
        assert!(x_min < x_max && y_min < y_max, "area bounds are inverted");
        Area {
            x_min,
            x_max,
            y_min,
            y_max,
        }
    }

    /// A square area `side × side` anchored at the origin.
    ///
    /// # Examples
    ///
    /// ```
    /// use cocoa_net::geometry::Area;
    /// // The paper's 40 000 m² field.
    /// let a = Area::square(200.0);
    /// assert_eq!(a.width() * a.height(), 40_000.0);
    /// ```
    pub fn square(side: f64) -> Self {
        Area::new(0.0, side, 0.0, side)
    }

    /// Width (east–west extent), metres.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Height (north–south extent), metres.
    pub fn height(&self) -> f64 {
        self.y_max - self.y_min
    }

    /// Geometric centre.
    pub fn center(&self) -> Point {
        Point::new(
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// Clamps `p` to the area boundary.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.x_min, self.x_max),
            p.y.clamp(self.y_min, self.y_max),
        )
    }

    /// The longest distance between any two points of the area.
    pub fn diagonal(&self) -> f64 {
        self.width().hypot(self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq_to(b) - 25.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((o.bearing_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.bearing_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.bearing_to(Point::new(-1.0, 0.0)).abs() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
    }

    #[test]
    fn from_angle_roundtrip() {
        for deg in [0.0f64, 45.0, 90.0, 135.0, -90.0] {
            let rad = deg.to_radians();
            let v = Vec2::from_angle(rad);
            assert!((v.angle() - rad).abs() < 1e-12, "angle {deg}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn point_plus_vec() {
        let mut p = Point::new(1.0, 1.0);
        p += Vec2::new(2.0, -1.0);
        assert_eq!(p, Point::new(3.0, 0.0));
        assert_eq!(p + Vec2::new(0.0, 5.0), Point::new(3.0, 5.0));
    }

    #[test]
    fn area_contains_and_clamp() {
        let a = Area::square(200.0);
        assert!(a.contains(Point::new(0.0, 0.0)));
        assert!(a.contains(Point::new(200.0, 200.0)));
        assert!(!a.contains(Point::new(-0.1, 10.0)));
        assert_eq!(a.clamp(Point::new(-5.0, 300.0)), Point::new(0.0, 200.0));
        assert_eq!(a.center(), Point::new(100.0, 100.0));
        assert!((a.diagonal() - 200.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn area_rejects_inverted_bounds() {
        let _ = Area::new(10.0, 0.0, 0.0, 10.0);
    }

    #[test]
    fn midpoint() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(10.0, 20.0));
        assert_eq!(m, Point::new(5.0, 10.0));
    }
}
