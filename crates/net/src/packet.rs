//! Packet vocabulary shared by every protocol in the reproduction.
//!
//! The paper sends RF beacons as UDP broadcasts whose payload is the
//! transmitting robot's coordinates, "in addition to the IP and UDP headers
//! (20 bytes each)". We reproduce that accounting exactly: every packet's
//! wire size is the encoded payload plus [`IP_HEADER_BYTES`] +
//! [`UDP_HEADER_BYTES`].
//!
//! All payloads have an explicit binary encoding (via [`bytes`]) so that
//! sizes fed to the MAC and energy models come from real serialization, not
//! hand-waved constants.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::geometry::Point;

/// IP header size used for wire-size accounting, bytes (paper Section 2.3).
pub const IP_HEADER_BYTES: usize = 20;
/// UDP header size used for wire-size accounting, bytes. The paper charges
/// 20 bytes for the UDP header as well, and we follow the paper.
pub const UDP_HEADER_BYTES: usize = 20;

/// Identifier of a robot (network node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "robot-{}", self.0)
    }
}

/// Identifier of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u16);

/// The protocol payload of a packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A CoCoA localization beacon: the sender's coordinates from its
    /// localization device (paper Section 2.2).
    Beacon {
        /// Coordinates the sender believes it is at.
        position: Point,
    },
    /// A CoCoA SYNC message carrying the coordination periods (Section 2.3).
    Sync {
        /// Beacon period `T`, microseconds.
        period_us: u64,
        /// Transmit period `t`, microseconds.
        window_us: u64,
        /// Time remaining until the next beacon period starts, measured at
        /// the Sync robot when the message was originated, microseconds.
        /// Receivers use it to phase-align their local timers.
        next_period_in_us: u64,
    },
    /// ODMRP/MRMM JOIN QUERY flooded to (re)build the mesh. Carries the
    /// mobility knowledge MRMM prunes with (position, velocity, residual
    /// travel distance).
    JoinQuery {
        /// Multicast group being built.
        group: GroupId,
        /// Hops travelled so far.
        hop_count: u8,
        /// The node that rebroadcast this copy (reverse-path predecessor).
        prev_hop: NodeId,
        /// Rebroadcaster's believed position.
        position: Point,
        /// Rebroadcaster's velocity, m/s (east, north).
        velocity: (f64, f64),
        /// Distance the rebroadcaster will still travel before its next
        /// course change (`d_rest` in the MRMM paper), metres.
        d_rest: f64,
    },
    /// ODMRP JOIN REPLY sent by members back along reverse paths; receiving
    /// one addressed to you makes you a forwarding-group node.
    JoinReply {
        /// Multicast group.
        group: GroupId,
        /// The mesh source this reply answers.
        source: NodeId,
        /// The upstream node being recruited as forwarder.
        next_hop: NodeId,
    },
    /// Application data delivered down the mesh (carries the SYNC in CoCoA,
    /// but any app may use it).
    Data {
        /// Multicast group.
        group: GroupId,
        /// Opaque application bytes.
        body: Bytes,
    },
}

impl Payload {
    /// A compact discriminant for tracing/metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Beacon { .. } => "beacon",
            Payload::Sync { .. } => "sync",
            Payload::JoinQuery { .. } => "join-query",
            Payload::JoinReply { .. } => "join-reply",
            Payload::Data { .. } => "data",
        }
    }
}

/// A fully-formed packet as handed to the MAC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Originating node (not necessarily the last forwarder).
    pub src: NodeId,
    /// Per-source sequence number for duplicate suppression.
    pub seq: u32,
    /// Protocol payload.
    pub payload: Payload,
}

/// Error returned when decoding a malformed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodePacketError {
    what: &'static str,
}

impl std::fmt::Display for DecodePacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed packet: {}", self.what)
    }
}

impl std::error::Error for DecodePacketError {}

impl DecodePacketError {
    fn new(what: &'static str) -> Self {
        DecodePacketError { what }
    }
}

/// Largest data body the wire format can carry (the length field is u16).
/// Longer bodies are truncated at encode time instead of panicking — a
/// mis-sized application payload must never take down the radio stack.
pub const MAX_DATA_BODY: usize = u16::MAX as usize;

const TAG_BEACON: u8 = 1;
const TAG_SYNC: u8 = 2;
const TAG_JOIN_QUERY: u8 = 3;
const TAG_JOIN_REPLY: u8 = 4;
const TAG_DATA: u8 = 5;

impl Packet {
    /// Creates a packet.
    pub fn new(src: NodeId, seq: u32, payload: Payload) -> Self {
        Packet { src, seq, payload }
    }

    /// Serializes to the on-air byte representation (excluding the IP/UDP
    /// headers, which exist only as size accounting).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u32(self.src.0);
        b.put_u32(self.seq);
        match &self.payload {
            Payload::Beacon { position } => {
                b.put_u8(TAG_BEACON);
                b.put_f64(position.x);
                b.put_f64(position.y);
            }
            Payload::Sync {
                period_us,
                window_us,
                next_period_in_us,
            } => {
                b.put_u8(TAG_SYNC);
                b.put_u64(*period_us);
                b.put_u64(*window_us);
                b.put_u64(*next_period_in_us);
            }
            Payload::JoinQuery {
                group,
                hop_count,
                prev_hop,
                position,
                velocity,
                d_rest,
            } => {
                b.put_u8(TAG_JOIN_QUERY);
                b.put_u16(group.0);
                b.put_u8(*hop_count);
                b.put_u32(prev_hop.0);
                b.put_f64(position.x);
                b.put_f64(position.y);
                b.put_f64(velocity.0);
                b.put_f64(velocity.1);
                b.put_f64(*d_rest);
            }
            Payload::JoinReply {
                group,
                source,
                next_hop,
            } => {
                b.put_u8(TAG_JOIN_REPLY);
                b.put_u16(group.0);
                b.put_u32(source.0);
                b.put_u32(next_hop.0);
            }
            Payload::Data { group, body } => {
                b.put_u8(TAG_DATA);
                b.put_u16(group.0);
                let len = body.len().min(MAX_DATA_BODY);
                b.put_u16(len as u16);
                b.extend_from_slice(&body[..len]);
            }
        }
        b.freeze()
    }

    /// Decodes a packet previously produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodePacketError`] if the buffer is truncated, carries
    /// trailing bytes past the payload, or the payload tag is unknown.
    pub fn decode(mut buf: Bytes) -> Result<Self, DecodePacketError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), DecodePacketError> {
            if buf.remaining() < n {
                Err(DecodePacketError::new("truncated"))
            } else {
                Ok(())
            }
        }
        need(&buf, 9)?;
        let src = NodeId(buf.get_u32());
        let seq = buf.get_u32();
        let tag = buf.get_u8();
        let payload = match tag {
            TAG_BEACON => {
                need(&buf, 16)?;
                Payload::Beacon {
                    position: Point::new(buf.get_f64(), buf.get_f64()),
                }
            }
            TAG_SYNC => {
                need(&buf, 24)?;
                Payload::Sync {
                    period_us: buf.get_u64(),
                    window_us: buf.get_u64(),
                    next_period_in_us: buf.get_u64(),
                }
            }
            TAG_JOIN_QUERY => {
                need(&buf, 2 + 1 + 4 + 40)?;
                Payload::JoinQuery {
                    group: GroupId(buf.get_u16()),
                    hop_count: buf.get_u8(),
                    prev_hop: NodeId(buf.get_u32()),
                    position: Point::new(buf.get_f64(), buf.get_f64()),
                    velocity: (buf.get_f64(), buf.get_f64()),
                    d_rest: buf.get_f64(),
                }
            }
            TAG_JOIN_REPLY => {
                need(&buf, 10)?;
                Payload::JoinReply {
                    group: GroupId(buf.get_u16()),
                    source: NodeId(buf.get_u32()),
                    next_hop: NodeId(buf.get_u32()),
                }
            }
            TAG_DATA => {
                need(&buf, 4)?;
                let group = GroupId(buf.get_u16());
                let len = usize::from(buf.get_u16());
                need(&buf, len)?;
                Payload::Data {
                    group,
                    body: buf.copy_to_bytes(len),
                }
            }
            _ => return Err(DecodePacketError::new("unknown payload tag")),
        };
        if buf.remaining() > 0 {
            // A longer buffer than the payload needs is as malformed as a
            // shorter one — strictness here keeps garbled frames from
            // silently passing as valid packets.
            return Err(DecodePacketError::new("trailing bytes"));
        }
        Ok(Packet { src, seq, payload })
    }

    /// Total bytes this packet occupies on the air: encoded payload plus the
    /// IP and UDP headers the paper charges.
    pub fn wire_size(&self) -> usize {
        IP_HEADER_BYTES + UDP_HEADER_BYTES + self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let encoded = p.encode();
        let decoded = Packet::decode(encoded).expect("decode");
        assert_eq!(decoded, p);
    }

    #[test]
    fn beacon_roundtrip_and_size() {
        let p = Packet::new(
            NodeId(7),
            42,
            Payload::Beacon {
                position: Point::new(12.5, -3.25),
            },
        );
        roundtrip(p.clone());
        // 4 src + 4 seq + 1 tag + 16 coords = 25 payload bytes + 40 headers.
        assert_eq!(p.wire_size(), 65);
    }

    #[test]
    fn sync_roundtrip() {
        roundtrip(Packet::new(
            NodeId(0),
            1,
            Payload::Sync {
                period_us: 100_000_000,
                window_us: 3_000_000,
                next_period_in_us: 97_000_000,
            },
        ));
    }

    #[test]
    fn join_query_roundtrip() {
        roundtrip(Packet::new(
            NodeId(3),
            9,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 4,
                prev_hop: NodeId(12),
                position: Point::new(100.0, 50.0),
                velocity: (0.3, -1.2),
                d_rest: 38.5,
            },
        ));
    }

    #[test]
    fn join_reply_roundtrip() {
        roundtrip(Packet::new(
            NodeId(3),
            9,
            Payload::JoinReply {
                group: GroupId(1),
                source: NodeId(0),
                next_hop: NodeId(5),
            },
        ));
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(Packet::new(
            NodeId(3),
            9,
            Payload::Data {
                group: GroupId(2),
                body: Bytes::from_static(b"hello mesh"),
            },
        ));
    }

    #[test]
    fn oversized_data_body_is_truncated_not_panicking() {
        let p = Packet::new(
            NodeId(3),
            9,
            Payload::Data {
                group: GroupId(2),
                body: Bytes::from(vec![0xABu8; MAX_DATA_BODY + 100]),
            },
        );
        let decoded = Packet::decode(p.encode()).expect("decode");
        match decoded.payload {
            Payload::Data { body, .. } => assert_eq!(body.len(), MAX_DATA_BODY),
            other => panic!("wrong payload {other:?}"),
        }
    }

    #[test]
    fn truncated_buffer_errors() {
        let p = Packet::new(
            NodeId(7),
            42,
            Payload::Beacon {
                position: Point::new(1.0, 2.0),
            },
        );
        let enc = p.encode();
        for cut in [0, 5, 9, 20] {
            let truncated = enc.slice(0..cut);
            assert!(Packet::decode(truncated).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        b.put_u32(1);
        b.put_u8(99);
        assert!(Packet::decode(b.freeze()).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            Payload::Beacon {
                position: Point::ORIGIN,
            }
            .kind_name(),
            Payload::Sync {
                period_us: 0,
                window_us: 0,
                next_period_in_us: 0,
            }
            .kind_name(),
        ];
        assert_eq!(kinds, ["beacon", "sync"]);
    }

    #[test]
    fn header_accounting_matches_paper() {
        assert_eq!(IP_HEADER_BYTES + UDP_HEADER_BYTES, 40);
    }
}
