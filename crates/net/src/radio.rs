//! The per-robot radio: a power-state machine with exact energy accrual.
//!
//! CoCoA's coordination toggles radios between **idle** (awake, able to
//! receive beacons) and **sleep** (cheap, deaf). The radio tracks the
//! current state, accrues time-proportional energy on every transition and
//! charges per-packet send/receive energy, all into an [`EnergyLedger`].
//!
//! Transmission time is computed from the paper's 2 Mbps interface.

use serde::{Deserialize, Serialize};

use cocoa_sim::time::{SimDuration, SimTime};

use crate::energy::{EnergyLedger, EnergyParams, PowerState};

/// Default link rate: the paper simulates a 2 Mbps 802.11b interface.
pub const DEFAULT_BITRATE_BPS: u64 = 2_000_000;

/// A radio with explicit power management.
///
/// # Examples
///
/// ```
/// use cocoa_net::radio::Radio;
/// use cocoa_net::energy::{EnergyParams, PowerState};
/// use cocoa_sim::time::SimTime;
///
/// let mut radio = Radio::new(EnergyParams::default(), SimTime::ZERO);
/// radio.set_state(SimTime::from_secs(3), PowerState::Sleep);   // idled 3 s
/// radio.set_state(SimTime::from_secs(10), PowerState::Idle);   // slept 7 s
/// let ledger = radio.finalize(SimTime::from_secs(10));
/// assert!((ledger.idle_uj - 3.0 * 900_000.0).abs() < 1.0);
/// assert!((ledger.sleep_uj - 7.0 * 50_000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Radio {
    params: EnergyParams,
    bitrate_bps: u64,
    state: PowerState,
    since: SimTime,
    ledger: EnergyLedger,
    wakes: u32,
    packets_sent: u32,
    packets_received: u32,
}

impl Radio {
    /// Creates a radio that starts **idle** at `t0`, at the paper's 2 Mbps.
    pub fn new(params: EnergyParams, t0: SimTime) -> Self {
        Radio::with_bitrate(params, t0, DEFAULT_BITRATE_BPS)
    }

    /// Creates a radio with an explicit link rate.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_bps` is zero.
    pub fn with_bitrate(params: EnergyParams, t0: SimTime, bitrate_bps: u64) -> Self {
        assert!(bitrate_bps > 0, "bitrate must be positive");
        Radio {
            params,
            bitrate_bps,
            state: PowerState::Idle,
            since: t0,
            ledger: EnergyLedger::new(),
            wakes: 0,
            packets_sent: 0,
            packets_received: 0,
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Whether the radio can currently detect incoming packets.
    pub fn can_receive(&self) -> bool {
        self.state == PowerState::Idle
    }

    /// The time a packet of `bytes` occupies the air at this bitrate.
    pub fn tx_duration(&self, bytes: usize) -> SimDuration {
        let micros = (bytes as u64 * 8).saturating_mul(1_000_000) / self.bitrate_bps;
        SimDuration::from_micros(micros.max(1))
    }

    /// Transitions to `new_state` at time `now`, accruing energy for the
    /// state being left. Waking from sleep/off charges the wake-up energy.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition.
    pub fn set_state(&mut self, now: SimTime, new_state: PowerState) {
        let dt = now.since(self.since);
        self.ledger.accrue(&self.params, self.state, dt);
        let was_dormant = matches!(self.state, PowerState::Sleep | PowerState::Off);
        if was_dormant && new_state == PowerState::Idle {
            self.ledger.charge_wake(&self.params);
            self.wakes += 1;
        }
        self.state = new_state;
        self.since = now;
    }

    /// Charges the incremental energy of broadcasting `bytes` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the radio is not idle — transmitting while asleep is a
    /// coordination bug the simulation should never mask.
    pub fn record_tx(&mut self, now: SimTime, bytes: usize) {
        assert!(
            self.state == PowerState::Idle,
            "attempt to transmit while radio is {:?} at {now}",
            self.state
        );
        self.ledger.charge_tx(&self.params, bytes);
        self.packets_sent += 1;
    }

    /// Charges the incremental energy of receiving `bytes` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the radio is not idle.
    pub fn record_rx(&mut self, now: SimTime, bytes: usize) {
        assert!(
            self.state == PowerState::Idle,
            "attempt to receive while radio is {:?} at {now}",
            self.state
        );
        self.ledger.charge_rx(&self.params, bytes);
        self.packets_received += 1;
    }

    /// Accrues energy up to `now` and returns the final ledger. The radio
    /// remains usable (this is a checkpoint, not a teardown).
    pub fn finalize(&mut self, now: SimTime) -> EnergyLedger {
        let dt = now.since(self.since);
        self.ledger.accrue(&self.params, self.state, dt);
        self.since = now;
        self.ledger
    }

    /// The ledger as it would read if finalized at `now`, without mutating
    /// the radio. Mid-run observers (telemetry sampling) must use this
    /// instead of [`Radio::finalize`]: checkpointing splits the f64 accrual
    /// into different interval sums, perturbing the final ledger by ulps.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition.
    pub fn peek_ledger(&self, now: SimTime) -> EnergyLedger {
        let dt = now.since(self.since);
        let mut ledger = self.ledger;
        ledger.accrue(&self.params, self.state, dt);
        ledger
    }

    /// Number of wake-up transitions so far.
    pub fn wake_count(&self) -> u32 {
        self.wakes
    }

    /// Packets sent so far.
    pub fn packets_sent(&self) -> u32 {
        self.packets_sent
    }

    /// Packets received (delivered up the stack) so far.
    pub fn packets_received(&self) -> u32 {
        self.packets_received
    }

    /// The energy parameters this radio uses.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.params
    }

    /// The radio's complete state as checkpoint data.
    pub fn checkpoint(&self) -> RadioCheckpoint {
        RadioCheckpoint {
            params: self.params,
            bitrate_bps: self.bitrate_bps,
            state: self.state,
            since: self.since,
            ledger: self.ledger,
            wakes: self.wakes,
            packets_sent: self.packets_sent,
            packets_received: self.packets_received,
        }
    }

    /// Rebuilds a radio from checkpointed state, mid-accrual: the ledger
    /// and `since` anchor continue the exact interval sums of the original
    /// (bit-identical energy totals, see [`Radio::peek_ledger`]).
    pub fn from_checkpoint(c: RadioCheckpoint) -> Self {
        Radio {
            params: c.params,
            bitrate_bps: c.bitrate_bps,
            state: c.state,
            since: c.since,
            ledger: c.ledger,
            wakes: c.wakes,
            packets_sent: c.packets_sent,
            packets_received: c.packets_received,
        }
    }
}

/// The radio's complete state as checkpoint data (see
/// [`Radio::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioCheckpoint {
    /// Energy model parameters.
    pub params: EnergyParams,
    /// Link rate, bits per second.
    pub bitrate_bps: u64,
    /// Current power state.
    pub state: PowerState,
    /// Time of the last state transition (accrual anchor).
    pub since: SimTime,
    /// Energy accrued so far.
    pub ledger: EnergyLedger,
    /// Wake-up transitions so far.
    pub wakes: u32,
    /// Packets sent so far.
    pub packets_sent: u32,
    /// Packets received so far.
    pub packets_received: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn accrues_idle_then_sleep() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        r.set_state(t(10), PowerState::Sleep);
        r.set_state(t(20), PowerState::Idle);
        let l = r.finalize(t(20));
        assert!((l.idle_uj - 10.0 * 900_000.0).abs() < 1.0);
        assert!((l.sleep_uj - 10.0 * 50_000.0).abs() < 1.0);
        assert_eq!(r.wake_count(), 1);
        assert!((l.wake_uj - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn sleeping_radio_cannot_receive() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        assert!(r.can_receive());
        r.set_state(t(1), PowerState::Sleep);
        assert!(!r.can_receive());
    }

    #[test]
    #[should_panic(expected = "transmit while radio")]
    fn tx_while_asleep_panics() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        r.set_state(t(1), PowerState::Sleep);
        r.record_tx(t(2), 65);
    }

    #[test]
    fn tx_duration_at_2mbps() {
        let r = Radio::new(EnergyParams::default(), t(0));
        // 65 bytes * 8 bits / 2 Mbps = 260 µs.
        assert_eq!(r.tx_duration(65), SimDuration::from_micros(260));
        // Never zero, even for tiny frames.
        assert!(r.tx_duration(0) >= SimDuration::from_micros(1));
    }

    #[test]
    fn packet_counters_and_charges() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        r.record_tx(t(1), 65);
        r.record_rx(t(1), 65);
        r.record_rx(t(2), 65);
        assert_eq!(r.packets_sent(), 1);
        assert_eq!(r.packets_received(), 2);
        let l = r.finalize(t(2));
        assert!(l.tx_uj > 0.0 && l.rx_uj > l.tx_uj * 0.1);
    }

    #[test]
    fn off_state_accrues_nothing() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        r.set_state(t(0), PowerState::Off);
        r.set_state(t(100), PowerState::Idle);
        let l = r.finalize(t(100));
        assert_eq!(l.idle_uj, 0.0);
        assert_eq!(l.sleep_uj, 0.0);
        // But waking from off costs energy.
        assert!(l.wake_uj > 0.0);
    }

    #[test]
    fn peek_ledger_matches_finalize_without_mutating() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        r.record_tx(t(5), 65);
        r.set_state(t(10), PowerState::Sleep);
        let peeked = r.peek_ledger(t(20));
        let snapshot = r.clone();
        let finalized = r.finalize(t(20));
        assert_eq!(peeked, finalized);
        // Peeking must leave the radio bit-identical.
        let mut again = snapshot;
        assert_eq!(again.finalize(t(20)), finalized);
    }

    #[test]
    fn power_state_names_are_stable() {
        assert_eq!(PowerState::Idle.as_str(), "idle");
        assert_eq!(PowerState::Sleep.as_str(), "sleep");
        assert_eq!(PowerState::Off.as_str(), "off");
    }

    #[test]
    fn finalize_is_idempotent_checkpoint() {
        let mut r = Radio::new(EnergyParams::default(), t(0));
        let a = r.finalize(t(5));
        let b = r.finalize(t(5));
        assert_eq!(a, b);
        // And further time keeps accruing.
        let c = r.finalize(t(6));
        assert!(c.idle_uj > b.idle_uj);
    }

    #[test]
    #[should_panic]
    fn time_going_backwards_panics() {
        let mut r = Radio::new(EnergyParams::default(), t(10));
        r.set_state(t(5), PowerState::Sleep);
    }
}
