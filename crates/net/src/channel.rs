//! The RF propagation model.
//!
//! The paper calibrates its simulator from outdoor measurements with Orinoco
//! WaveLAN 802.11b cards and reports (Section 2.2, Fig. 1):
//!
//! - RSSI-vs-distance is well modelled as Gaussian for RSSI ≥ −80 dBm,
//!   which for their hardware corresponds to distances up to ~40 m;
//! - beyond 40 m, multipath and fading make the distribution fluctuate and
//!   it is no longer Gaussian;
//! - typical 802.11b cards reach beyond 150 m.
//!
//! We reproduce those statistics with a log-distance path-loss model plus
//! distance-growing log-normal shadowing, and an additional asymmetric
//! multipath fade term that switches on past the Gaussian onset distance.
//! The calibration campaign in [`crate::calibration`] then *measures* this
//! channel exactly the way the authors measured their field site, so the
//! localization algorithm never sees the model parameters directly.

use cocoa_sim::dist::{Exponential, Normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rssi::Dbm;

/// The deterministic part of the propagation: how mean power decays with
/// distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossModel {
    /// Classic log-distance: `PL(d) = PL(1m) + 10·n·log₁₀(d)`.
    LogDistance {
        /// Path-loss exponent (outdoor open field ≈ 2.7–3.5).
        exponent: f64,
    },
    /// Two-ray ground reflection: log-distance (exponent 2) up to the
    /// crossover distance `d_c = 4·h_t·h_r/λ`, then fourth-power decay —
    /// the standard Glomosim/ns-2 outdoor model for antennas near the
    /// ground.
    TwoRayGround {
        /// Transmitter/receiver antenna height, metres (robots: ~0.5 m).
        antenna_height_m: f64,
        /// Carrier wavelength, metres (2.4 GHz ⇒ 0.125 m).
        wavelength_m: f64,
    },
}

impl PathLossModel {
    /// Path loss relative to 1 m, dB, at distance `d`.
    fn excess_loss_db(&self, d: f64) -> f64 {
        match *self {
            PathLossModel::LogDistance { exponent } => 10.0 * exponent * d.log10(),
            PathLossModel::TwoRayGround {
                antenna_height_m,
                wavelength_m,
            } => {
                let crossover =
                    4.0 * std::f64::consts::PI * antenna_height_m * antenna_height_m / wavelength_m;
                if d <= crossover {
                    20.0 * d.log10()
                } else {
                    // Continuous at the crossover: 20·log₁₀(d_c) +
                    // 40·log₁₀(d/d_c).
                    20.0 * crossover.log10() + 40.0 * (d / crossover).log10()
                }
            }
        }
    }

    /// Inverse of [`PathLossModel::excess_loss_db`].
    fn distance_for_excess_loss(&self, loss_db: f64) -> f64 {
        match *self {
            PathLossModel::LogDistance { exponent } => 10f64.powf(loss_db / (10.0 * exponent)),
            PathLossModel::TwoRayGround {
                antenna_height_m,
                wavelength_m,
            } => {
                let crossover =
                    4.0 * std::f64::consts::PI * antenna_height_m * antenna_height_m / wavelength_m;
                let loss_at_crossover = 20.0 * crossover.log10();
                if loss_db <= loss_at_crossover {
                    10f64.powf(loss_db / 20.0)
                } else {
                    crossover * 10f64.powf((loss_db - loss_at_crossover) / 40.0)
                }
            }
        }
    }
}

/// Parameters of the synthetic outdoor channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Transmit power, dBm (802.11b cards: typically 15 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub path_loss_1m_db: f64,
    /// The mean-power decay law.
    pub path_loss: PathLossModel,
    /// Shadowing standard deviation at zero distance, dB.
    pub shadowing_sigma_db: f64,
    /// Growth of the shadowing σ per metre, dB/m (noise grows with range).
    pub shadowing_sigma_slope_db_per_m: f64,
    /// Distance beyond which the multipath fade term activates, metres.
    /// The paper's Gaussian regime ends at 40 m (≈ −80 dBm).
    pub multipath_onset_m: f64,
    /// Probability that a far-field sample suffers a deep fade.
    pub multipath_fade_prob: f64,
    /// Mean depth of a multipath fade, dB (exponentially distributed).
    pub multipath_fade_mean_db: f64,
    /// Receiver sensitivity: packets below this RSSI are undetectable, dBm.
    pub sensitivity_dbm: f64,
}

impl Default for ChannelParams {
    /// Defaults calibrated against the paper's anchors: mean RSSI at 40 m
    /// is ≈ −80 dBm, the detection range exceeds 150 m, and the shadowing
    /// is tight enough that Bayesian fixes right after a transmit window
    /// land in the single-digit metres (the paper's Fig. 8 shows >90 % of
    /// robots below 10 m) while the far field is still visibly
    /// non-Gaussian (Fig. 1(b)).
    fn default() -> Self {
        ChannelParams {
            tx_power_dbm: 15.0,
            path_loss_1m_db: 47.0,
            path_loss: PathLossModel::LogDistance { exponent: 3.0 },
            shadowing_sigma_db: 0.5,
            shadowing_sigma_slope_db_per_m: 0.025,
            multipath_onset_m: 40.0,
            multipath_fade_prob: 0.25,
            multipath_fade_mean_db: 4.0,
            sensitivity_dbm: -98.0,
        }
    }
}

/// The stochastic RF channel.
///
/// # Examples
///
/// ```
/// use cocoa_net::channel::RfChannel;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let ch = RfChannel::default();
/// // Mean RSSI at the paper's Gaussian boundary is about -80 dBm.
/// let at_40m = ch.mean_rssi(40.0).value();
/// assert!((at_40m + 80.0).abs() < 1.0, "got {at_40m}");
/// // Detection range exceeds 150 m.
/// assert!(ch.max_range() > 150.0);
/// let mut rng = SeedSplitter::new(1).stream("doc", 0);
/// let s = ch.sample_rssi(10.0, &mut rng);
/// assert!(s.value() < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfChannel {
    params: ChannelParams,
}

impl Default for RfChannel {
    fn default() -> Self {
        RfChannel::new(ChannelParams::default())
    }
}

impl RfChannel {
    /// Creates a channel from parameters.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of their physical ranges (non-positive
    /// exponent, negative sigmas, fade probability outside `[0, 1]`, …).
    pub fn new(params: ChannelParams) -> Self {
        match params.path_loss {
            PathLossModel::LogDistance { exponent } => {
                assert!(exponent > 0.0, "path-loss exponent must be positive");
            }
            PathLossModel::TwoRayGround {
                antenna_height_m,
                wavelength_m,
            } => {
                assert!(antenna_height_m > 0.0, "antenna height must be positive");
                assert!(wavelength_m > 0.0, "wavelength must be positive");
            }
        }
        assert!(
            params.shadowing_sigma_db >= 0.0,
            "shadowing sigma must be non-negative"
        );
        assert!(
            params.shadowing_sigma_slope_db_per_m >= 0.0,
            "shadowing slope must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&params.multipath_fade_prob),
            "fade probability must be within [0, 1]"
        );
        assert!(
            params.multipath_onset_m > 0.0,
            "multipath onset must be positive"
        );
        assert!(
            params.multipath_fade_mean_db > 0.0,
            "fade mean must be positive"
        );
        RfChannel { params }
    }

    /// The channel parameters.
    pub fn params(&self) -> &ChannelParams {
        &self.params
    }

    /// Returns a copy of this channel transmitting at `tx_power_dbm`
    /// (transmission-power-control study, paper Section 6).
    pub fn with_tx_power(mut self, tx_power_dbm: f64) -> Self {
        self.params.tx_power_dbm = tx_power_dbm;
        self
    }

    /// Deterministic mean RSSI at distance `d` metres.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not strictly positive.
    pub fn mean_rssi(&self, d: f64) -> Dbm {
        assert!(d > 0.0, "distance must be positive, got {d}");
        let p = &self.params;
        Dbm::new(p.tx_power_dbm - p.path_loss_1m_db - p.path_loss.excess_loss_db(d))
    }

    /// Inverse of [`RfChannel::mean_rssi`]: the distance at which the mean
    /// RSSI equals `rssi`.
    pub fn distance_for_mean_rssi(&self, rssi: Dbm) -> f64 {
        let p = &self.params;
        p.path_loss
            .distance_for_excess_loss(p.tx_power_dbm - p.path_loss_1m_db - rssi.value())
    }

    /// Shadowing standard deviation at distance `d`, dB.
    pub fn shadowing_sigma(&self, d: f64) -> f64 {
        self.params.shadowing_sigma_db + self.params.shadowing_sigma_slope_db_per_m * d
    }

    /// Draws one RSSI sample at distance `d` metres.
    ///
    /// Within the Gaussian regime (`d ≤ multipath_onset_m`) the sample is
    /// mean + log-normal shadowing. Beyond it, an exponentially-distributed
    /// deep fade is subtracted with probability `multipath_fade_prob`,
    /// producing the skewed, non-Gaussian far-field statistics of paper
    /// Fig. 1(b).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not strictly positive.
    pub fn sample_rssi<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> Dbm {
        let mean = self.mean_rssi(d).value();
        let sigma = self.shadowing_sigma(d);
        let mut v = Normal::new(mean, sigma).sample(rng);
        if d > self.params.multipath_onset_m && rng.gen_bool(self.params.multipath_fade_prob) {
            v -= Exponential::new(self.params.multipath_fade_mean_db).sample(rng);
        }
        Dbm::new(v)
    }

    /// Whether a packet at RSSI `rssi` is detectable at all.
    pub fn is_detectable(&self, rssi: Dbm) -> bool {
        rssi.value() >= self.params.sensitivity_dbm
    }

    /// The distance at which the *mean* RSSI falls to the sensitivity
    /// threshold — the nominal maximum communication range.
    pub fn max_range(&self) -> f64 {
        self.distance_for_mean_rssi(Dbm::new(self.params.sensitivity_dbm))
    }

    /// The mean RSSI at the multipath onset distance: the boundary below
    /// which the calibration should not trust a Gaussian fit (−80 dBm for
    /// the defaults, as in the paper).
    pub fn gaussian_rssi_floor(&self) -> Dbm {
        self.mean_rssi(self.params.multipath_onset_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::rng::SeedSplitter;

    #[test]
    fn mean_rssi_monotonically_decreases() {
        let ch = RfChannel::default();
        let mut prev = ch.mean_rssi(1.0);
        for d in [2.0, 5.0, 10.0, 40.0, 100.0, 150.0] {
            let r = ch.mean_rssi(d);
            assert!(r < prev, "rssi must fall with distance at {d} m");
            prev = r;
        }
    }

    #[test]
    fn defaults_match_paper_anchors() {
        let ch = RfChannel::default();
        // ~-80 dBm at 40 m…
        assert!((ch.mean_rssi(40.0).value() + 80.0).abs() < 1.0);
        // …and detection beyond 150 m.
        assert!(ch.max_range() > 150.0, "range {}", ch.max_range());
        assert!((ch.gaussian_rssi_floor().value() + 80.0).abs() < 1.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let ch = RfChannel::default();
        for d in [1.0, 3.7, 12.0, 40.0, 120.0] {
            let r = ch.mean_rssi(d);
            let back = ch.distance_for_mean_rssi(r);
            assert!((back - d).abs() / d < 1e-9, "{d} -> {back}");
        }
    }

    #[test]
    fn near_field_samples_are_approximately_gaussian() {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(11).stream("test", 0);
        let d = 10.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| ch.sample_rssi(d, &mut rng).value())
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        let skew: f64 = samples
            .iter()
            .map(|s| ((s - mean) / sd).powi(3))
            .sum::<f64>()
            / n as f64;
        assert!((mean - ch.mean_rssi(d).value()).abs() < 0.1, "mean {mean}");
        assert!((sd - ch.shadowing_sigma(d)).abs() < 0.1, "sd {sd}");
        assert!(
            skew.abs() < 0.1,
            "near field should be symmetric, skew {skew}"
        );
    }

    #[test]
    fn far_field_samples_are_left_skewed() {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(12).stream("test", 0);
        let d = 80.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| ch.sample_rssi(d, &mut rng).value())
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        let skew: f64 = samples
            .iter()
            .map(|s| ((s - mean) / sd).powi(3))
            .sum::<f64>()
            / n as f64;
        // Deep fades pull the left tail: clearly negative skewness.
        assert!(skew < -0.3, "far field should be left-skewed, got {skew}");
        // Mean drops below the pure path-loss prediction.
        assert!(mean < ch.mean_rssi(d).value());
    }

    #[test]
    fn tx_power_shifts_rssi_uniformly() {
        let lo = RfChannel::default().with_tx_power(5.0);
        let hi = RfChannel::default().with_tx_power(20.0);
        for d in [1.0, 10.0, 100.0] {
            let delta = hi.mean_rssi(d) - lo.mean_rssi(d);
            assert!((delta - 15.0).abs() < 1e-9);
        }
        // Higher power, longer range.
        assert!(hi.max_range() > lo.max_range());
    }

    #[test]
    fn detectability_threshold() {
        let ch = RfChannel::default();
        assert!(ch.is_detectable(Dbm::new(-98.0)));
        assert!(!ch.is_detectable(Dbm::new(-98.1)));
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_panics() {
        let _ = RfChannel::default().mean_rssi(0.0);
    }

    #[test]
    #[should_panic(expected = "fade probability")]
    fn invalid_fade_prob_rejected() {
        let params = ChannelParams {
            multipath_fade_prob: 1.5,
            ..ChannelParams::default()
        };
        let _ = RfChannel::new(params);
    }
}

#[cfg(test)]
mod two_ray_tests {
    use super::*;

    fn two_ray() -> RfChannel {
        RfChannel::new(ChannelParams {
            path_loss: PathLossModel::TwoRayGround {
                antenna_height_m: 0.5,
                wavelength_m: 0.125, // 2.4 GHz
            },
            ..ChannelParams::default()
        })
    }

    #[test]
    fn crossover_distance_is_physical() {
        // d_c = 4π h² / λ = 4π·0.25/0.125 ≈ 25.1 m for 0.5 m antennas.
        let model = PathLossModel::TwoRayGround {
            antenna_height_m: 0.5,
            wavelength_m: 0.125,
        };
        let crossover = 4.0 * std::f64::consts::PI * 0.25 / 0.125;
        // Loss is continuous at the crossover.
        let below = model.excess_loss_db(crossover - 1e-9);
        let above = model.excess_loss_db(crossover + 1e-9);
        assert!((below - above).abs() < 1e-6, "{below} vs {above}");
    }

    #[test]
    fn fourth_power_decay_beyond_crossover() {
        let ch = two_ray();
        // Doubling the distance in the far region costs ~12 dB (40 log10 2).
        let a = ch.mean_rssi(60.0).value();
        let b = ch.mean_rssi(120.0).value();
        assert!((a - b - 12.04).abs() < 0.1, "delta {}", a - b);
        // Near region: free-space-like 6 dB per doubling.
        let c = ch.mean_rssi(5.0).value();
        let d = ch.mean_rssi(10.0).value();
        assert!((c - d - 6.02).abs() < 0.1, "delta {}", c - d);
    }

    #[test]
    fn inverse_roundtrips_across_the_crossover() {
        let ch = two_ray();
        for dist in [2.0, 10.0, 25.0, 26.0, 60.0, 140.0] {
            let r = ch.mean_rssi(dist);
            let back = ch.distance_for_mean_rssi(r);
            assert!((back - dist).abs() / dist < 1e-9, "{dist} -> {back}");
        }
    }

    #[test]
    fn two_ray_contrasts_with_log_distance() {
        let tr = two_ray();
        let ld = RfChannel::default();
        // Near field: two-ray's exponent-2 decay loses less power than
        // log-distance exponent 3...
        assert!(tr.mean_rssi(20.0) > ld.mean_rssi(20.0));
        // ...while the far field decays faster per doubling (40 vs 30
        // dB/decade), so the *slope* is steeper.
        let tr_slope = tr.mean_rssi(80.0) - tr.mean_rssi(160.0);
        let ld_slope = ld.mean_rssi(80.0) - ld.mean_rssi(160.0);
        assert!(tr_slope > ld_slope, "{tr_slope} vs {ld_slope}");
        assert!(tr.max_range() > 30.0, "still usable: {}", tr.max_range());
    }

    #[test]
    fn calibration_works_on_two_ray() {
        use crate::calibration::{calibrate, CalibrationConfig};
        use cocoa_sim::rng::SeedSplitter;
        let ch = two_ray();
        let table = calibrate(
            &ch,
            &CalibrationConfig {
                samples_per_distance: 60,
                ..Default::default()
            },
            &mut SeedSplitter::new(4).stream("cal", 0),
        );
        assert!(table.len() > 15, "bins {}", table.len());
        let pdf = table.lookup(ch.mean_rssi(10.0)).expect("near bin");
        assert!((pdf.mean() - 10.0).abs() < 4.0);
    }

    #[test]
    #[should_panic(expected = "antenna height")]
    fn zero_antenna_height_rejected() {
        let _ = RfChannel::new(ChannelParams {
            path_loss: PathLossModel::TwoRayGround {
                antenna_height_m: 0.0,
                wavelength_m: 0.125,
            },
            ..ChannelParams::default()
        });
    }
}
