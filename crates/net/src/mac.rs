//! The shared broadcast medium: overlap-based collisions with capture.
//!
//! The paper broadcasts beacons over 802.11b UDP. We model the medium at
//! the granularity that matters for beacon delivery:
//!
//! - every transmission occupies the air for `wire_size × 8 / bitrate`;
//! - a receiver successfully decodes a frame iff its RSSI is above the
//!   sensitivity floor **and** no time-overlapping frame arrives within the
//!   capture margin (10 dB, the classic 802.11 capture threshold) — the
//!   stronger frame survives, comparable frames destroy each other;
//! - radios are half-duplex: a node transmitting during any part of a
//!   frame's airtime cannot receive it.
//!
//! Senders use randomized jitter inside the CoCoA transmit window (the
//! paper sends k = 3 beacons for reliability precisely because collisions
//! and fades happen); a [`Medium::next_clear_time`] helper supports
//! carrier-sense deferral.

use std::collections::HashMap;

use cocoa_sim::time::{SimDuration, SimTime};

use crate::geometry::Point;
use crate::packet::{NodeId, Packet};
use crate::rssi::Dbm;

/// Identifier of one transmission on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(u64);

impl TxId {
    /// The underlying allocation counter value (checkpoint support).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from [`TxId::raw`]. Only meaningful against the
    /// medium that originally allocated it.
    pub fn from_raw(v: u64) -> Self {
        TxId(v)
    }
}

/// The classic 802.11 capture threshold, dB: a frame is decodable in the
/// presence of an overlapping frame only if it is this much stronger.
pub const DEFAULT_CAPTURE_MARGIN_DB: f64 = 10.0;

#[derive(Debug, Clone)]
struct ActiveTx {
    id: TxId,
    src: NodeId,
    src_pos: Point,
    start: SimTime,
    end: SimTime,
    packet: Packet,
}

/// Outcome of a reception attempt, as judged at the frame's end time.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceptionOutcome {
    /// Frame decoded; carries the sampled RSSI and the packet.
    Delivered {
        /// Received signal strength of the decoded frame.
        rssi: Dbm,
        /// The decoded packet.
        packet: Packet,
    },
    /// Destroyed by an overlapping transmission within the capture margin.
    Collided {
        /// One interfering node (the strongest).
        interferer: NodeId,
    },
    /// The receiver itself was transmitting during the frame (half-duplex).
    HalfDuplex,
    /// No RSSI was recorded for this `(tx, rx)` pair — the frame was below
    /// sensitivity or the receiver was asleep at frame start.
    NotReceivable,
    /// The transmission was already garbage-collected when the outcome was
    /// queried — the reception attempt is simply dropped. A model that
    /// queries on time never sees this, but a late query (a fault-injected
    /// or rebooted node replaying stale state) degrades to a lost frame
    /// instead of a panic.
    Expired,
}

/// The shared broadcast medium.
///
/// The simulation runner drives it in two phases per frame:
///
/// 1. at frame start, [`Medium::begin_tx`] registers the transmission and
///    [`Medium::record_rssi`] stores the sampled RSSI for each awake,
///    in-range receiver;
/// 2. at frame end, [`Medium::outcome`] judges delivery against every
///    overlapping transmission.
///
/// # Examples
///
/// ```
/// use cocoa_net::mac::{Medium, ReceptionOutcome};
/// use cocoa_net::packet::{NodeId, Packet, Payload};
/// use cocoa_net::geometry::Point;
/// use cocoa_net::rssi::Dbm;
/// use cocoa_sim::time::{SimDuration, SimTime};
///
/// let mut medium = Medium::new();
/// let pkt = Packet::new(NodeId(1), 0, Payload::Beacon { position: Point::ORIGIN });
/// let tx = medium.begin_tx(NodeId(1), Point::ORIGIN, pkt, SimTime::ZERO,
///                          SimDuration::from_micros(260));
/// medium.record_rssi(tx, NodeId(2), Dbm::new(-60.0));
/// match medium.outcome(tx, NodeId(2)) {
///     ReceptionOutcome::Delivered { rssi, .. } => assert_eq!(rssi.value(), -60.0),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Medium {
    active: Vec<ActiveTx>,
    rssi: HashMap<(TxId, NodeId), Dbm>,
    capture_margin_db: f64,
    retention: SimDuration,
    next_id: u64,
    total_tx: u64,
    total_collisions: u64,
    total_half_duplex: u64,
}

impl Default for Medium {
    fn default() -> Self {
        Self::new()
    }
}

impl Medium {
    /// Creates a medium with the default 10 dB capture margin.
    pub fn new() -> Self {
        Medium::with_capture_margin(DEFAULT_CAPTURE_MARGIN_DB)
    }

    /// Creates a medium with an explicit capture margin in dB.
    ///
    /// # Panics
    ///
    /// Panics if the margin is negative.
    pub fn with_capture_margin(margin_db: f64) -> Self {
        assert!(margin_db >= 0.0, "capture margin must be non-negative");
        Medium {
            active: Vec::new(),
            rssi: HashMap::new(),
            capture_margin_db: margin_db,
            retention: SimDuration::from_millis(10),
            next_id: 0,
            total_tx: 0,
            total_collisions: 0,
            total_half_duplex: 0,
        }
    }

    /// Registers a transmission occupying `[start, start + duration)`.
    pub fn begin_tx(
        &mut self,
        src: NodeId,
        src_pos: Point,
        packet: Packet,
        start: SimTime,
        duration: SimDuration,
    ) -> TxId {
        let id = TxId(self.next_id);
        self.next_id += 1;
        self.total_tx += 1;
        self.active.push(ActiveTx {
            id,
            src,
            src_pos,
            start,
            end: start + duration,
            packet,
        });
        id
    }

    /// Records the sampled RSSI of transmission `tx` at receiver `rx`.
    /// Call only for receivers that were awake and above sensitivity.
    pub fn record_rssi(&mut self, tx: TxId, rx: NodeId, rssi: Dbm) {
        self.rssi.insert((tx, rx), rssi);
    }

    fn find(&self, tx: TxId) -> Option<&ActiveTx> {
        self.active.iter().find(|t| t.id == tx)
    }

    /// Judges the reception of `tx` at `rx`. Meant to be called at the
    /// frame's end time, after all overlapping frames have started. A `tx`
    /// that was already garbage-collected yields
    /// [`ReceptionOutcome::Expired`] — the attempt is dropped, never a
    /// panic.
    pub fn outcome(&mut self, tx: TxId, rx: NodeId) -> ReceptionOutcome {
        let Some(frame) = self.find(tx).cloned() else {
            return ReceptionOutcome::Expired;
        };
        let Some(&rssi) = self.rssi.get(&(tx, rx)) else {
            return ReceptionOutcome::NotReceivable;
        };
        // Half-duplex: the receiver transmitting during any overlap kills it.
        let rx_was_txing = self
            .active
            .iter()
            .any(|t| t.src == rx && t.start < frame.end && t.end > frame.start);
        if rx_was_txing {
            self.total_collisions += 1;
            self.total_half_duplex += 1;
            return ReceptionOutcome::HalfDuplex;
        }
        // Strongest overlapping interferer that this receiver could hear.
        let mut worst: Option<(Dbm, NodeId)> = None;
        for other in &self.active {
            if other.id == tx || other.end <= frame.start || other.start >= frame.end {
                continue;
            }
            if let Some(&irssi) = self.rssi.get(&(other.id, rx)) {
                if worst.is_none_or(|(w, _)| irssi > w) {
                    worst = Some((irssi, other.src));
                }
            }
        }
        if let Some((irssi, interferer)) = worst {
            if rssi.value() < irssi.value() + self.capture_margin_db {
                self.total_collisions += 1;
                return ReceptionOutcome::Collided { interferer };
            }
        }
        ReceptionOutcome::Delivered {
            rssi,
            packet: frame.packet,
        }
    }

    /// Earliest time at or after `now` at which the medium is clear within
    /// `cs_range` metres of `pos` (simple carrier-sense helper).
    pub fn next_clear_time(&self, pos: Point, cs_range: f64, now: SimTime) -> SimTime {
        let mut clear = now;
        for t in &self.active {
            if t.end > clear && t.start <= clear && t.src_pos.distance_to(pos) <= cs_range {
                clear = t.end;
            }
        }
        clear
    }

    /// Drops transmissions that ended more than the retention window before
    /// `now`. Outcomes must be queried before their frame ages out.
    pub fn gc(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO); // now as duration
        let retention = self.retention;
        let keep_after = if cutoff > retention {
            SimTime::ZERO + (cutoff - retention)
        } else {
            SimTime::ZERO
        };
        let before = self.active.len();
        self.active.retain(|t| t.end >= keep_after);
        if self.active.len() != before {
            let live: std::collections::HashSet<TxId> = self.active.iter().map(|t| t.id).collect();
            self.rssi.retain(|(tx, _), _| live.contains(tx));
        }
    }

    /// Number of transmissions ever registered.
    pub fn transmissions(&self) -> u64 {
        self.total_tx
    }

    /// Number of reception attempts judged collided or half-duplex.
    pub fn collisions(&self) -> u64 {
        self.total_collisions
    }

    /// The subset of [`Medium::collisions`] lost to the receiver itself
    /// transmitting (half-duplex), rather than to an interfering frame.
    pub fn half_duplex(&self) -> u64 {
        self.total_half_duplex
    }

    /// The medium's complete state as checkpoint data. Active frames keep
    /// their registration order (delivery judgement iterates them in
    /// order); RSSI records are sorted by `(tx, rx)` so serialized bytes
    /// never depend on hash-map iteration order.
    pub fn state(&self) -> MediumState {
        let mut rssi: Vec<(TxId, NodeId, Dbm)> = self
            .rssi
            .iter()
            .map(|(&(tx, rx), &dbm)| (tx, rx, dbm))
            .collect();
        rssi.sort_by_key(|&(tx, rx, _)| (tx, rx));
        MediumState {
            active: self
                .active
                .iter()
                .map(|t| ActiveTxState {
                    id: t.id,
                    src: t.src,
                    src_pos: t.src_pos,
                    start: t.start,
                    end: t.end,
                    packet: t.packet.clone(),
                })
                .collect(),
            rssi,
            capture_margin_db: self.capture_margin_db,
            retention: self.retention,
            next_id: self.next_id,
            total_tx: self.total_tx,
            total_collisions: self.total_collisions,
            total_half_duplex: self.total_half_duplex,
        }
    }

    /// Rebuilds a medium from checkpointed state.
    pub fn from_state(state: MediumState) -> Self {
        Medium {
            active: state
                .active
                .into_iter()
                .map(|t| ActiveTx {
                    id: t.id,
                    src: t.src,
                    src_pos: t.src_pos,
                    start: t.start,
                    end: t.end,
                    packet: t.packet,
                })
                .collect(),
            rssi: state
                .rssi
                .into_iter()
                .map(|(tx, rx, dbm)| ((tx, rx), dbm))
                .collect(),
            capture_margin_db: state.capture_margin_db,
            retention: state.retention,
            next_id: state.next_id,
            total_tx: state.total_tx,
            total_collisions: state.total_collisions,
            total_half_duplex: state.total_half_duplex,
        }
    }
}

/// One in-flight transmission as checkpoint data.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveTxState {
    /// The transmission's id.
    pub id: TxId,
    /// Transmitting node.
    pub src: NodeId,
    /// Transmitter position at frame start.
    pub src_pos: Point,
    /// Airtime start.
    pub start: SimTime,
    /// Airtime end.
    pub end: SimTime,
    /// The frame on the air.
    pub packet: Packet,
}

/// The medium's complete state as checkpoint data (see [`Medium::state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MediumState {
    /// In-flight transmissions, in registration order.
    pub active: Vec<ActiveTxState>,
    /// Recorded RSSI samples, sorted by `(tx, rx)`.
    pub rssi: Vec<(TxId, NodeId, Dbm)>,
    /// Capture margin, dB.
    pub capture_margin_db: f64,
    /// How long ended frames are retained for late outcome queries.
    pub retention: SimDuration,
    /// Next [`TxId`] to allocate.
    pub next_id: u64,
    /// Transmissions ever registered.
    pub total_tx: u64,
    /// Reception attempts judged collided or half-duplex.
    pub total_collisions: u64,
    /// The half-duplex subset of the collision total.
    pub total_half_duplex: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;

    fn beacon(src: u32, seq: u32) -> Packet {
        Packet::new(
            NodeId(src),
            seq,
            Payload::Beacon {
                position: Point::new(f64::from(src), 0.0),
            },
        )
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn lone_frame_is_delivered() {
        let mut m = Medium::new();
        let tx = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        m.record_rssi(tx, NodeId(2), Dbm::new(-55.0));
        assert!(matches!(
            m.outcome(tx, NodeId(2)),
            ReceptionOutcome::Delivered { .. }
        ));
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn unrecorded_receiver_is_not_receivable() {
        let mut m = Medium::new();
        let tx = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        assert_eq!(m.outcome(tx, NodeId(9)), ReceptionOutcome::NotReceivable);
    }

    #[test]
    fn comparable_overlapping_frames_collide() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        let b = m.begin_tx(
            NodeId(2),
            Point::new(5.0, 0.0),
            beacon(2, 0),
            at(100),
            us(260),
        );
        m.record_rssi(a, NodeId(3), Dbm::new(-60.0));
        m.record_rssi(b, NodeId(3), Dbm::new(-62.0)); // within 10 dB
        assert_eq!(
            m.outcome(a, NodeId(3)),
            ReceptionOutcome::Collided {
                interferer: NodeId(2)
            }
        );
        assert_eq!(
            m.outcome(b, NodeId(3)),
            ReceptionOutcome::Collided {
                interferer: NodeId(1)
            }
        );
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn much_stronger_frame_captures() {
        let mut m = Medium::new();
        let strong = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        let weak = m.begin_tx(
            NodeId(2),
            Point::new(50.0, 0.0),
            beacon(2, 0),
            at(50),
            us(260),
        );
        m.record_rssi(strong, NodeId(3), Dbm::new(-50.0));
        m.record_rssi(weak, NodeId(3), Dbm::new(-75.0));
        assert!(matches!(
            m.outcome(strong, NodeId(3)),
            ReceptionOutcome::Delivered { .. }
        ));
        assert!(matches!(
            m.outcome(weak, NodeId(3)),
            ReceptionOutcome::Collided { .. }
        ));
    }

    #[test]
    fn non_overlapping_frames_do_not_interfere() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        let b = m.begin_tx(NodeId(2), Point::ORIGIN, beacon(2, 0), at(260), us(260));
        m.record_rssi(a, NodeId(3), Dbm::new(-60.0));
        m.record_rssi(b, NodeId(3), Dbm::new(-60.0));
        assert!(matches!(
            m.outcome(a, NodeId(3)),
            ReceptionOutcome::Delivered { .. }
        ));
        assert!(matches!(
            m.outcome(b, NodeId(3)),
            ReceptionOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn half_duplex_receiver_drops_frame() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        // Node 2 transmits overlapping with a's airtime.
        let _b = m.begin_tx(
            NodeId(2),
            Point::new(5.0, 0.0),
            beacon(2, 0),
            at(100),
            us(260),
        );
        m.record_rssi(a, NodeId(2), Dbm::new(-40.0));
        assert_eq!(m.outcome(a, NodeId(2)), ReceptionOutcome::HalfDuplex);
        assert_eq!(m.half_duplex(), 1);
        assert_eq!(m.collisions(), 1);
    }

    #[test]
    fn interferer_unheard_by_receiver_is_harmless() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        // Far-away node transmits concurrently but below this receiver's
        // sensitivity: no RSSI recorded for it.
        let _b = m.begin_tx(
            NodeId(2),
            Point::new(500.0, 0.0),
            beacon(2, 0),
            at(0),
            us(260),
        );
        m.record_rssi(a, NodeId(3), Dbm::new(-60.0));
        assert!(matches!(
            m.outcome(a, NodeId(3)),
            ReceptionOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn carrier_sense_reports_busy_medium() {
        let mut m = Medium::new();
        m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(1000));
        // Within carrier-sense range: must wait for the frame to end.
        assert_eq!(
            m.next_clear_time(Point::new(10.0, 0.0), 100.0, at(500)),
            at(1000)
        );
        // Out of range: clear immediately.
        assert_eq!(
            m.next_clear_time(Point::new(500.0, 0.0), 100.0, at(500)),
            at(500)
        );
    }

    #[test]
    fn gc_reclaims_old_frames() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        m.record_rssi(a, NodeId(2), Dbm::new(-60.0));
        m.gc(at(100_000_000)); // 100 s later
        assert_eq!(m.transmissions(), 1);
        // The frame and its RSSI records are gone: the attempt expires
        // gracefully instead of panicking.
        assert_eq!(m.outcome(a, NodeId(2)), ReceptionOutcome::Expired);
    }

    #[test]
    fn state_round_trip_preserves_outcomes_and_ids() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        let b = m.begin_tx(
            NodeId(2),
            Point::new(5.0, 0.0),
            beacon(2, 0),
            at(100),
            us(260),
        );
        m.record_rssi(a, NodeId(3), Dbm::new(-60.0));
        m.record_rssi(b, NodeId(3), Dbm::new(-62.0));
        let mut r = Medium::from_state(m.state());
        assert_eq!(m.outcome(a, NodeId(3)), r.outcome(a, NodeId(3)));
        assert_eq!(m.outcome(b, NodeId(3)), r.outcome(b, NodeId(3)));
        assert_eq!(m.transmissions(), r.transmissions());
        assert_eq!(m.collisions(), r.collisions());
        // Id allocation continues where the original left off.
        let next_m = m.begin_tx(NodeId(4), Point::ORIGIN, beacon(4, 0), at(600), us(260));
        let next_r = r.begin_tx(NodeId(4), Point::ORIGIN, beacon(4, 0), at(600), us(260));
        assert_eq!(next_m, next_r);
        assert_eq!(TxId::from_raw(next_m.raw()), next_m);
    }

    #[test]
    fn gc_keeps_recent_frames() {
        let mut m = Medium::new();
        let a = m.begin_tx(NodeId(1), Point::ORIGIN, beacon(1, 0), at(0), us(260));
        m.record_rssi(a, NodeId(2), Dbm::new(-60.0));
        m.gc(at(5_000)); // within retention
        assert!(matches!(
            m.outcome(a, NodeId(2)),
            ReceptionOutcome::Delivered { .. }
        ));
    }
}
