//! The offline calibration phase and the PDF Table.
//!
//! Before deployment, the paper runs a calibration campaign that maps every
//! RSSI value to a probability distribution function of distance — the
//! **PDF Table** stored at each node (Section 2.2). Their measurements
//! showed the PDFs are Gaussian for RSSI down to −80 dBm (distances up to
//! ~40 m) and visibly non-Gaussian beyond (Fig. 1).
//!
//! We reproduce the campaign against the synthetic [`RfChannel`]: sample
//! RSSI over a sweep of ground-truth distances, bucket the samples by
//! integer-dBm bin, and fit
//!
//! - a **Gaussian** distance PDF for bins at or above the channel's
//!   Gaussian floor, and
//! - an **empirical histogram** PDF for the noisy far-field bins,
//!
//! exactly mirroring the decision the authors made from their Fig. 1.

use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channel::RfChannel;
use crate::rssi::{Dbm, RssiBin};

/// Parameters of the calibration campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Closest measured distance, metres.
    pub d_min: f64,
    /// Farthest measured distance, metres (clamped to the channel range
    /// when `None`).
    pub d_max: Option<f64>,
    /// Spacing between measurement distances, metres.
    pub step_m: f64,
    /// RSSI samples collected at each distance.
    pub samples_per_distance: usize,
    /// Bins with fewer samples than this are dropped as unreliable.
    pub min_samples_per_bin: usize,
    /// Histogram cell width for empirical (non-Gaussian) PDFs, metres.
    pub histogram_bin_m: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            d_min: 0.5,
            d_max: None,
            step_m: 0.5,
            samples_per_distance: 200,
            min_samples_per_bin: 40,
            histogram_bin_m: 2.0,
        }
    }
}

/// The distance PDF stored for one RSSI bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistancePdf {
    /// A Gaussian fit — valid in the near field (paper Fig. 1(a)).
    Gaussian {
        /// Mean distance, metres.
        mean: f64,
        /// Standard deviation, metres.
        sigma: f64,
    },
    /// An empirical histogram — the far field where multipath breaks the
    /// Gaussian assumption (paper Fig. 1(b)).
    Empirical {
        /// Distance at the left edge of the first cell, metres.
        origin: f64,
        /// Cell width, metres.
        bin_width: f64,
        /// Normalized densities per cell (integrates to 1).
        densities: Vec<f64>,
        /// Sample mean, metres.
        mean: f64,
        /// Sample standard deviation, metres.
        sigma: f64,
    },
}

impl DistancePdf {
    /// Probability density at distance `d`.
    pub fn density(&self, d: f64) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, sigma } => {
                let z = (d - mean) / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            }
            DistancePdf::Empirical {
                origin,
                bin_width,
                densities,
                ..
            } => {
                if d < *origin {
                    return 0.0;
                }
                let idx = ((d - origin) / bin_width) as usize;
                densities.get(idx).copied().unwrap_or(0.0)
            }
        }
    }

    /// Mean distance of the PDF, metres.
    pub fn mean(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, .. } => *mean,
            DistancePdf::Empirical { mean, .. } => *mean,
        }
    }

    /// Standard deviation of the PDF, metres.
    pub fn sigma(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { sigma, .. } => *sigma,
            DistancePdf::Empirical { sigma, .. } => *sigma,
        }
    }

    /// Whether this bin kept the Gaussian form.
    pub fn is_gaussian(&self) -> bool {
        matches!(self, DistancePdf::Gaussian { .. })
    }

    /// A conservative upper bound on distances with non-negligible density
    /// (used to prune grid updates).
    pub fn support_max(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, sigma } => mean + 5.0 * sigma,
            DistancePdf::Empirical {
                origin,
                bin_width,
                densities,
                ..
            } => origin + bin_width * densities.len() as f64,
        }
    }
}

/// The PDF Table: integer-dBm RSSI bin → distance PDF.
///
/// # Examples
///
/// ```
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(7).stream("calibration", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
/// // A strong beacon implies a short, tightly-bounded distance.
/// let rssi = channel.mean_rssi(10.0);
/// let pdf = table.lookup(rssi).expect("bin present");
/// assert!((pdf.mean() - 10.0).abs() < 3.0);
/// assert!(pdf.is_gaussian());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdfTable {
    bins: BTreeMap<i16, DistancePdf>,
    /// Bins at/above this RSSI kept the Gaussian form (−80 dBm for the
    /// default channel, per the paper).
    gaussian_floor_dbm: f64,
}

impl PdfTable {
    /// Builds a table directly from per-bin PDFs (mainly for tests).
    pub fn from_entries(
        entries: impl IntoIterator<Item = (RssiBin, DistancePdf)>,
        gaussian_floor_dbm: f64,
    ) -> Self {
        PdfTable {
            bins: entries.into_iter().map(|(b, p)| (b.0, p)).collect(),
            gaussian_floor_dbm,
        }
    }

    /// Looks up the PDF for an observed RSSI, falling back to the nearest
    /// bin within ±3 dB (sparse bins happen at the extremes of the sweep).
    pub fn lookup(&self, rssi: Dbm) -> Option<&DistancePdf> {
        let key = rssi.bin().0;
        if let Some(pdf) = self.bins.get(&key) {
            return Some(pdf);
        }
        (1..=3)
            .flat_map(|delta| [key - delta, key + delta])
            .find_map(|k| self.bins.get(&k))
    }

    /// Number of calibrated bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Iterates over `(bin, pdf)` in increasing RSSI order.
    pub fn entries(&self) -> impl Iterator<Item = (RssiBin, &DistancePdf)> {
        self.bins.iter().map(|(&k, v)| (RssiBin(k), v))
    }

    /// The RSSI below which bins are empirical rather than Gaussian.
    pub fn gaussian_floor(&self) -> Dbm {
        Dbm::new(self.gaussian_floor_dbm)
    }
}

/// Runs the calibration campaign against `channel`.
///
/// Sweeps ground-truth distances, samples the channel at each, buckets the
/// samples by integer-dBm RSSI and fits a distance PDF per bin.
///
/// # Panics
///
/// Panics if the configuration is degenerate (non-positive step, zero
/// samples, inverted range).
pub fn calibrate<R: Rng + ?Sized>(
    channel: &RfChannel,
    config: &CalibrationConfig,
    rng: &mut R,
) -> PdfTable {
    assert!(config.step_m > 0.0, "calibration step must be positive");
    assert!(config.samples_per_distance > 0, "need at least one sample per distance");
    assert!(config.histogram_bin_m > 0.0, "histogram bin must be positive");
    let d_max = config.d_max.unwrap_or_else(|| channel.max_range());
    assert!(config.d_min > 0.0 && config.d_min < d_max, "invalid calibration range");

    // Collect (distance) samples per RSSI bin.
    let mut by_bin: BTreeMap<i16, Vec<f64>> = BTreeMap::new();
    let mut d = config.d_min;
    while d <= d_max {
        for _ in 0..config.samples_per_distance {
            let rssi = channel.sample_rssi(d, rng);
            // Samples below the receiver sensitivity are never actually
            // received, so no PDF is learned for them.
            if channel.is_detectable(rssi) {
                by_bin.entry(rssi.bin().0).or_default().push(d);
            }
        }
        d += config.step_m;
    }

    let gaussian_floor = channel.gaussian_rssi_floor().value();
    let mut bins = BTreeMap::new();
    for (bin, samples) in by_bin {
        if samples.len() < config.min_samples_per_bin {
            continue;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let sigma = var.sqrt().max(0.25);
        let pdf = if f64::from(bin) >= gaussian_floor {
            DistancePdf::Gaussian { mean, sigma }
        } else {
            // Histogram over the sample support.
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let width = config.histogram_bin_m;
            let cells = (((hi - lo) / width).ceil() as usize).max(1);
            let mut counts = vec![0usize; cells];
            for &s in &samples {
                let idx = (((s - lo) / width) as usize).min(cells - 1);
                counts[idx] += 1;
            }
            let densities: Vec<f64> = counts
                .iter()
                .map(|&c| c as f64 / (n * width))
                .collect();
            DistancePdf::Empirical {
                origin: lo,
                bin_width: width,
                densities,
                mean,
                sigma,
            }
        };
        bins.insert(bin, pdf);
    }
    PdfTable {
        bins,
        gaussian_floor_dbm: gaussian_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::rng::SeedSplitter;

    fn table() -> (RfChannel, PdfTable) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(100).stream("calibration", 0);
        let t = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        (ch, t)
    }

    #[test]
    fn near_field_bins_are_gaussian_far_field_empirical() {
        let (ch, t) = table();
        let strong = t.lookup(ch.mean_rssi(10.0)).expect("strong bin");
        assert!(strong.is_gaussian(), "10 m bin should be Gaussian");
        let weak = t.lookup(ch.mean_rssi(80.0)).expect("weak bin");
        assert!(!weak.is_gaussian(), "80 m bin should be empirical");
    }

    #[test]
    fn pdf_means_track_true_distance() {
        let (ch, t) = table();
        for d in [5.0, 10.0, 20.0, 35.0] {
            let pdf = t.lookup(ch.mean_rssi(d)).expect("bin");
            assert!(
                (pdf.mean() - d).abs() < 0.35 * d + 2.0,
                "bin for {d} m has mean {}",
                pdf.mean()
            );
        }
    }

    #[test]
    fn sigma_grows_with_distance() {
        let (ch, t) = table();
        let near = t.lookup(ch.mean_rssi(5.0)).unwrap().sigma();
        let far = t.lookup(ch.mean_rssi(35.0)).unwrap().sigma();
        assert!(far > near, "near sigma {near}, far sigma {far}");
    }

    #[test]
    fn gaussian_density_integrates_to_one() {
        let pdf = DistancePdf::Gaussian { mean: 10.0, sigma: 2.0 };
        let mut integral = 0.0;
        let step = 0.01;
        let mut d = 0.0;
        while d < 30.0 {
            integral += pdf.density(d) * step;
            d += step;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn empirical_density_integrates_to_one() {
        let (ch, t) = table();
        let pdf = t.lookup(ch.mean_rssi(90.0)).expect("far bin");
        let mut integral = 0.0;
        let step = 0.05;
        let mut d = 0.0;
        while d < pdf.support_max() + 5.0 {
            integral += pdf.density(d) * step;
            d += step;
        }
        assert!((integral - 1.0).abs() < 2e-2, "integral {integral}");
    }

    #[test]
    fn lookup_falls_back_to_nearby_bin() {
        let t = PdfTable::from_entries(
            [(RssiBin(-50), DistancePdf::Gaussian { mean: 5.0, sigma: 1.0 })],
            -80.0,
        );
        assert!(t.lookup(Dbm::new(-50.0)).is_some());
        assert!(t.lookup(Dbm::new(-52.4)).is_some(), "±3 dB fallback");
        assert!(t.lookup(Dbm::new(-60.0)).is_none(), "too far to fall back");
    }

    #[test]
    fn support_max_bounds_density() {
        let (ch, t) = table();
        for (_, pdf) in t.entries() {
            let beyond = pdf.support_max() + 1.0;
            assert!(pdf.density(beyond) < 1e-4, "density beyond support");
        }
        let _ = ch;
    }

    #[test]
    fn deterministic_given_seed() {
        let ch = RfChannel::default();
        let cfg = CalibrationConfig { samples_per_distance: 50, ..Default::default() };
        let a = calibrate(&ch, &cfg, &mut SeedSplitter::new(5).stream("c", 0));
        let b = calibrate(&ch, &cfg, &mut SeedSplitter::new(5).stream("c", 0));
        assert_eq!(a, b);
    }

    #[test]
    fn table_covers_a_wide_rssi_span() {
        let (_, t) = table();
        assert!(t.len() > 30, "expected a rich table, got {} bins", t.len());
        let bins: Vec<i16> = t.entries().map(|(b, _)| b.0).collect();
        assert!(*bins.first().unwrap() < -85);
        assert!(*bins.last().unwrap() > -45);
    }
}
