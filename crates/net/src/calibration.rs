//! The offline calibration phase and the PDF Table.
//!
//! Before deployment, the paper runs a calibration campaign that maps every
//! RSSI value to a probability distribution function of distance — the
//! **PDF Table** stored at each node (Section 2.2). Their measurements
//! showed the PDFs are Gaussian for RSSI down to −80 dBm (distances up to
//! ~40 m) and visibly non-Gaussian beyond (Fig. 1).
//!
//! We reproduce the campaign against the synthetic [`RfChannel`]: sample
//! RSSI over a sweep of ground-truth distances, bucket the samples by
//! integer-dBm bin, and fit
//!
//! - a **Gaussian** distance PDF for bins at or above the channel's
//!   Gaussian floor, and
//! - an **empirical histogram** PDF for the noisy far-field bins,
//!
//! exactly mirroring the decision the authors made from their Fig. 1.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channel::RfChannel;
use crate::rssi::{Dbm, RssiBin};

/// Parameters of the calibration campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Closest measured distance, metres.
    pub d_min: f64,
    /// Farthest measured distance, metres (clamped to the channel range
    /// when `None`).
    pub d_max: Option<f64>,
    /// Spacing between measurement distances, metres.
    pub step_m: f64,
    /// RSSI samples collected at each distance.
    pub samples_per_distance: usize,
    /// Bins with fewer samples than this are dropped as unreliable.
    pub min_samples_per_bin: usize,
    /// Histogram cell width for empirical (non-Gaussian) PDFs, metres.
    pub histogram_bin_m: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            d_min: 0.5,
            d_max: None,
            step_m: 0.5,
            samples_per_distance: 200,
            min_samples_per_bin: 40,
            histogram_bin_m: 2.0,
        }
    }
}

/// The distance PDF stored for one RSSI bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistancePdf {
    /// A Gaussian fit — valid in the near field (paper Fig. 1(a)).
    Gaussian {
        /// Mean distance, metres.
        mean: f64,
        /// Standard deviation, metres.
        sigma: f64,
    },
    /// An empirical histogram — the far field where multipath breaks the
    /// Gaussian assumption (paper Fig. 1(b)).
    Empirical {
        /// Distance at the left edge of the first cell, metres.
        origin: f64,
        /// Cell width, metres.
        bin_width: f64,
        /// Normalized densities per cell (integrates to 1).
        densities: Vec<f64>,
        /// Sample mean, metres.
        mean: f64,
        /// Sample standard deviation, metres.
        sigma: f64,
    },
}

impl DistancePdf {
    /// Probability density at distance `d`.
    pub fn density(&self, d: f64) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, sigma } => {
                let z = (d - mean) / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            }
            DistancePdf::Empirical {
                origin,
                bin_width,
                densities,
                ..
            } => {
                if d < *origin {
                    return 0.0;
                }
                let idx = ((d - origin) / bin_width) as usize;
                densities.get(idx).copied().unwrap_or(0.0)
            }
        }
    }

    /// Mean distance of the PDF, metres.
    pub fn mean(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, .. } => *mean,
            DistancePdf::Empirical { mean, .. } => *mean,
        }
    }

    /// Standard deviation of the PDF, metres.
    pub fn sigma(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { sigma, .. } => *sigma,
            DistancePdf::Empirical { sigma, .. } => *sigma,
        }
    }

    /// Whether this bin kept the Gaussian form.
    pub fn is_gaussian(&self) -> bool {
        matches!(self, DistancePdf::Gaussian { .. })
    }

    /// A conservative upper bound on distances with non-negligible density
    /// (used to prune grid updates).
    pub fn support_max(&self) -> f64 {
        match self {
            DistancePdf::Gaussian { mean, sigma } => mean + 5.0 * sigma,
            DistancePdf::Empirical {
                origin,
                bin_width,
                densities,
                ..
            } => origin + bin_width * densities.len() as f64,
        }
    }
}

/// Widest bin-distance the lookup fallback will bridge, dB.
const MAX_FALLBACK_DB: i16 = 3;

/// Resolves an observed RSSI to the calibrated bin a lookup should use:
/// the exact bin when present, otherwise — within ±[`MAX_FALLBACK_DB`] —
/// the present bin whose centre is nearest the *continuous* RSSI value,
/// ties broken towards the stronger bin. Shared by [`PdfTable`] and
/// [`RadialConstraintTable`] so the two stay bit-for-bit consistent.
fn nearest_present_bin(rssi: Dbm, present: impl Fn(i16) -> bool) -> Option<i16> {
    let key = rssi.bin().0;
    if present(key) {
        return Some(key);
    }
    let mut best: Option<(f64, i16)> = None;
    for k in (key - MAX_FALLBACK_DB)..=(key + MAX_FALLBACK_DB) {
        if k == key || !present(k) {
            continue;
        }
        let dist = (f64::from(k) - rssi.value()).abs();
        let replace = best.is_none_or(|(bd, bk)| dist < bd || (dist == bd && k > bk));
        if replace {
            best = Some((dist, k));
        }
    }
    best.map(|(_, k)| k)
}

/// The PDF Table: integer-dBm RSSI bin → distance PDF.
///
/// Stored as a dense vector indexed by bin offset from the weakest
/// calibrated bin, so the hot-path [`lookup`](PdfTable::lookup) is an
/// index computation instead of a tree walk (calibrated tables span a
/// contiguous ~50 dB, so density is essentially free).
///
/// # Examples
///
/// ```
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(7).stream("calibration", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
/// // A strong beacon implies a short, tightly-bounded distance.
/// let rssi = channel.mean_rssi(10.0);
/// let pdf = table.lookup(rssi).expect("bin present");
/// assert!((pdf.mean() - 10.0).abs() < 3.0);
/// assert!(pdf.is_gaussian());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdfTable {
    /// Weakest calibrated bin; `slots[i]` holds bin `min_bin + i`.
    min_bin: i16,
    slots: Vec<Option<DistancePdf>>,
    /// Bins at/above this RSSI kept the Gaussian form (−80 dBm for the
    /// default channel, per the paper).
    gaussian_floor_dbm: f64,
}

impl PdfTable {
    /// Builds a table directly from per-bin PDFs (mainly for tests).
    pub fn from_entries(
        entries: impl IntoIterator<Item = (RssiBin, DistancePdf)>,
        gaussian_floor_dbm: f64,
    ) -> Self {
        let bins: BTreeMap<i16, DistancePdf> = entries.into_iter().map(|(b, p)| (b.0, p)).collect();
        Self::from_sorted(bins, gaussian_floor_dbm)
    }

    fn from_sorted(bins: BTreeMap<i16, DistancePdf>, gaussian_floor_dbm: f64) -> Self {
        let (min_bin, max_bin) = match (bins.keys().next(), bins.keys().next_back()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => {
                return PdfTable {
                    min_bin: 0,
                    slots: Vec::new(),
                    gaussian_floor_dbm,
                }
            }
        };
        let mut slots = vec![None; (max_bin - min_bin) as usize + 1];
        for (k, pdf) in bins {
            slots[(k - min_bin) as usize] = Some(pdf);
        }
        PdfTable {
            min_bin,
            slots,
            gaussian_floor_dbm,
        }
    }

    /// The PDF stored for exactly `bin`, with no fallback.
    #[inline]
    pub fn get(&self, bin: RssiBin) -> Option<&DistancePdf> {
        let idx = usize::try_from(bin.0 - self.min_bin).ok()?;
        self.slots.get(idx)?.as_ref()
    }

    /// The calibrated bin an observed RSSI resolves to: the exact bin when
    /// calibrated, otherwise the nearest calibrated bin within ±3 dB of the
    /// continuous RSSI value (ties towards the stronger bin). Deterministic
    /// and symmetric — sparse bins happen at the extremes of the sweep.
    pub fn resolve(&self, rssi: Dbm) -> Option<RssiBin> {
        nearest_present_bin(rssi, |k| self.get(RssiBin(k)).is_some()).map(RssiBin)
    }

    /// Looks up the PDF for an observed RSSI, falling back to the nearest
    /// bin within ±3 dB (see [`resolve`](PdfTable::resolve)).
    pub fn lookup(&self, rssi: Dbm) -> Option<&DistancePdf> {
        self.resolve(rssi).and_then(|b| self.get(b))
    }

    /// Number of calibrated bins.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Iterates over `(bin, pdf)` in increasing RSSI order.
    pub fn entries(&self) -> impl Iterator<Item = (RssiBin, &DistancePdf)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|p| (RssiBin(self.min_bin + i as i16), p)))
    }

    /// The RSSI below which bins are empirical rather than Gaussian.
    pub fn gaussian_floor(&self) -> Dbm {
        Dbm::new(self.gaussian_floor_dbm)
    }
}

/// Structure-of-arrays linear-interpolation table for the lane-packed f64
/// grid kernel, padded to a power-of-two length.
///
/// `val[k] = values[k]` and `del[k] = fl(values[k+1] − values[k])` — the
/// very difference the scalar interpolation evaluates inline — with
/// `del[last] = 0` as a branch-free clamp sentinel. Both arrays are padded
/// (with the last value / zero) to the next power of two: the kernels
/// index with `bits & (len − 1)`, which the optimizer can prove in-bounds
/// without per-lane checks, and the index itself never exceeds `last`
/// because the lattice coordinate is clamped in the float domain first.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneTable {
    val: Vec<f64>,
    del: Vec<f64>,
    lastf: f64,
}

impl LaneTable {
    /// Builds the padded table from raw lattice samples (non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "lane table needs at least one sample");
        let n = values.len();
        let pad = n.next_power_of_two();
        let mut val = values.to_vec();
        val.resize(pad, values[n - 1]);
        let mut del: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
        del.resize(pad, 0.0);
        LaneTable {
            val,
            del,
            lastf: (n - 1) as f64,
        }
    }

    /// Sample values, padded with the final sample.
    #[inline]
    pub fn val(&self) -> &[f64] {
        &self.val
    }

    /// Forward differences, with a zero sentinel at the last real index
    /// and across the padding.
    #[inline]
    pub fn del(&self) -> &[f64] {
        &self.del
    }

    /// The last real sample index as a float — the clamp limit for the
    /// lattice coordinate.
    #[inline]
    pub fn lastf(&self) -> f64 {
        self.lastf
    }

    /// The last real sample index.
    #[inline]
    pub fn last_index(&self) -> usize {
        self.lastf as usize
    }
}

/// f32 counterpart of [`LaneTable`]: samples and deltas narrowed from the
/// f64 lattice (`del[k] = fl32(fl64(values[k+1] − values[k]))`).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneTable32 {
    val: Vec<f32>,
    del: Vec<f32>,
    lastf: f32,
}

impl LaneTable32 {
    /// Builds the padded f32 table from f64 lattice samples (non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "lane table needs at least one sample");
        let n = values.len();
        let pad = n.next_power_of_two();
        let mut val: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        val.resize(pad, values[n - 1] as f32);
        let mut del: Vec<f32> = values.windows(2).map(|w| (w[1] - w[0]) as f32).collect();
        del.resize(pad, 0.0);
        LaneTable32 {
            val,
            del,
            lastf: (n - 1) as f32,
        }
    }

    /// Sample values, padded with the final sample.
    #[inline]
    pub fn val(&self) -> &[f32] {
        &self.val
    }

    /// Forward differences with zero sentinel/padding.
    #[inline]
    pub fn del(&self) -> &[f32] {
        &self.del
    }

    /// The last real sample index as a float.
    #[inline]
    pub fn lastf(&self) -> f32 {
        self.lastf
    }
}

/// A 1-D radial density profile: `f(d)` pre-sampled on a uniform distance
/// lattice, evaluated by linear interpolation.
///
/// This is the engine behind the radial fast path of the Bayesian grid:
/// a beacon constraint depends on the cell only through its distance to
/// the beacon, so the per-cell transcendental work (`exp`, histogram
/// indexing) collapses into one profile lookup. Distances beyond the last
/// sample clamp to the final value, so a profile built out to the area
/// diagonal with a floor baked in behaves like `pdf.density(d) + floor`
/// everywhere the grid can ask.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadialProfile {
    step: f64,
    inv_step: f64,
    /// `values[k]` = profile value at distance `k * step`.
    values: Vec<f64>,
    /// Lazily-built SoA interpolation table for the lane-packed f64 grid
    /// kernel (see [`LaneTable`]).
    #[serde(skip)]
    lane64: OnceLock<LaneTable>,
    /// f32 lane table for the half-precision kernel variant.
    #[serde(skip)]
    lane32: OnceLock<LaneTable32>,
}

// Derived caches carry no state of their own: profiles are equal iff their
// lattices are.
impl PartialEq for RadialProfile {
    fn eq(&self, other: &Self) -> bool {
        self.step == other.step && self.values == other.values
    }
}

impl RadialProfile {
    /// Samples `f` at `0, step, 2·step, …` out to at least `max_d`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite `step` or a negative `max_d`.
    pub fn from_fn(step: f64, max_d: f64, f: impl Fn(f64) -> f64) -> Self {
        assert!(
            step > 0.0 && step.is_finite(),
            "profile step must be positive"
        );
        assert!(
            max_d >= 0.0 && max_d.is_finite(),
            "profile extent must be non-negative"
        );
        let n = (max_d / step).ceil() as usize + 1;
        let values = (0..=n).map(|k| f(k as f64 * step)).collect();
        RadialProfile {
            step,
            inv_step: 1.0 / step,
            values,
            lane64: OnceLock::new(),
            lane32: OnceLock::new(),
        }
    }

    /// The profile value at distance `d` (linear interpolation between
    /// lattice points; clamped to the end values outside `[0, max_distance]`).
    #[inline]
    pub fn density(&self, d: f64) -> f64 {
        if d <= 0.0 {
            return self.values[0];
        }
        self.density_scaled(d * self.inv_step)
    }

    /// The profile value at the pre-scaled lattice coordinate `t = d / step`
    /// (i.e. `density(t * step)`, without re-dividing by the step).
    ///
    /// The grid fast path computes `t` for a whole row in a vectorizable
    /// pass (`t = ‖cell − center‖ · inv_step`) and then resolves densities
    /// through this entry point; for any `t ≥ 0` the result is identical to
    /// [`density`](Self::density) of the corresponding distance.
    #[inline]
    pub fn density_scaled(&self, t: f64) -> f64 {
        let i = t as usize;
        if i + 1 >= self.values.len() {
            return self.values[self.values.len() - 1];
        }
        let a = self.values[i];
        a + (self.values[i + 1] - a) * (t - i as f64)
    }

    /// `1 / step` — the factor converting a distance to a lattice
    /// coordinate for [`density_scaled`](Self::density_scaled).
    #[inline]
    pub fn inv_step(&self) -> f64 {
        self.inv_step
    }

    /// Adds a constant floor to every sample (used to bake the Bayesian
    /// constraint floor into the cached profile).
    pub fn offset(mut self, floor: f64) -> Self {
        for v in &mut self.values {
            *v += floor;
        }
        // The samples changed; drop any derived interpolation tables.
        self.lane64 = OnceLock::new();
        self.lane32 = OnceLock::new();
        self
    }

    /// The SoA interpolation table for the lane-packed f64 kernel, built on
    /// first use and cached.
    pub fn lane_table(&self) -> &LaneTable {
        self.lane64
            .get_or_init(|| LaneTable::from_values(&self.values))
    }

    /// The f32 lane table for the half-precision kernel variant, narrowed
    /// from the f64 lattice on first use and cached.
    pub fn lane_table_f32(&self) -> &LaneTable32 {
        self.lane32
            .get_or_init(|| LaneTable32::from_values(&self.values))
    }

    /// `1 / step` narrowed to f32 for the half-precision kernel.
    #[inline]
    pub fn inv_step_f32(&self) -> f32 {
        self.inv_step as f32
    }

    /// Distance between lattice points, metres.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Distance of the last lattice point, metres.
    pub fn max_distance(&self) -> f64 {
        (self.values.len() - 1) as f64 * self.step
    }

    /// Number of lattice points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the profile has no lattice points (never true for profiles
    /// built by this module).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl DistancePdf {
    /// Pre-samples this PDF's density into a [`RadialProfile`] on a `step`
    /// lattice reaching at least `max_d`.
    pub fn radial_profile(&self, step: f64, max_d: f64) -> RadialProfile {
        RadialProfile::from_fn(step, max_d, |d| self.density(d))
    }
}

/// One floored [`RadialProfile`] per calibrated RSSI bin, sharing the
/// [`PdfTable`]'s dense layout and its exact lookup-fallback rule.
///
/// Built once per experiment from the calibrated table and shared by
/// reference across every robot and transmit round — profile construction
/// is O(bins × samples) but amortizes to nothing over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadialConstraintTable {
    min_bin: i16,
    profiles: Vec<Option<RadialProfile>>,
}

impl RadialConstraintTable {
    /// Samples every bin of `table` on a `step` lattice out to `max_d`
    /// (typically the deployment area's diagonal), adding `floor` to every
    /// sample.
    pub fn new(table: &PdfTable, step: f64, max_d: f64, floor: f64) -> Self {
        let min_bin = table.entries().next().map_or(0, |(b, _)| b.0);
        let max_bin = table.entries().last().map_or(0, |(b, _)| b.0);
        let mut profiles = vec![None; (max_bin - min_bin) as usize + 1];
        for (bin, pdf) in table.entries() {
            profiles[(bin.0 - min_bin) as usize] =
                Some(pdf.radial_profile(step, max_d).offset(floor));
        }
        RadialConstraintTable { min_bin, profiles }
    }

    /// The profile stored for exactly `bin`, with no fallback.
    #[inline]
    pub fn get(&self, bin: RssiBin) -> Option<&RadialProfile> {
        let idx = usize::try_from(bin.0 - self.min_bin).ok()?;
        self.profiles.get(idx)?.as_ref()
    }

    /// Looks up the profile for an observed RSSI with the same fallback
    /// rule as [`PdfTable::resolve`] — the two tables always agree on which
    /// bin serves a given RSSI.
    pub fn lookup(&self, rssi: Dbm) -> Option<&RadialProfile> {
        nearest_present_bin(rssi, |k| self.get(RssiBin(k)).is_some())
            .and_then(|k| self.get(RssiBin(k)))
    }

    /// Resolves an observed RSSI to the bin that would serve it (same
    /// fallback rule as [`lookup`](Self::lookup)), without borrowing the
    /// profile — the fused grid path records resolved bins at observe time
    /// and fetches the profiles in one batch at window end.
    pub fn resolve(&self, rssi: Dbm) -> Option<RssiBin> {
        nearest_present_bin(rssi, |k| self.get(RssiBin(k)).is_some()).map(RssiBin)
    }

    /// Batch lookup for a fused multi-beacon window: maps each resolved bin
    /// to its profile, preserving order and skipping bins that (can only
    /// under table rebuilds) no longer resolve.
    pub fn profiles_for<'a>(
        &'a self,
        bins: impl IntoIterator<Item = RssiBin> + 'a,
    ) -> impl Iterator<Item = &'a RadialProfile> + 'a {
        bins.into_iter().filter_map(|b| self.get(b))
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.profiles.iter().flatten().count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.iter().all(Option::is_none)
    }
}

/// Runs the calibration campaign against `channel`.
///
/// Sweeps ground-truth distances, samples the channel at each, buckets the
/// samples by integer-dBm RSSI and fits a distance PDF per bin.
///
/// # Panics
///
/// Panics if the configuration is degenerate (non-positive step, zero
/// samples, inverted range).
pub fn calibrate<R: Rng + ?Sized>(
    channel: &RfChannel,
    config: &CalibrationConfig,
    rng: &mut R,
) -> PdfTable {
    assert!(config.step_m > 0.0, "calibration step must be positive");
    assert!(
        config.samples_per_distance > 0,
        "need at least one sample per distance"
    );
    assert!(
        config.histogram_bin_m > 0.0,
        "histogram bin must be positive"
    );
    let d_max = config.d_max.unwrap_or_else(|| channel.max_range());
    assert!(
        config.d_min > 0.0 && config.d_min < d_max,
        "invalid calibration range"
    );

    // Collect (distance) samples per RSSI bin.
    let mut by_bin: BTreeMap<i16, Vec<f64>> = BTreeMap::new();
    let mut d = config.d_min;
    while d <= d_max {
        for _ in 0..config.samples_per_distance {
            let rssi = channel.sample_rssi(d, rng);
            // Samples below the receiver sensitivity are never actually
            // received, so no PDF is learned for them.
            if channel.is_detectable(rssi) {
                by_bin.entry(rssi.bin().0).or_default().push(d);
            }
        }
        d += config.step_m;
    }

    let gaussian_floor = channel.gaussian_rssi_floor().value();
    let mut bins = BTreeMap::new();
    for (bin, samples) in by_bin {
        if samples.len() < config.min_samples_per_bin {
            continue;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let sigma = var.sqrt().max(0.25);
        let pdf = if f64::from(bin) >= gaussian_floor {
            DistancePdf::Gaussian { mean, sigma }
        } else {
            // Histogram over the sample support.
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let width = config.histogram_bin_m;
            let cells = (((hi - lo) / width).ceil() as usize).max(1);
            let mut counts = vec![0usize; cells];
            for &s in &samples {
                let idx = (((s - lo) / width) as usize).min(cells - 1);
                counts[idx] += 1;
            }
            let densities: Vec<f64> = counts.iter().map(|&c| c as f64 / (n * width)).collect();
            DistancePdf::Empirical {
                origin: lo,
                bin_width: width,
                densities,
                mean,
                sigma,
            }
        };
        bins.insert(bin, pdf);
    }
    PdfTable::from_sorted(bins, gaussian_floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::rng::SeedSplitter;

    fn table() -> (RfChannel, PdfTable) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(100).stream("calibration", 0);
        let t = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        (ch, t)
    }

    #[test]
    fn near_field_bins_are_gaussian_far_field_empirical() {
        let (ch, t) = table();
        let strong = t.lookup(ch.mean_rssi(10.0)).expect("strong bin");
        assert!(strong.is_gaussian(), "10 m bin should be Gaussian");
        let weak = t.lookup(ch.mean_rssi(80.0)).expect("weak bin");
        assert!(!weak.is_gaussian(), "80 m bin should be empirical");
    }

    #[test]
    fn pdf_means_track_true_distance() {
        let (ch, t) = table();
        for d in [5.0, 10.0, 20.0, 35.0] {
            let pdf = t.lookup(ch.mean_rssi(d)).expect("bin");
            assert!(
                (pdf.mean() - d).abs() < 0.35 * d + 2.0,
                "bin for {d} m has mean {}",
                pdf.mean()
            );
        }
    }

    #[test]
    fn sigma_grows_with_distance() {
        let (ch, t) = table();
        let near = t.lookup(ch.mean_rssi(5.0)).unwrap().sigma();
        let far = t.lookup(ch.mean_rssi(35.0)).unwrap().sigma();
        assert!(far > near, "near sigma {near}, far sigma {far}");
    }

    #[test]
    fn gaussian_density_integrates_to_one() {
        let pdf = DistancePdf::Gaussian {
            mean: 10.0,
            sigma: 2.0,
        };
        let mut integral = 0.0;
        let step = 0.01;
        let mut d = 0.0;
        while d < 30.0 {
            integral += pdf.density(d) * step;
            d += step;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn empirical_density_integrates_to_one() {
        let (ch, t) = table();
        let pdf = t.lookup(ch.mean_rssi(90.0)).expect("far bin");
        let mut integral = 0.0;
        let step = 0.05;
        let mut d = 0.0;
        while d < pdf.support_max() + 5.0 {
            integral += pdf.density(d) * step;
            d += step;
        }
        assert!((integral - 1.0).abs() < 2e-2, "integral {integral}");
    }

    #[test]
    fn lookup_falls_back_to_nearby_bin() {
        let t = PdfTable::from_entries(
            [(
                RssiBin(-50),
                DistancePdf::Gaussian {
                    mean: 5.0,
                    sigma: 1.0,
                },
            )],
            -80.0,
        );
        assert!(t.lookup(Dbm::new(-50.0)).is_some());
        assert!(t.lookup(Dbm::new(-52.4)).is_some(), "±3 dB fallback");
        assert!(t.lookup(Dbm::new(-60.0)).is_none(), "too far to fall back");
    }

    #[test]
    fn lookup_fallback_is_symmetric_and_nearest() {
        // Two calibrated bins straddling a gap: the fallback must pick the
        // bin nearest the *continuous* RSSI, not favour the weaker side.
        let t = PdfTable::from_entries(
            [
                (
                    RssiBin(-52),
                    DistancePdf::Gaussian {
                        mean: 9.0,
                        sigma: 1.0,
                    },
                ),
                (
                    RssiBin(-48),
                    DistancePdf::Gaussian {
                        mean: 5.0,
                        sigma: 1.0,
                    },
                ),
            ],
            -80.0,
        );
        // −49.6 is 1.6 dB from −48 and 2.4 dB from −52.
        assert_eq!(t.resolve(Dbm::new(-49.6)), Some(RssiBin(-48)));
        // The mirrored observation resolves to the mirrored bin.
        assert_eq!(t.resolve(Dbm::new(-50.4)), Some(RssiBin(-52)));
        // A dead-centre tie goes to the stronger bin, deterministically.
        assert_eq!(t.resolve(Dbm::new(-50.0)), Some(RssiBin(-48)));
    }

    #[test]
    fn get_is_exact_and_resolve_matches_lookup() {
        let (ch, t) = table();
        for tenth in -950..-400 {
            let rssi = Dbm::new(f64::from(tenth) / 10.0);
            let via_lookup = t.lookup(rssi).map(|p| p as *const _);
            let via_resolve = t
                .resolve(rssi)
                .and_then(|b| t.get(b))
                .map(|p| p as *const _);
            assert_eq!(via_lookup, via_resolve, "at {rssi:?}");
        }
        let _ = ch;
    }

    #[test]
    fn radial_profile_matches_pdf_on_lattice_and_interpolates() {
        let pdf = DistancePdf::Gaussian {
            mean: 10.0,
            sigma: 2.0,
        };
        let profile = pdf.radial_profile(0.05, 40.0);
        assert!(profile.max_distance() >= 40.0);
        for k in 0..profile.len() {
            let d = k as f64 * profile.step();
            // `d * (1/step)` does not round back to exactly `k`, so allow
            // the one-ulp interpolation residue.
            let err = (profile.density(d) - pdf.density(d)).abs();
            assert!(err < 1e-12, "lattice point {d}: err {err}");
        }
        // Off-lattice points are within the linear-interpolation error bound.
        let mut d = 0.012;
        while d < 40.0 {
            let err = (profile.density(d) - pdf.density(d)).abs();
            assert!(err < 1e-4, "interp error {err} at {d}");
            d += 0.0173;
        }
        // Beyond the lattice the profile clamps to the tail value.
        assert_eq!(
            profile.density(1e6),
            profile.density(profile.max_distance())
        );
    }

    #[test]
    fn radial_profile_offset_bakes_in_floor() {
        let pdf = DistancePdf::Gaussian {
            mean: 10.0,
            sigma: 2.0,
        };
        let profile = pdf.radial_profile(0.1, 30.0).offset(1e-6);
        assert!((profile.density(10.0) - (pdf.density(10.0) + 1e-6)).abs() < 1e-15);
        assert!((profile.density(29.9) - (pdf.density(29.9) + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn radial_table_agrees_with_pdf_table_resolution() {
        let (_, t) = table();
        let step = 0.01;
        let radial = RadialConstraintTable::new(&t, step, 300.0, 1e-6);
        assert_eq!(radial.len(), t.len());
        for tenth in -950..-400 {
            let rssi = Dbm::new(f64::from(tenth) / 10.0);
            match (t.resolve(rssi), radial.lookup(rssi)) {
                (Some(bin), Some(profile)) => {
                    // Probe on the sampling lattice so only the identity of
                    // the PDF (not interpolation error) is under test.
                    let pdf = t.get(bin).expect("resolved bin present");
                    let d = (pdf.mean() / step).round() * step;
                    let err = (profile.density(d) - (pdf.density(d) + 1e-6)).abs();
                    assert!(err < 1e-9, "profile diverges from pdf at {rssi:?}");
                }
                (None, None) => {}
                (a, b) => panic!("tables disagree at {rssi:?}: {a:?} vs {}", b.is_some()),
            }
        }
    }

    #[test]
    fn support_max_bounds_density() {
        let (ch, t) = table();
        for (_, pdf) in t.entries() {
            let beyond = pdf.support_max() + 1.0;
            assert!(pdf.density(beyond) < 1e-4, "density beyond support");
        }
        let _ = ch;
    }

    #[test]
    fn deterministic_given_seed() {
        let ch = RfChannel::default();
        let cfg = CalibrationConfig {
            samples_per_distance: 50,
            ..Default::default()
        };
        let a = calibrate(&ch, &cfg, &mut SeedSplitter::new(5).stream("c", 0));
        let b = calibrate(&ch, &cfg, &mut SeedSplitter::new(5).stream("c", 0));
        assert_eq!(a, b);
    }

    #[test]
    fn table_covers_a_wide_rssi_span() {
        let (_, t) = table();
        assert!(t.len() > 30, "expected a rich table, got {} bins", t.len());
        let bins: Vec<i16> = t.entries().map(|(b, _)| b.0).collect();
        assert!(*bins.first().unwrap() < -85);
        assert!(*bins.last().unwrap() > -45);
    }
}
