//! # cocoa-net — the wireless substrate of the CoCoA reproduction
//!
//! Everything between the robots and the air lives here:
//!
//! - [`geometry`]: points, vectors and the rectangular deployment [`geometry::Area`];
//! - [`rssi`]: signal strengths ([`rssi::Dbm`]) and the integer-dBm bins
//!   keying the calibration table;
//! - [`channel`]: the log-distance + shadowing + multipath channel whose
//!   statistics match the paper's outdoor measurements (Gaussian up to
//!   40 m / −80 dBm, skewed beyond, >150 m detection range);
//! - [`packet`]: the on-air vocabulary (beacons, SYNC, ODMRP control,
//!   data) with real binary encodings and the paper's 20 + 20 byte
//!   header accounting;
//! - [`radio`]: the per-robot power-state machine (idle/sleep/off) with
//!   exact energy accrual;
//! - [`mac`]: the shared broadcast medium with overlap collisions, 10 dB
//!   capture and half-duplex semantics;
//! - [`energy`]: Feeney & Nilsson's 802.11 energy model (idle ≈ 900 mW,
//!   sleep ≈ 50 mW) with per-category ledgers;
//! - [`calibration`]: the offline campaign that builds the RSSI → distance
//!   PDF Table of paper Section 2.2 / Fig. 1.
//!
//! # Examples
//!
//! ```
//! use cocoa_net::prelude::*;
//! use cocoa_sim::rng::SeedSplitter;
//!
//! // Sample the channel and look the observation up in the PDF table.
//! let channel = RfChannel::default();
//! let mut rng = SeedSplitter::new(1).stream("example", 0);
//! let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
//! let observed = channel.sample_rssi(15.0, &mut rng);
//! if let Some(pdf) = table.lookup(observed) {
//!     assert!(pdf.density(15.0) > 0.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod channel;
pub mod energy;
pub mod geometry;
pub mod mac;
pub mod packet;
pub mod radio;
pub mod rssi;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::calibration::{calibrate, CalibrationConfig, DistancePdf, PdfTable};
    pub use crate::channel::{ChannelParams, PathLossModel, RfChannel};
    pub use crate::energy::{EnergyLedger, EnergyParams, PowerState};
    pub use crate::geometry::{Area, Point, Vec2};
    pub use crate::mac::{Medium, ReceptionOutcome, TxId};
    pub use crate::packet::{GroupId, NodeId, Packet, Payload};
    pub use crate::radio::Radio;
    pub use crate::rssi::{Dbm, RssiBin};
}
