//! Property-based tests for the wireless substrate.

use bytes::Bytes;
use cocoa_net::prelude::*;
use cocoa_sim::rng::SeedSplitter;
use cocoa_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-500.0..500.0f64, -500.0..500.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        arb_point().prop_map(|position| Payload::Beacon { position }),
        (0u64..1u64 << 40, 0u64..1u64 << 30, 0u64..1u64 << 40).prop_map(
            |(period_us, window_us, next_period_in_us)| Payload::Sync {
                period_us,
                window_us,
                next_period_in_us,
            }
        ),
        (
            0u16..100,
            0u8..32,
            0u32..1000,
            arb_point(),
            -3.0..3.0f64,
            -3.0..3.0f64,
            0.0..300.0f64
        )
            .prop_map(
                |(g, hops, prev, position, vx, vy, d_rest)| Payload::JoinQuery {
                    group: GroupId(g),
                    hop_count: hops,
                    prev_hop: NodeId(prev),
                    position,
                    velocity: (vx, vy),
                    d_rest,
                }
            ),
        (0u16..100, 0u32..1000, 0u32..1000).prop_map(|(g, s, n)| Payload::JoinReply {
            group: GroupId(g),
            source: NodeId(s),
            next_hop: NodeId(n),
        }),
        (0u16..100, proptest::collection::vec(any::<u8>(), 0..200)).prop_map(|(g, body)| {
            Payload::Data {
                group: GroupId(g),
                body: Bytes::from(body),
            }
        }),
    ]
}

proptest! {
    /// Every packet round-trips through its wire encoding.
    #[test]
    fn packet_roundtrip(src in 0u32..10_000, seq in any::<u32>(), payload in arb_payload()) {
        let p = Packet::new(NodeId(src), seq, payload);
        let decoded = Packet::decode(p.encode()).expect("well-formed packets decode");
        prop_assert_eq!(decoded, p);
    }

    /// Wire size is headers + encoding, and encoding is deterministic.
    #[test]
    fn wire_size_consistent(seq in any::<u32>(), payload in arb_payload()) {
        let p = Packet::new(NodeId(1), seq, payload);
        prop_assert_eq!(p.wire_size(), 40 + p.encode().len());
        prop_assert_eq!(p.encode(), p.encode());
    }

    /// Truncating an encoded packet never panics, only errors.
    #[test]
    fn truncated_decode_errors(payload in arb_payload(), cut_frac in 0.0..1.0f64) {
        let p = Packet::new(NodeId(1), 1, payload);
        let enc = p.encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(Packet::decode(enc.slice(0..cut)).is_err());
        }
    }

    /// Fuzz: arbitrary byte soup never panics the decoder — it either
    /// yields a packet or an error.
    #[test]
    fn random_bytes_never_panic_decode(raw in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Packet::decode(Bytes::from(raw));
    }

    /// Fuzz: bit-flipping a well-formed frame never panics the decoder.
    /// A flip may still yield a (wrong) packet — that is the runner's
    /// problem, not the decoder's — but it must never crash.
    #[test]
    fn bit_flipped_frames_never_panic(
        payload in arb_payload(),
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..16),
    ) {
        let p = Packet::new(NodeId(1), 7, payload);
        let mut raw = p.encode().to_vec();
        for (pos, bit) in flips {
            let i = pos % raw.len();
            raw[i] ^= 1 << bit;
        }
        let _ = Packet::decode(Bytes::from(raw));
    }

    /// Fuzz: appending trailing garbage past a well-formed frame errors
    /// (the decoder rejects over-length input) and never panics.
    #[test]
    fn over_length_frames_error(
        payload in arb_payload(),
        extra in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let p = Packet::new(NodeId(1), 7, payload);
        let mut raw = p.encode().to_vec();
        raw.extend_from_slice(&extra);
        prop_assert!(Packet::decode(Bytes::from(raw)).is_err());
    }

    /// dBm <-> milliwatt conversion round-trips.
    #[test]
    fn dbm_roundtrip(v in -120.0..30.0f64) {
        let d = Dbm::new(v);
        let back = Dbm::from_milliwatts(d.to_milliwatts());
        prop_assert!((back.value() - v).abs() < 1e-9);
    }

    /// Mean RSSI decreases monotonically with distance, and the inverse
    /// mapping round-trips.
    #[test]
    fn channel_monotone_and_invertible(d1 in 1.0..150.0f64, d2 in 1.0..150.0f64) {
        let ch = RfChannel::default();
        if d1 < d2 {
            prop_assert!(ch.mean_rssi(d1) > ch.mean_rssi(d2));
        }
        let back = ch.distance_for_mean_rssi(ch.mean_rssi(d1));
        prop_assert!((back - d1).abs() / d1 < 1e-9);
    }

    /// Geometry: distance satisfies the triangle inequality and symmetry.
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
    }

    /// Area clamp always lands inside, and is the identity inside.
    #[test]
    fn clamp_contains(p in arb_point(), side in 1.0..400.0f64) {
        let area = Area::square(side);
        let clamped = area.clamp(p);
        prop_assert!(area.contains(clamped));
        if area.contains(p) {
            prop_assert_eq!(clamped, p);
        }
    }

    /// Energy ledger: accrue + charge never decreases any bucket, and
    /// total equals the sum of buckets.
    #[test]
    fn ledger_monotone(
        idle_s in 0u64..1000,
        sleep_s in 0u64..1000,
        txs in proptest::collection::vec(0usize..2000, 0..20),
    ) {
        let p = EnergyParams::default();
        let mut l = EnergyLedger::new();
        l.accrue(&p, PowerState::Idle, SimDuration::from_secs(idle_s));
        l.accrue(&p, PowerState::Sleep, SimDuration::from_secs(sleep_s));
        for bytes in txs {
            l.charge_tx(&p, bytes);
            l.charge_rx(&p, bytes);
        }
        let sum = l.tx_uj + l.rx_uj + l.idle_uj + l.sleep_uj + l.wake_uj;
        prop_assert!((l.total_uj() - sum).abs() < 1e-6);
        prop_assert!(l.tx_uj >= 0.0 && l.rx_uj >= 0.0);
    }

    /// A lone recorded frame on the medium is always delivered.
    #[test]
    fn lone_frame_delivers(
        start_us in 0u64..1_000_000,
        rssi in -97.0..-30.0f64,
    ) {
        let mut m = Medium::new();
        let pkt = Packet::new(NodeId(1), 0, Payload::Beacon { position: Point::ORIGIN });
        let tx = m.begin_tx(
            NodeId(1),
            Point::ORIGIN,
            pkt,
            SimTime::from_micros(start_us),
            SimDuration::from_micros(260),
        );
        m.record_rssi(tx, NodeId(2), Dbm::new(rssi));
        let delivered = matches!(
            m.outcome(tx, NodeId(2)),
            ReceptionOutcome::Delivered { .. }
        );
        prop_assert!(delivered);
    }

    /// Calibration PDFs are non-negative everywhere and have positive
    /// density near their mean.
    #[test]
    fn pdf_nonnegative(seed in 0u64..50, probe in 0.5..160.0f64) {
        let ch = RfChannel::default();
        let cfg = CalibrationConfig { samples_per_distance: 30, ..Default::default() };
        let table = calibrate(&ch, &cfg, &mut SeedSplitter::new(seed).stream("cal", 0));
        for (_, pdf) in table.entries() {
            prop_assert!(pdf.density(probe) >= 0.0);
            prop_assert!(pdf.density(pdf.mean()) > 0.0);
            prop_assert!(pdf.sigma() > 0.0);
        }
    }
}
