//! The ODMRP node state machine, with MRMM's mobility-aware extensions.
//!
//! ODMRP (Lee, Gerla & Chiang, WCNC 1999) builds a multicast **mesh**:
//!
//! 1. the source periodically floods a **JOIN QUERY**; every node records
//!    the reverse path (who it first heard the query from);
//! 2. group members answer with a **JOIN REPLY** naming their reverse-path
//!    predecessor; a node named in a reply sets its *forwarding-group*
//!    flag and propagates a reply towards the source;
//! 3. **data** is broadcast and rebroadcast by forwarding-group members
//!    until every member has a copy.
//!
//! MRMM (Das et al., ICRA 2005) adds mobility knowledge: JOIN QUERY
//! packets advertise `(position, velocity, d_rest)`, receivers predict
//! residual link lifetimes, reverse paths prefer long-lived links, and
//! short-lived redundant nodes suppress their rebroadcasts — yielding a
//! sparser, longer-lived mesh with fewer control and data transmissions.
//!
//! The node is written sans-IO: it consumes packets and emits
//! [`ProtocolAction`]s; the simulation runner owns all timing and the
//! actual radio.

use std::collections::HashMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use cocoa_net::packet::{GroupId, NodeId, Packet, Payload};
use cocoa_sim::time::{SimDuration, SimTime};

use crate::mesh::{DedupCache, MeshStats};
use crate::mrmm::{link_lifetime, MobilityInfo, PathScore, PruneConfig};

/// Whether the node runs plain ODMRP or the MRMM extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeshMode {
    /// Plain ODMRP: hop-count routes, flood rebroadcasts.
    Odmrp,
    /// MRMM: lifetime-scored routes, redundancy-aware pruning.
    Mrmm,
}

/// Protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdmrpConfig {
    /// Protocol variant.
    pub mode: MeshMode,
    /// Queries stop propagating after this many hops.
    pub max_hops: u8,
    /// How long a forwarding-group flag stays set after being refreshed.
    pub fg_timeout: SimDuration,
    /// Delay before a member answers a query (lets multiple copies arrive
    /// so MRMM can pick the best reverse path).
    pub reply_delay: SimDuration,
    /// Suggested jitter bound for rebroadcasts (avoids synchronized
    /// collisions; the runner draws the actual value).
    pub rebroadcast_jitter: SimDuration,
    /// Nominal radio range used for link-lifetime prediction, metres.
    pub range_m: f64,
    /// Prediction horizon, seconds (lifetimes are clamped to it).
    pub lifetime_horizon_s: f64,
    /// MRMM pruning policy.
    pub prune: PruneConfig,
    /// Duplicate-cache retention.
    pub dedup_retention: SimDuration,
}

impl Default for OdmrpConfig {
    fn default() -> Self {
        OdmrpConfig {
            mode: MeshMode::Mrmm,
            max_hops: 8,
            fg_timeout: SimDuration::from_secs(360),
            // Wide enough that a 50-node query flood does not collapse
            // into one collision storm on the shared medium.
            reply_delay: SimDuration::from_millis(200),
            rebroadcast_jitter: SimDuration::from_millis(100),
            range_m: 150.0,
            lifetime_horizon_s: 120.0,
            prune: PruneConfig::default(),
            dedup_retention: SimDuration::from_secs(120),
        }
    }
}

/// What the runner should do on the node's behalf.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolAction {
    /// Broadcast `packet`, after a runner-chosen jitter of at most
    /// `jitter_bound`.
    Broadcast {
        /// The packet to put on the air.
        packet: Packet,
        /// Upper bound on the random delay before transmission.
        jitter_bound: SimDuration,
    },
    /// Deliver application data to the local member.
    Deliver {
        /// The mesh source the data originated from.
        source: NodeId,
        /// The application payload.
        body: Bytes,
    },
    /// Call [`OdmrpNode::make_reply`] for `source` after `after`.
    ScheduleReply {
        /// The query source to reply to.
        source: NodeId,
        /// Aggregation delay.
        after: SimDuration,
    },
    /// Call [`OdmrpNode::make_rebroadcast`] for `(source, seq)` after
    /// `after` (gives MRMM time to count redundant copies).
    ScheduleRebroadcast {
        /// Query source.
        source: NodeId,
        /// Query round.
        seq: u32,
        /// Deferral before the rebroadcast decision.
        after: SimDuration,
    },
}

#[derive(Debug, Clone)]
struct RouteEntry {
    prev_hop: NodeId,
    hops: u8,
    score: PathScore,
    seq: u32,
}

#[derive(Debug, Clone, Default)]
struct QueryRound {
    copies: u32,
    reply_scheduled: bool,
    rebroadcast_scheduled: bool,
}

/// One node's ODMRP/MRMM state.
pub struct OdmrpNode {
    id: NodeId,
    group: GroupId,
    member: bool,
    config: OdmrpConfig,
    fg_until: Option<SimTime>,
    routes: HashMap<NodeId, RouteEntry>,
    rounds: HashMap<(NodeId, u32), QueryRound>,
    seen_queries: DedupCache<(NodeId, u32)>,
    seen_data: DedupCache<(NodeId, u32)>,
    last_reply_propagated: HashMap<NodeId, SimTime>,
    next_seq: u32,
    stats: MeshStats,
}

impl std::fmt::Debug for OdmrpNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OdmrpNode")
            .field("id", &self.id)
            .field("member", &self.member)
            .field("fg_until", &self.fg_until)
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl OdmrpNode {
    /// Creates a node. `member` nodes deliver data and answer queries; in
    /// CoCoA every robot is a member of the SYNC group.
    pub fn new(id: NodeId, group: GroupId, member: bool, config: OdmrpConfig) -> Self {
        OdmrpNode {
            id,
            group,
            member,
            config,
            fg_until: None,
            routes: HashMap::new(),
            rounds: HashMap::new(),
            seen_queries: DedupCache::new(config.dedup_retention),
            seen_data: DedupCache::new(config.dedup_retention),
            last_reply_propagated: HashMap::new(),
            next_seq: 0,
            stats: MeshStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node currently holds the forwarding-group flag.
    pub fn is_forwarding(&self, now: SimTime) -> bool {
        self.fg_until.is_some_and(|until| now <= until)
    }

    /// Protocol counters.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// Records that a delivered data body failed to decode at the
    /// application layer (garbled in flight). The mesh did its job — the
    /// payload was corrupt — but reliability accounting wants the split.
    pub fn note_undecodable_delivery(&mut self) {
        self.stats.data_undecodable += 1;
    }

    /// Originates a JOIN QUERY round (call on the mesh source; CoCoA's
    /// Sync robot does this every beacon period).
    pub fn originate_query(&mut self, now: SimTime, my: &MobilityInfo) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen_queries.insert((self.id, seq), now);
        self.stats.queries_originated += 1;
        Packet::new(
            self.id,
            seq,
            Payload::JoinQuery {
                group: self.group,
                hop_count: 0,
                prev_hop: self.id,
                position: my.position,
                velocity: (my.velocity.x, my.velocity.y),
                d_rest: my.d_rest,
            },
        )
    }

    /// Originates a data packet down the mesh (source only).
    pub fn originate_data(&mut self, now: SimTime, body: Bytes) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen_data.insert((self.id, seq), now);
        self.stats.data_originated += 1;
        Packet::new(
            self.id,
            seq,
            Payload::Data {
                group: self.group,
                body,
            },
        )
    }

    /// The node's mutable state as checkpoint data. All map-backed state
    /// is emitted sorted by key, so identical nodes always produce
    /// identical checkpoints regardless of hash-map iteration order.
    pub fn checkpoint(&self) -> OdmrpCheckpoint {
        let mut routes: Vec<RouteCheckpoint> = self
            .routes
            .iter()
            .map(|(&source, e)| RouteCheckpoint {
                source,
                prev_hop: e.prev_hop,
                hops: e.hops,
                score: e.score,
                seq: e.seq,
            })
            .collect();
        routes.sort_by_key(|r| r.source.0);
        let mut rounds: Vec<RoundCheckpoint> = self
            .rounds
            .iter()
            .map(|(&(source, seq), r)| RoundCheckpoint {
                source,
                seq,
                copies: r.copies,
                reply_scheduled: r.reply_scheduled,
                rebroadcast_scheduled: r.rebroadcast_scheduled,
            })
            .collect();
        rounds.sort_by_key(|r| (r.source.0, r.seq));
        let mut last_reply_propagated: Vec<(NodeId, SimTime)> = self
            .last_reply_propagated
            .iter()
            .map(|(&n, &t)| (n, t))
            .collect();
        last_reply_propagated.sort_by_key(|&(n, _)| n.0);
        OdmrpCheckpoint {
            fg_until: self.fg_until,
            routes,
            rounds,
            seen_queries: self.seen_queries.entries().cloned().collect(),
            seen_data: self.seen_data.entries().cloned().collect(),
            last_reply_propagated,
            next_seq: self.next_seq,
            stats: self.stats,
        }
    }

    /// Restores checkpointed mutable state onto a freshly created node
    /// (identity and configuration come from [`OdmrpNode::new`]).
    pub fn restore(&mut self, c: OdmrpCheckpoint) {
        self.fg_until = c.fg_until;
        self.routes = c
            .routes
            .into_iter()
            .map(|r| {
                (
                    r.source,
                    RouteEntry {
                        prev_hop: r.prev_hop,
                        hops: r.hops,
                        score: r.score,
                        seq: r.seq,
                    },
                )
            })
            .collect();
        self.rounds = c
            .rounds
            .into_iter()
            .map(|r| {
                (
                    (r.source, r.seq),
                    QueryRound {
                        copies: r.copies,
                        reply_scheduled: r.reply_scheduled,
                        rebroadcast_scheduled: r.rebroadcast_scheduled,
                    },
                )
            })
            .collect();
        self.seen_queries = DedupCache::from_entries(self.config.dedup_retention, c.seen_queries);
        self.seen_data = DedupCache::from_entries(self.config.dedup_retention, c.seen_data);
        self.last_reply_propagated = c.last_reply_propagated.into_iter().collect();
        self.next_seq = c.next_seq;
        self.stats = c.stats;
    }

    /// Handles a received packet; returns the actions the runner must
    /// perform. `my` is this node's current mobility knowledge.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        packet: &Packet,
        my: &MobilityInfo,
    ) -> Vec<ProtocolAction> {
        match &packet.payload {
            Payload::JoinQuery {
                group,
                hop_count,
                prev_hop,
                position,
                velocity,
                d_rest,
            } => {
                if *group != self.group || packet.src == self.id {
                    return Vec::new();
                }
                let sender = MobilityInfo {
                    position: *position,
                    velocity: cocoa_net::geometry::Vec2::new(velocity.0, velocity.1),
                    d_rest: *d_rest,
                };
                self.on_join_query(
                    now, packet.src, packet.seq, *hop_count, *prev_hop, &sender, my,
                )
            }
            Payload::JoinReply {
                group,
                source,
                next_hop,
            } => {
                if *group != self.group {
                    return Vec::new();
                }
                self.on_join_reply(now, *source, *next_hop)
            }
            Payload::Data { group, body } => {
                if *group != self.group {
                    return Vec::new();
                }
                self.on_data(now, packet, body.clone())
            }
            // Beacons and SYNC are not mesh-control traffic.
            Payload::Beacon { .. } | Payload::Sync { .. } => Vec::new(),
        }
    }

    fn score_link(&self, my: &MobilityInfo, sender: &MobilityInfo, hops: u8) -> PathScore {
        match self.config.mode {
            MeshMode::Odmrp => PathScore {
                lifetime: 0.0,
                hops,
            },
            MeshMode::Mrmm => PathScore {
                lifetime: link_lifetime(
                    my,
                    sender,
                    self.config.range_m,
                    self.config.lifetime_horizon_s,
                ),
                hops,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_join_query(
        &mut self,
        now: SimTime,
        source: NodeId,
        seq: u32,
        hop_count: u8,
        prev_hop: NodeId,
        sender: &MobilityInfo,
        my: &MobilityInfo,
    ) -> Vec<ProtocolAction> {
        let my_hops = hop_count.saturating_add(1);
        let score = self.score_link(my, sender, my_hops);
        // Route maintenance: adopt the path if the round is newer or the
        // score better within the same round.
        let update = match self.routes.get(&source) {
            None => true,
            Some(e) => {
                seq.wrapping_sub(e.seq) < u32::MAX / 2 && seq != e.seq
                    || (seq == e.seq && score.better_than(&e.score))
            }
        };
        if update {
            self.routes.insert(
                source,
                RouteEntry {
                    prev_hop,
                    hops: my_hops,
                    score,
                    seq,
                },
            );
        }

        let first_copy = self.seen_queries.insert((source, seq), now);
        let round = self.rounds.entry((source, seq)).or_default();
        round.copies += 1;
        let mut actions = Vec::new();
        if first_copy {
            if self.member && !round.reply_scheduled {
                round.reply_scheduled = true;
                actions.push(ProtocolAction::ScheduleReply {
                    source,
                    after: self.config.reply_delay,
                });
            }
            if my_hops < self.config.max_hops && !round.rebroadcast_scheduled {
                round.rebroadcast_scheduled = true;
                actions.push(ProtocolAction::ScheduleRebroadcast {
                    source,
                    seq,
                    after: self.config.rebroadcast_jitter,
                });
            }
        }
        // Bound the per-round bookkeeping.
        if self.rounds.len() > 256 {
            let keep_seq = seq;
            self.rounds
                .retain(|(_, s), _| keep_seq.wrapping_sub(*s) < 8);
        }
        actions
    }

    /// Performs the deferred rebroadcast decision for query `(source,
    /// seq)`. MRMM nodes suppress themselves when redundant copies were
    /// heard and their best upstream link is short-lived.
    pub fn make_rebroadcast(
        &mut self,
        _now: SimTime,
        source: NodeId,
        seq: u32,
        my: &MobilityInfo,
    ) -> Option<Packet> {
        let copies = self.rounds.get(&(source, seq)).map_or(1, |r| r.copies);
        let route = self.routes.get(&source)?;
        if route.seq != seq {
            return None; // a newer round superseded this one
        }
        if self.config.mode == MeshMode::Mrmm
            && self.config.prune.should_prune(route.score.lifetime, copies)
        {
            self.stats.queries_suppressed += 1;
            return None;
        }
        self.stats.queries_rebroadcast += 1;
        Some(Packet::new(
            source,
            seq,
            Payload::JoinQuery {
                group: self.group,
                hop_count: route.hops,
                prev_hop: self.id,
                position: my.position,
                velocity: (my.velocity.x, my.velocity.y),
                d_rest: my.d_rest,
            },
        ))
    }

    /// Builds this member's JOIN REPLY for `source` (call after the
    /// aggregation delay). Returns `None` if no route is known or this
    /// node *is* the source.
    pub fn make_reply(&mut self, _now: SimTime, source: NodeId) -> Option<Packet> {
        if source == self.id {
            return None;
        }
        let route = self.routes.get(&source)?;
        self.stats.replies_sent += 1;
        Some(Packet::new(
            self.id,
            route.seq,
            Payload::JoinReply {
                group: self.group,
                source,
                next_hop: route.prev_hop,
            },
        ))
    }

    fn on_join_reply(
        &mut self,
        now: SimTime,
        source: NodeId,
        next_hop: NodeId,
    ) -> Vec<ProtocolAction> {
        if next_hop != self.id || source == self.id {
            return Vec::new(); // overheard, or we are the source (mesh root)
        }
        let was_forwarding = self.is_forwarding(now);
        self.fg_until = Some(now + self.config.fg_timeout);
        if !was_forwarding {
            self.stats.fg_activations += 1;
        }
        // Propagate towards the source, at most once per reply_delay to
        // collapse the replies of multiple downstream members.
        let recently = self
            .last_reply_propagated
            .get(&source)
            .is_some_and(|t| now.saturating_since(*t) < self.config.reply_delay);
        if recently {
            return Vec::new();
        }
        let Some(route) = self.routes.get(&source) else {
            return Vec::new();
        };
        self.last_reply_propagated.insert(source, now);
        self.stats.replies_sent += 1;
        vec![ProtocolAction::Broadcast {
            packet: Packet::new(
                self.id,
                route.seq,
                Payload::JoinReply {
                    group: self.group,
                    source,
                    next_hop: route.prev_hop,
                },
            ),
            jitter_bound: self.config.rebroadcast_jitter,
        }]
    }

    fn on_data(&mut self, now: SimTime, packet: &Packet, body: Bytes) -> Vec<ProtocolAction> {
        if !self.seen_data.insert((packet.src, packet.seq), now) {
            self.stats.data_duplicates += 1;
            return Vec::new();
        }
        let mut actions = Vec::new();
        if self.member && packet.src != self.id {
            self.stats.data_delivered += 1;
            actions.push(ProtocolAction::Deliver {
                source: packet.src,
                body,
            });
        }
        // Members and forwarding-group nodes rebroadcast down the mesh.
        if (self.member || self.is_forwarding(now)) && packet.src != self.id {
            self.stats.data_forwarded += 1;
            actions.push(ProtocolAction::Broadcast {
                packet: packet.clone(),
                jitter_bound: self.config.rebroadcast_jitter,
            });
        }
        actions
    }
}

/// One reverse-path route as checkpoint data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteCheckpoint {
    /// The mesh source the route leads to.
    pub source: NodeId,
    /// Reverse-path predecessor.
    pub prev_hop: NodeId,
    /// Hop count from the source.
    pub hops: u8,
    /// MRMM path score.
    pub score: PathScore,
    /// Query round that installed the route.
    pub seq: u32,
}

/// One query round's bookkeeping as checkpoint data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundCheckpoint {
    /// Query source.
    pub source: NodeId,
    /// Query round.
    pub seq: u32,
    /// Copies of the query heard so far.
    pub copies: u32,
    /// Whether a reply was already scheduled.
    pub reply_scheduled: bool,
    /// Whether a rebroadcast was already scheduled.
    pub rebroadcast_scheduled: bool,
}

/// An [`OdmrpNode`]'s mutable state as checkpoint data (see
/// [`OdmrpNode::checkpoint`]). Map-backed fields are sorted by key.
#[derive(Debug, Clone)]
pub struct OdmrpCheckpoint {
    /// Forwarding-group flag expiry, if set.
    pub fg_until: Option<SimTime>,
    /// Reverse-path routes, sorted by source id.
    pub routes: Vec<RouteCheckpoint>,
    /// Per-round bookkeeping, sorted by (source id, seq).
    pub rounds: Vec<RoundCheckpoint>,
    /// Query duplicate-suppression entries in insertion order.
    pub seen_queries: Vec<((NodeId, u32), SimTime)>,
    /// Data duplicate-suppression entries in insertion order.
    pub seen_data: Vec<((NodeId, u32), SimTime)>,
    /// Last reply-propagation time per source, sorted by source id.
    pub last_reply_propagated: Vec<(NodeId, SimTime)>,
    /// Next originated sequence number.
    pub next_seq: u32,
    /// Protocol counters.
    pub stats: MeshStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::geometry::{Point, Vec2};

    fn mob(x: f64) -> MobilityInfo {
        MobilityInfo::stationary(Point::new(x, 0.0))
    }

    fn moving(x: f64, vx: f64, d_rest: f64) -> MobilityInfo {
        MobilityInfo {
            position: Point::new(x, 0.0),
            velocity: Vec2::new(vx, 0.0),
            d_rest,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn node(id: u32, member: bool, mode: MeshMode) -> OdmrpNode {
        let config = OdmrpConfig {
            mode,
            ..OdmrpConfig::default()
        };
        OdmrpNode::new(NodeId(id), GroupId(1), member, config)
    }

    /// Drives a query from `src` through `relay` to `member` and returns
    /// the member's reply chain.
    fn build_small_mesh(mode: MeshMode) -> (OdmrpNode, OdmrpNode, OdmrpNode) {
        let mut src = node(0, true, mode);
        let mut relay = node(1, false, mode);
        let mut member = node(2, true, mode);

        let query = src.originate_query(t(0), &mob(0.0));
        // Relay hears the query and schedules a rebroadcast.
        let acts = relay.handle_packet(t(0), &query, &mob(75.0));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::ScheduleRebroadcast { .. })));
        let rebro = relay
            .make_rebroadcast(t(0), NodeId(0), query.seq, &mob(75.0))
            .expect("relay rebroadcasts");
        // Member hears the rebroadcast and schedules a reply.
        let acts = member.handle_packet(t(0), &rebro, &mob(150.0));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::ScheduleReply { .. })));
        let reply = member.make_reply(t(0), NodeId(0)).expect("member replies");
        // The reply names the relay; delivering it makes the relay FG and
        // produces an upstream reply naming the source.
        let acts = relay.handle_packet(t(0), &reply, &mob(75.0));
        assert!(relay.is_forwarding(t(1)));
        let upstream = acts.iter().find_map(|a| match a {
            ProtocolAction::Broadcast { packet, .. } => Some(packet.clone()),
            _ => None,
        });
        let upstream = upstream.expect("relay propagates reply");
        match upstream.payload {
            Payload::JoinReply { next_hop, .. } => assert_eq!(next_hop, NodeId(0)),
            ref p => panic!("unexpected payload {p:?}"),
        }
        (src, relay, member)
    }

    #[test]
    fn mesh_construction_odmrp() {
        build_small_mesh(MeshMode::Odmrp);
    }

    #[test]
    fn mesh_construction_mrmm() {
        build_small_mesh(MeshMode::Mrmm);
    }

    #[test]
    fn data_flows_down_the_mesh() {
        let (mut src, mut relay, mut member) = build_small_mesh(MeshMode::Mrmm);
        let data = src.originate_data(t(1), Bytes::from_static(b"sync"));
        let acts = relay.handle_packet(t(1), &data, &mob(75.0));
        // Relay is FG but not a member: forwards, does not deliver.
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Broadcast { .. })));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Deliver { .. })));
        let acts = member.handle_packet(t(1), &data, &mob(150.0));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Deliver { source, .. } if *source == NodeId(0))));
        assert_eq!(member.stats().data_delivered, 1);
    }

    #[test]
    fn duplicate_data_is_discarded() {
        let (mut src, _, mut member) = build_small_mesh(MeshMode::Mrmm);
        let data = src.originate_data(t(1), Bytes::from_static(b"sync"));
        let first = member.handle_packet(t(1), &data, &mob(150.0));
        assert!(!first.is_empty());
        let second = member.handle_packet(t(1), &data, &mob(150.0));
        assert!(second.is_empty());
        assert_eq!(member.stats().data_duplicates, 1);
    }

    #[test]
    fn duplicate_query_copies_do_not_reschedule() {
        let mut relay = node(1, false, MeshMode::Mrmm);
        let mut src = node(0, true, MeshMode::Mrmm);
        let query = src.originate_query(t(0), &mob(0.0));
        let first = relay.handle_packet(t(0), &query, &mob(75.0));
        assert_eq!(first.len(), 1);
        // Second copy via another path: no new schedule.
        let copy = Packet::new(
            NodeId(0),
            query.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(9),
                position: Point::new(60.0, 0.0),
                velocity: (0.0, 0.0),
                d_rest: 0.0,
            },
        );
        let second = relay.handle_packet(t(0), &copy, &mob(75.0));
        assert!(second.is_empty());
    }

    #[test]
    fn mrmm_prefers_longer_lived_reverse_path() {
        let mut relay = node(1, true, MeshMode::Mrmm);
        let mut src = node(0, true, MeshMode::Mrmm);
        let my = mob(75.0);
        // First copy arrives via a neighbour about to drive out of range.
        let q = src.originate_query(t(0), &mob(0.0));
        let via_flaky = Packet::new(
            NodeId(0),
            q.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(5),
                // 140 m away driving away fast: link dies in ~5 s.
                position: Point::new(215.0, 0.0),
                velocity: (2.0, 0.0),
                d_rest: 1000.0,
            },
        );
        relay.handle_packet(t(0), &via_flaky, &my);
        // Second copy via a stationary neighbour: longer-lived, adopted
        // even though it arrived later with equal hops.
        let via_stable = Packet::new(
            NodeId(0),
            q.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(6),
                position: Point::new(100.0, 0.0),
                velocity: (0.0, 0.0),
                d_rest: 0.0,
            },
        );
        relay.handle_packet(t(0), &via_stable, &my);
        let reply = relay.make_reply(t(0), NodeId(0)).unwrap();
        match reply.payload {
            Payload::JoinReply { next_hop, .. } => assert_eq!(next_hop, NodeId(6)),
            ref p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn odmrp_keeps_first_path_regardless_of_lifetime() {
        let mut relay = node(1, true, MeshMode::Odmrp);
        let mut src = node(0, true, MeshMode::Odmrp);
        let my = mob(75.0);
        let q = src.originate_query(t(0), &mob(0.0));
        let via_flaky = Packet::new(
            NodeId(0),
            q.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(5),
                position: Point::new(215.0, 0.0),
                velocity: (2.0, 0.0),
                d_rest: 1000.0,
            },
        );
        relay.handle_packet(t(0), &via_flaky, &my);
        let via_stable = Packet::new(
            NodeId(0),
            q.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(6),
                position: Point::new(100.0, 0.0),
                velocity: (0.0, 0.0),
                d_rest: 0.0,
            },
        );
        relay.handle_packet(t(0), &via_stable, &my);
        let reply = relay.make_reply(t(0), NodeId(0)).unwrap();
        match reply.payload {
            Payload::JoinReply { next_hop, .. } => {
                assert_eq!(next_hop, NodeId(5), "plain ODMRP keeps the first path");
            }
            ref p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn mrmm_prunes_redundant_short_lived_forwarder() {
        let mut relay = node(1, false, MeshMode::Mrmm);
        let mut src = node(0, true, MeshMode::Mrmm);
        // Relay is driving away from everything: links die in ~5 s.
        let my = moving(75.0, 2.0, 1000.0);
        let q = src.originate_query(t(0), &moving(0.0, -2.0, 1000.0));
        // Hearing three copies ⇒ redundancy evidence.
        relay.handle_packet(t(0), &q, &my);
        for prev in [7u32, 8] {
            let copy = Packet::new(
                NodeId(0),
                q.seq,
                Payload::JoinQuery {
                    group: GroupId(1),
                    hop_count: 1,
                    prev_hop: NodeId(prev),
                    // Behind the relay and driving the other way: also a
                    // short-lived link, so every candidate path is flaky.
                    position: Point::new(10.0, 0.0),
                    velocity: (-2.0, 0.0),
                    d_rest: 1000.0,
                },
            );
            relay.handle_packet(t(0), &copy, &my);
        }
        assert!(
            relay
                .make_rebroadcast(t(0), NodeId(0), q.seq, &my)
                .is_none(),
            "short-lived redundant node prunes itself"
        );
        assert_eq!(relay.stats().queries_suppressed, 1);
    }

    #[test]
    fn sole_path_node_never_prunes() {
        let mut relay = node(1, false, MeshMode::Mrmm);
        let mut src = node(0, true, MeshMode::Mrmm);
        let my = moving(75.0, 2.0, 1000.0);
        let q = src.originate_query(t(0), &moving(0.0, -2.0, 1000.0));
        relay.handle_packet(t(0), &q, &my); // exactly one copy
        assert!(relay
            .make_rebroadcast(t(0), NodeId(0), q.seq, &my)
            .is_some());
    }

    #[test]
    fn fg_flag_expires() {
        let (_, relay, member) = build_small_mesh(MeshMode::Mrmm);
        assert!(relay.is_forwarding(t(1)));
        assert!(!relay.is_forwarding(t(10_000)));
        let _ = member;
    }

    #[test]
    fn newer_round_supersedes_rebroadcast() {
        let mut relay = node(1, false, MeshMode::Mrmm);
        let mut src = node(0, true, MeshMode::Mrmm);
        let q1 = src.originate_query(t(0), &mob(0.0));
        relay.handle_packet(t(0), &q1, &mob(75.0));
        let q2 = src.originate_query(t(10), &mob(0.0));
        relay.handle_packet(t(10), &q2, &mob(75.0));
        // The deferred rebroadcast of round 0 is stale now.
        assert!(relay
            .make_rebroadcast(t(10), NodeId(0), q1.seq, &mob(75.0))
            .is_none());
        assert!(relay
            .make_rebroadcast(t(10), NodeId(0), q2.seq, &mob(75.0))
            .is_some());
    }

    #[test]
    fn non_member_does_not_deliver() {
        let (mut src, mut relay, _) = build_small_mesh(MeshMode::Mrmm);
        let data = src.originate_data(t(2), Bytes::from_static(b"x"));
        let acts = relay.handle_packet(t(2), &data, &mob(75.0));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Deliver { .. })));
    }

    #[test]
    fn source_ignores_its_own_flooded_query() {
        let mut src = node(0, true, MeshMode::Mrmm);
        let q = src.originate_query(t(0), &mob(0.0));
        let echo = Packet::new(
            NodeId(0),
            q.seq,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 1,
                prev_hop: NodeId(3),
                position: Point::new(10.0, 0.0),
                velocity: (0.0, 0.0),
                d_rest: 0.0,
            },
        );
        assert!(src.handle_packet(t(0), &echo, &mob(0.0)).is_empty());
    }
}
