//! Mesh bookkeeping: duplicate suppression and per-node protocol counters.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

use serde::{Deserialize, Serialize};

use cocoa_sim::time::{SimDuration, SimTime};

/// A time-bounded duplicate-suppression cache.
///
/// ODMRP floods queries and data; every node must remember which
/// `(source, sequence)` pairs it has already handled. Entries expire after
/// a retention window so memory stays bounded over long runs.
#[derive(Debug, Clone)]
pub struct DedupCache<K: Eq + Hash + Clone> {
    retention: SimDuration,
    order: VecDeque<(K, SimTime)>,
    set: HashSet<K>,
}

impl<K: Eq + Hash + Clone> DedupCache<K> {
    /// Creates a cache that remembers entries for `retention`.
    pub fn new(retention: SimDuration) -> Self {
        DedupCache {
            retention,
            order: VecDeque::new(),
            set: HashSet::new(),
        }
    }

    /// Inserts `key` at `now`. Returns `true` if it was new (not a
    /// duplicate), purging expired entries as a side effect.
    pub fn insert(&mut self, key: K, now: SimTime) -> bool {
        self.purge(now);
        if self.set.contains(&key) {
            return false;
        }
        self.set.insert(key.clone());
        self.order.push_back((key, now));
        true
    }

    /// Whether `key` is currently remembered.
    pub fn contains(&self, key: &K) -> bool {
        self.set.contains(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The retention window.
    pub fn retention(&self) -> SimDuration {
        self.retention
    }

    /// The live entries in insertion order (checkpoint support).
    pub fn entries(&self) -> impl Iterator<Item = &(K, SimTime)> {
        self.order.iter()
    }

    /// Rebuilds a cache from checkpointed entries, which must be in the
    /// insertion order [`DedupCache::entries`] yielded them in.
    pub fn from_entries(retention: SimDuration, entries: Vec<(K, SimTime)>) -> Self {
        let set = entries.iter().map(|(k, _)| k.clone()).collect();
        DedupCache {
            retention,
            order: entries.into(),
            set,
        }
    }

    fn purge(&mut self, now: SimTime) {
        while let Some((key, t)) = self.order.front() {
            if now.saturating_since(*t) > self.retention {
                self.set.remove(key);
                self.order.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Per-node protocol counters, aggregated across the team for the MRMM
/// forwarding-efficiency comparison (DESIGN.md ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MeshStats {
    /// JOIN QUERY rounds originated (sources only).
    pub queries_originated: u64,
    /// JOIN QUERY copies rebroadcast.
    pub queries_rebroadcast: u64,
    /// JOIN QUERY rebroadcasts suppressed by MRMM pruning.
    pub queries_suppressed: u64,
    /// JOIN REPLY packets sent (fresh or propagated).
    pub replies_sent: u64,
    /// Times this node (re)gained forwarding-group status.
    pub fg_activations: u64,
    /// Data packets originated.
    pub data_originated: u64,
    /// Data packets rebroadcast down the mesh.
    pub data_forwarded: u64,
    /// Data packets delivered to the application (members, deduplicated).
    pub data_delivered: u64,
    /// Duplicate data copies discarded.
    pub data_duplicates: u64,
    /// Delivered data bodies the application could not decode (garbled
    /// in flight); counted here so mesh reliability studies can separate
    /// transport loss from payload corruption.
    pub data_undecodable: u64,
}

impl MeshStats {
    /// Adds another node's counters into this one.
    pub fn merge(&mut self, other: &MeshStats) {
        self.queries_originated += other.queries_originated;
        self.queries_rebroadcast += other.queries_rebroadcast;
        self.queries_suppressed += other.queries_suppressed;
        self.replies_sent += other.replies_sent;
        self.fg_activations += other.fg_activations;
        self.data_originated += other.data_originated;
        self.data_forwarded += other.data_forwarded;
        self.data_delivered += other.data_delivered;
        self.data_duplicates += other.data_duplicates;
        self.data_undecodable += other.data_undecodable;
    }

    /// Every counter as a stable `(name, value)` list, in declaration
    /// order. Names match the telemetry counter registry (`mesh.*` after
    /// prefixing) and the trace schema.
    pub fn counters(&self) -> [(&'static str, u64); 10] {
        [
            ("queries_originated", self.queries_originated),
            ("queries_rebroadcast", self.queries_rebroadcast),
            ("queries_suppressed", self.queries_suppressed),
            ("replies_sent", self.replies_sent),
            ("fg_activations", self.fg_activations),
            ("data_originated", self.data_originated),
            ("data_forwarded", self.data_forwarded),
            ("data_delivered", self.data_delivered),
            ("data_duplicates", self.data_duplicates),
            ("data_undecodable", self.data_undecodable),
        ]
    }

    /// ODMRP's forwarding efficiency: deliveries per data transmission.
    /// Higher is better; MRMM's sparser mesh should beat plain ODMRP.
    pub fn forwarding_efficiency(&self) -> f64 {
        let transmissions = self.data_originated + self.data_forwarded;
        if transmissions == 0 {
            0.0
        } else {
            self.data_delivered as f64 / transmissions as f64
        }
    }

    /// Control packets sent (queries + replies).
    pub fn control_overhead(&self) -> u64 {
        self.queries_originated + self.queries_rebroadcast + self.replies_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn dedup_detects_duplicates() {
        let mut c: DedupCache<(u32, u32)> = DedupCache::new(SimDuration::from_secs(10));
        assert!(c.insert((1, 1), t(0)));
        assert!(!c.insert((1, 1), t(1)));
        assert!(c.insert((1, 2), t(1)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dedup_expires_old_entries() {
        let mut c: DedupCache<u32> = DedupCache::new(SimDuration::from_secs(10));
        c.insert(1, t(0));
        assert!(c.contains(&1));
        // 11 s later the entry has expired; re-inserting succeeds.
        assert!(c.insert(1, t(11)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dedup_purges_lazily_on_insert() {
        let mut c: DedupCache<u32> = DedupCache::new(SimDuration::from_secs(5));
        for i in 0..100 {
            c.insert(i, t(0));
        }
        assert_eq!(c.len(), 100);
        c.insert(200, t(60));
        assert_eq!(c.len(), 1, "expired entries reclaimed");
    }

    #[test]
    fn stats_merge_and_efficiency() {
        let mut a = MeshStats {
            data_originated: 10,
            data_forwarded: 40,
            data_delivered: 100,
            ..Default::default()
        };
        let b = MeshStats {
            queries_rebroadcast: 5,
            replies_sent: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries_rebroadcast, 5);
        assert!((a.forwarding_efficiency() - 2.0).abs() < 1e-12);
        assert_eq!(a.control_overhead(), 8);
    }

    #[test]
    fn efficiency_of_empty_stats_is_zero() {
        assert_eq!(MeshStats::default().forwarding_efficiency(), 0.0);
    }
}
