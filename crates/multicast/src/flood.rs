//! The naive dissemination baseline: blind flooding.
//!
//! ODMRP/MRMM exist because flooding every data packet is wasteful: every
//! node rebroadcasts every packet once, so delivering one SYNC costs N
//! transmissions regardless of topology. This module implements that
//! baseline with the same sans-IO interface as [`crate::odmrp::OdmrpNode`],
//! so the mesh-efficiency comparison (forwarding efficiency, control
//! overhead) has a floor to stand on.

use bytes::Bytes;

use cocoa_net::packet::{GroupId, NodeId, Packet, Payload};
use cocoa_sim::time::{SimDuration, SimTime};

use crate::mesh::{DedupCache, MeshStats};
use crate::odmrp::ProtocolAction;

/// A blind-flooding node: rebroadcast every first copy of every data
/// packet, deliver to the local member, drop duplicates.
pub struct FloodNode {
    id: NodeId,
    group: GroupId,
    member: bool,
    jitter: SimDuration,
    seen: DedupCache<(NodeId, u32)>,
    next_seq: u32,
    stats: MeshStats,
}

impl std::fmt::Debug for FloodNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodNode")
            .field("id", &self.id)
            .field("member", &self.member)
            .finish()
    }
}

impl FloodNode {
    /// Creates a flooding node.
    pub fn new(id: NodeId, group: GroupId, member: bool) -> Self {
        FloodNode {
            id,
            group,
            member,
            jitter: SimDuration::from_millis(100),
            seen: DedupCache::new(SimDuration::from_secs(120)),
            next_seq: 0,
            stats: MeshStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Protocol counters (flooding has no control traffic; only the data
    /// fields are populated).
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// Originates a data packet (source only).
    pub fn originate_data(&mut self, now: SimTime, body: Bytes) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen.insert((self.id, seq), now);
        self.stats.data_originated += 1;
        Packet::new(
            self.id,
            seq,
            Payload::Data {
                group: self.group,
                body,
            },
        )
    }

    /// Records a delivered data body the application could not decode
    /// (same accounting hook as `OdmrpNode::note_undecodable_delivery`).
    pub fn note_undecodable_delivery(&mut self) {
        self.stats.data_undecodable += 1;
    }

    /// The node's mutable state as checkpoint data (identity fields are
    /// reconstructed by the caller, which knows id/group/membership).
    pub fn checkpoint(&self) -> FloodCheckpoint {
        FloodCheckpoint {
            seen: self.seen.entries().cloned().collect(),
            next_seq: self.next_seq,
            stats: self.stats,
        }
    }

    /// Restores checkpointed mutable state onto a freshly created node.
    pub fn restore(&mut self, c: FloodCheckpoint) {
        self.seen = DedupCache::from_entries(self.seen.retention(), c.seen);
        self.next_seq = c.next_seq;
        self.stats = c.stats;
    }

    /// Handles a received packet: deliver once, rebroadcast once.
    pub fn handle_packet(&mut self, now: SimTime, packet: &Packet) -> Vec<ProtocolAction> {
        let Payload::Data { group, body } = &packet.payload else {
            return Vec::new(); // flooding ignores all control traffic
        };
        if *group != self.group || packet.src == self.id {
            return Vec::new();
        }
        if !self.seen.insert((packet.src, packet.seq), now) {
            self.stats.data_duplicates += 1;
            return Vec::new();
        }
        let mut actions = Vec::new();
        if self.member {
            self.stats.data_delivered += 1;
            actions.push(ProtocolAction::Deliver {
                source: packet.src,
                body: body.clone(),
            });
        }
        self.stats.data_forwarded += 1;
        actions.push(ProtocolAction::Broadcast {
            packet: packet.clone(),
            jitter_bound: self.jitter,
        });
        actions
    }
}

/// A [`FloodNode`]'s mutable state as checkpoint data.
#[derive(Debug, Clone)]
pub struct FloodCheckpoint {
    /// Duplicate-suppression entries in insertion order.
    pub seen: Vec<((NodeId, u32), SimTime)>,
    /// Next originated sequence number.
    pub next_seq: u32,
    /// Protocol counters.
    pub stats: MeshStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn first_copy_delivers_and_forwards() {
        let mut src = FloodNode::new(NodeId(0), GroupId(1), true);
        let mut node = FloodNode::new(NodeId(1), GroupId(1), true);
        let data = src.originate_data(t(0), Bytes::from_static(b"sync"));
        let acts = node.handle_packet(t(0), &data);
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Deliver { .. })));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Broadcast { .. })));
        assert_eq!(node.stats().data_forwarded, 1);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut src = FloodNode::new(NodeId(0), GroupId(1), true);
        let mut node = FloodNode::new(NodeId(1), GroupId(1), true);
        let data = src.originate_data(t(0), Bytes::from_static(b"x"));
        assert!(!node.handle_packet(t(0), &data).is_empty());
        assert!(node.handle_packet(t(0), &data).is_empty());
        assert_eq!(node.stats().data_duplicates, 1);
    }

    #[test]
    fn non_members_forward_without_delivering() {
        let mut src = FloodNode::new(NodeId(0), GroupId(1), true);
        let mut relay = FloodNode::new(NodeId(1), GroupId(1), false);
        let data = src.originate_data(t(0), Bytes::from_static(b"x"));
        let acts = relay.handle_packet(t(0), &data);
        assert!(!acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Deliver { .. })));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ProtocolAction::Broadcast { .. })));
    }

    #[test]
    fn control_traffic_is_ignored() {
        let mut node = FloodNode::new(NodeId(1), GroupId(1), true);
        let query = Packet::new(
            NodeId(0),
            0,
            Payload::JoinQuery {
                group: GroupId(1),
                hop_count: 0,
                prev_hop: NodeId(0),
                position: cocoa_net::geometry::Point::ORIGIN,
                velocity: (0.0, 0.0),
                d_rest: 0.0,
            },
        );
        assert!(node.handle_packet(t(0), &query).is_empty());
    }

    #[test]
    fn other_groups_are_ignored() {
        let mut src = FloodNode::new(NodeId(0), GroupId(2), true);
        let mut node = FloodNode::new(NodeId(1), GroupId(1), true);
        let data = src.originate_data(t(0), Bytes::from_static(b"x"));
        assert!(node.handle_packet(t(0), &data).is_empty());
    }

    #[test]
    fn every_node_forwards_exactly_once_per_packet() {
        // The defining cost of flooding: per packet, every node transmits.
        let mut src = FloodNode::new(NodeId(0), GroupId(1), true);
        let mut nodes: Vec<FloodNode> = (1..10)
            .map(|i| FloodNode::new(NodeId(i), GroupId(1), true))
            .collect();
        let data = src.originate_data(t(0), Bytes::from_static(b"x"));
        // Deliver the packet to everyone twice (as rebroadcasts would).
        for n in &mut nodes {
            n.handle_packet(t(0), &data);
            n.handle_packet(t(0), &data);
        }
        let total_tx: u64 = nodes.iter().map(|n| n.stats().data_forwarded).sum();
        assert_eq!(total_tx, 9, "each node forwards exactly once");
    }
}
