//! # cocoa-multicast — the MRMM / ODMRP mesh multicast substrate
//!
//! CoCoA synchronizes its wake/sleep timeline by multicasting SYNC
//! messages from a designated Sync robot down a mesh built by **MRMM**
//! (Mobile Robot Mesh Multicast), an extension of the **ODMRP** mobile
//! ad hoc multicast protocol (paper Section 2.3).
//!
//! - [`odmrp`]: the per-node protocol state machine (JOIN QUERY flooding,
//!   JOIN REPLY reverse-path recruitment, forwarding-group data delivery),
//!   switchable between plain ODMRP and the MRMM extension;
//! - [`mrmm`]: MRMM's mobility-aware machinery — residual link-lifetime
//!   prediction from `(position, velocity, d_rest)` and the pruning policy
//!   that thins short-lived redundant forwarders out of the mesh;
//! - [`mesh`]: duplicate caches and the protocol counters used for the
//!   MRMM-vs-ODMRP forwarding-efficiency comparison;
//! - [`flood`]: the blind-flooding baseline behind the same sans-IO
//!   interface;
//! - [`protocol`]: the backend selector (`flood` / `odmrp` / `mrmm`)
//!   shared by configuration, CLI and reporting.
//!
//! The node is sans-IO: it consumes packets and returns
//! [`odmrp::ProtocolAction`]s; `cocoa-core`'s runner owns all timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flood;
pub mod mesh;
pub mod mrmm;
pub mod odmrp;
pub mod protocol;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::flood::FloodNode;
    pub use crate::mesh::{DedupCache, MeshStats};
    pub use crate::mrmm::{link_lifetime, MobilityInfo, PathScore, PruneConfig};
    pub use crate::odmrp::{MeshMode, OdmrpConfig, OdmrpNode, ProtocolAction};
    pub use crate::protocol::MulticastProtocol;
}
