//! MRMM's mobility-aware mesh pruning machinery.
//!
//! MRMM (Mobile Robot Mesh Multicast, Das et al., ICRA 2005) extends ODMRP
//! by exploiting the mobility knowledge available in robot networks — each
//! robot knows its position, velocity and `d_rest`, the distance it will
//! still travel before its next course change. From a neighbour's
//! advertised triple, a robot can *predict the residual lifetime of the
//! radio link* and prefer long-lived reverse paths, pruning short-lived
//! redundant forwarders out of the mesh (the paper: "select a new set of
//! nodes P ⊆ F that maximizes the lifetime of the mesh without greatly
//! affecting the redundancy and path lengths").

use serde::{Deserialize, Serialize};

use cocoa_net::geometry::{Point, Vec2};

/// The mobility knowledge a robot advertises in JOIN QUERY packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityInfo {
    /// Believed position, metres.
    pub position: Point,
    /// Velocity vector, m/s.
    pub velocity: Vec2,
    /// Distance remaining to the next course change, metres.
    pub d_rest: f64,
}

impl MobilityInfo {
    /// A stationary robot at `position`.
    pub fn stationary(position: Point) -> Self {
        MobilityInfo {
            position,
            velocity: Vec2::ZERO,
            d_rest: 0.0,
        }
    }

    /// Time until this robot's current straight leg ends, seconds
    /// (`∞` when stationary).
    pub fn leg_time(&self) -> f64 {
        let speed = self.velocity.norm();
        if speed < 1e-9 {
            f64::INFINITY
        } else {
            self.d_rest / speed
        }
    }
}

/// First time within `[t0, t1)` at which `|p0 + v (t - t0)| > range`, or
/// `None` if the pair stays in range through the phase. `p0` is the
/// relative position at `t0`, `v` the relative velocity during the phase.
fn phase_escape_time(p0: Vec2, v: Vec2, range: f64, t0: f64, t1: f64) -> Option<f64> {
    let c = p0.dot(p0) - range * range;
    if c > 0.0 {
        // Already out of range at the phase start.
        return Some(t0);
    }
    let a = v.dot(v);
    if a < 1e-12 {
        return None; // relative position constant, stays in range
    }
    let b = 2.0 * p0.dot(v);
    // Starting inside (c <= 0), the escape is the larger root.
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return None;
    }
    let escape = (-b + disc.sqrt()) / (2.0 * a);
    let t = t0 + escape;
    if escape >= 0.0 && t < t1 {
        Some(t)
    } else {
        None
    }
}

/// Predicts how long the radio link between robots `a` and `b` will
/// survive, seconds, assuming each travels its current straight leg and
/// then (conservatively) halts. Clamped to `horizon`.
///
/// Returns `0.0` if the pair is already out of range.
///
/// # Examples
///
/// ```
/// use cocoa_multicast::mrmm::{link_lifetime, MobilityInfo};
/// use cocoa_net::geometry::{Point, Vec2};
///
/// // Two robots 50 m apart, one driving away at 2 m/s with 1 km to go:
/// // the 150 m range is exhausted after (150 - 50) / 2 = 50 s.
/// let a = MobilityInfo::stationary(Point::new(0.0, 0.0));
/// let b = MobilityInfo {
///     position: Point::new(50.0, 0.0),
///     velocity: Vec2::new(2.0, 0.0),
///     d_rest: 1000.0,
/// };
/// let t = link_lifetime(&a, &b, 150.0, 600.0);
/// assert!((t - 50.0).abs() < 1e-6);
/// ```
pub fn link_lifetime(a: &MobilityInfo, b: &MobilityInfo, range: f64, horizon: f64) -> f64 {
    assert!(range > 0.0, "range must be positive");
    assert!(horizon > 0.0, "horizon must be positive");
    let p0 = b.position - a.position;
    if p0.norm() > range {
        return 0.0;
    }
    // Phase boundaries: each robot's leg end, then the horizon.
    let ta = a.leg_time().min(horizon);
    let tb = b.leg_time().min(horizon);
    let (first, second) = if ta <= tb { (ta, tb) } else { (tb, ta) };
    let boundaries = [0.0, first, second, horizon];
    let mut p = p0;
    for w in boundaries.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 <= t0 {
            continue;
        }
        // Velocities active during this phase.
        let va = if t0 < ta { a.velocity } else { Vec2::ZERO };
        let vb = if t0 < tb { b.velocity } else { Vec2::ZERO };
        let v = vb - va;
        if let Some(t) = phase_escape_time(p, v, range, t0, t1) {
            return t;
        }
        p = p + v * (t1 - t0);
    }
    horizon
}

/// MRMM's scoring of a candidate reverse-path predecessor: prefer links
/// that will live longer, tie-breaking on shorter paths. Lifetimes beyond
/// the mesh refresh interval are equivalent (the mesh is rebuilt anyway).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathScore {
    /// Predicted residual link lifetime, seconds (clamped to refresh).
    pub lifetime: f64,
    /// Hop count from the mesh source.
    pub hops: u8,
}

impl PathScore {
    /// Whether this path beats `other` under MRMM's ordering.
    pub fn better_than(&self, other: &PathScore) -> bool {
        if (self.lifetime - other.lifetime).abs() > 1e-9 {
            self.lifetime > other.lifetime
        } else {
            self.hops < other.hops
        }
    }
}

/// MRMM's rebroadcast-pruning policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneConfig {
    /// A forwarder whose best upstream link is predicted to live less than
    /// this (seconds) is a pruning candidate.
    pub min_lifetime_s: f64,
    /// Prune only when at least this many copies of the query were heard
    /// (redundancy evidence: other nodes cover the neighbourhood).
    pub redundancy_threshold: u32,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            min_lifetime_s: 30.0,
            redundancy_threshold: 2,
        }
    }
}

impl PruneConfig {
    /// MRMM's pruning decision: should a node *suppress* its JOIN QUERY
    /// rebroadcast (drop out of the candidate forwarder set F)?
    pub fn should_prune(&self, best_lifetime_s: f64, copies_heard: u32) -> bool {
        copies_heard >= self.redundancy_threshold && best_lifetime_s < self.min_lifetime_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn stationary_pair_in_range_lives_to_horizon() {
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo::stationary(at(100.0, 0.0));
        assert_eq!(link_lifetime(&a, &b, 150.0, 300.0), 300.0);
    }

    #[test]
    fn out_of_range_pair_has_zero_lifetime() {
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo::stationary(at(200.0, 0.0));
        assert_eq!(link_lifetime(&a, &b, 150.0, 300.0), 0.0);
    }

    #[test]
    fn receding_robot_breaks_link_at_predicted_time() {
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo {
            position: at(50.0, 0.0),
            velocity: Vec2::new(2.0, 0.0),
            d_rest: 1000.0,
        };
        let t = link_lifetime(&a, &b, 150.0, 600.0);
        assert!((t - 50.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn leg_end_halts_the_escape() {
        // Same as above but the leg ends after 10 s (20 m): the robot
        // halts at 70 m separation, still in range — link survives.
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo {
            position: at(50.0, 0.0),
            velocity: Vec2::new(2.0, 0.0),
            d_rest: 20.0,
        };
        assert_eq!(link_lifetime(&a, &b, 150.0, 600.0), 600.0);
    }

    #[test]
    fn approaching_then_passing_robot() {
        // B drives towards and past A; link holds while |sep| <= range.
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo {
            position: at(-100.0, 0.0),
            velocity: Vec2::new(2.0, 0.0),
            d_rest: 10_000.0,
        };
        // Escape when B reaches +150 m: travel 250 m at 2 m/s = 125 s.
        let t = link_lifetime(&a, &b, 150.0, 600.0);
        assert!((t - 125.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn both_moving_relative_velocity_counts() {
        // Convoy: same velocity, never separates.
        let a = MobilityInfo {
            position: at(0.0, 0.0),
            velocity: Vec2::new(1.0, 1.0),
            d_rest: 10_000.0,
        };
        let b = MobilityInfo {
            position: at(50.0, 0.0),
            velocity: Vec2::new(1.0, 1.0),
            d_rest: 10_000.0,
        };
        assert_eq!(link_lifetime(&a, &b, 150.0, 400.0), 400.0);
        // Diverging: both drive apart at 1 m/s each = 2 m/s closing rate.
        let c = MobilityInfo {
            position: at(0.0, 0.0),
            velocity: Vec2::new(-1.0, 0.0),
            d_rest: 10_000.0,
        };
        let d = MobilityInfo {
            position: at(50.0, 0.0),
            velocity: Vec2::new(1.0, 0.0),
            d_rest: 10_000.0,
        };
        let t = link_lifetime(&c, &d, 150.0, 400.0);
        assert!((t - 50.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn boundary_exactly_at_range_is_in_range() {
        let a = MobilityInfo::stationary(at(0.0, 0.0));
        let b = MobilityInfo::stationary(at(150.0, 0.0));
        assert_eq!(link_lifetime(&a, &b, 150.0, 100.0), 100.0);
    }

    #[test]
    fn path_score_ordering() {
        let long = PathScore {
            lifetime: 60.0,
            hops: 5,
        };
        let short = PathScore {
            lifetime: 10.0,
            hops: 2,
        };
        assert!(long.better_than(&short), "lifetime dominates hops");
        let a = PathScore {
            lifetime: 60.0,
            hops: 2,
        };
        let b = PathScore {
            lifetime: 60.0,
            hops: 4,
        };
        assert!(a.better_than(&b), "hops break ties");
        assert!(!b.better_than(&a));
    }

    #[test]
    fn prune_policy() {
        let cfg = PruneConfig::default();
        assert!(
            cfg.should_prune(5.0, 3),
            "short-lived redundant node prunes"
        );
        assert!(!cfg.should_prune(5.0, 1), "sole covering node never prunes");
        assert!(!cfg.should_prune(120.0, 5), "long-lived node never prunes");
    }

    #[test]
    fn leg_time_handles_stationary() {
        assert_eq!(
            MobilityInfo::stationary(at(0.0, 0.0)).leg_time(),
            f64::INFINITY
        );
        let m = MobilityInfo {
            position: at(0.0, 0.0),
            velocity: Vec2::new(3.0, 4.0),
            d_rest: 10.0,
        };
        assert!((m.leg_time() - 2.0).abs() < 1e-12);
    }
}
