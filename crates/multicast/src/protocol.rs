//! Backend selection: which mesh multicast protocol a scenario runs.
//!
//! The simulation core treats the mesh layer as a swappable backend (the
//! paper's comparison axis: blind flooding vs plain ODMRP vs the MRMM
//! extension). This selector names the three backends in one place so
//! configuration, CLI parsing and reporting all agree on the spelling.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::odmrp::MeshMode;

/// The mesh multicast backend driving SYNC dissemination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MulticastProtocol {
    /// Blind flooding: every node rebroadcasts every first copy. No
    /// control traffic, maximal data redundancy — the baseline floor.
    Flood,
    /// Plain ODMRP: JOIN QUERY flood, JOIN REPLY reverse paths, a
    /// forwarding group rebroadcasting data (hop-count routes).
    Odmrp,
    /// MRMM: ODMRP plus mobility-aware link-lifetime scoring and
    /// redundancy-based forwarding-group pruning (the paper's protocol).
    Mrmm,
}

impl MulticastProtocol {
    /// All backends, in comparison order (baseline first).
    pub const ALL: [MulticastProtocol; 3] = [
        MulticastProtocol::Flood,
        MulticastProtocol::Odmrp,
        MulticastProtocol::Mrmm,
    ];

    /// Stable lower-case name, used in CLI flags, counters and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MulticastProtocol::Flood => "flood",
            MulticastProtocol::Odmrp => "odmrp",
            MulticastProtocol::Mrmm => "mrmm",
        }
    }

    /// Parses a backend name (the inverse of [`MulticastProtocol::as_str`]).
    pub fn parse(s: &str) -> Option<MulticastProtocol> {
        match s {
            "flood" => Some(MulticastProtocol::Flood),
            "odmrp" => Some(MulticastProtocol::Odmrp),
            "mrmm" => Some(MulticastProtocol::Mrmm),
            _ => None,
        }
    }

    /// The ODMRP-family mode this backend forces, if it is one (`Flood`
    /// runs a different node type entirely).
    pub fn mesh_mode(self) -> Option<MeshMode> {
        match self {
            MulticastProtocol::Flood => None,
            MulticastProtocol::Odmrp => Some(MeshMode::Odmrp),
            MulticastProtocol::Mrmm => Some(MeshMode::Mrmm),
        }
    }
}

impl Default for MulticastProtocol {
    /// MRMM — the paper's protocol and the pre-existing default behaviour
    /// of the simulation core.
    fn default() -> Self {
        MulticastProtocol::Mrmm
    }
}

impl fmt::Display for MulticastProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in MulticastProtocol::ALL {
            assert_eq!(MulticastProtocol::parse(p.as_str()), Some(p));
            assert_eq!(format!("{p}"), p.as_str());
        }
        assert_eq!(MulticastProtocol::parse("gossip"), None);
    }

    #[test]
    fn default_is_mrmm() {
        assert_eq!(MulticastProtocol::default(), MulticastProtocol::Mrmm);
    }

    #[test]
    fn mesh_mode_mapping() {
        assert_eq!(MulticastProtocol::Flood.mesh_mode(), None);
        assert_eq!(MulticastProtocol::Odmrp.mesh_mode(), Some(MeshMode::Odmrp));
        assert_eq!(MulticastProtocol::Mrmm.mesh_mode(), Some(MeshMode::Mrmm));
    }
}
