//! Property-based tests for the mesh multicast substrate.

use cocoa_multicast::prelude::*;
use cocoa_net::geometry::{Point, Vec2};
use cocoa_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_mobility() -> impl Strategy<Value = MobilityInfo> {
    (
        -200.0..200.0f64,
        -200.0..200.0f64,
        -3.0..3.0f64,
        -3.0..3.0f64,
        0.0..300.0f64,
    )
        .prop_map(|(x, y, vx, vy, d_rest)| MobilityInfo {
            position: Point::new(x, y),
            velocity: Vec2::new(vx, vy),
            d_rest,
        })
}

proptest! {
    /// Link lifetime is always within [0, horizon].
    #[test]
    fn lifetime_bounded(a in arb_mobility(), b in arb_mobility(), range in 10.0..300.0f64, horizon in 1.0..600.0f64) {
        let t = link_lifetime(&a, &b, range, horizon);
        prop_assert!((0.0..=horizon).contains(&t), "lifetime {t}");
    }

    /// Link lifetime is symmetric in its endpoints.
    #[test]
    fn lifetime_symmetric(a in arb_mobility(), b in arb_mobility(), range in 10.0..300.0f64) {
        let ab = link_lifetime(&a, &b, range, 300.0);
        let ba = link_lifetime(&b, &a, range, 300.0);
        prop_assert!((ab - ba).abs() < 1e-6, "{ab} vs {ba}");
    }

    /// Out-of-range pairs have zero lifetime; in-range stationary pairs
    /// live to the horizon.
    #[test]
    fn lifetime_edge_cases(d in 0.1..500.0f64, range in 10.0..300.0f64) {
        let a = MobilityInfo::stationary(Point::new(0.0, 0.0));
        let b = MobilityInfo::stationary(Point::new(d, 0.0));
        let t = link_lifetime(&a, &b, range, 120.0);
        if d > range {
            prop_assert_eq!(t, 0.0);
        } else {
            prop_assert_eq!(t, 120.0);
        }
    }

    /// A larger range never shortens a link's predicted lifetime.
    #[test]
    fn lifetime_monotone_in_range(a in arb_mobility(), b in arb_mobility(), r1 in 10.0..150.0f64, extra in 0.0..150.0f64) {
        let t1 = link_lifetime(&a, &b, r1, 300.0);
        let t2 = link_lifetime(&a, &b, r1 + extra, 300.0);
        prop_assert!(t2 >= t1 - 1e-9, "range {r1}->{} lifetime {t1}->{t2}", r1 + extra);
    }

    /// The dedup cache behaves like a set within the retention window:
    /// first insert accepted, duplicates rejected.
    #[test]
    fn dedup_is_a_set(keys in proptest::collection::vec(0u32..50, 1..200)) {
        let mut cache: DedupCache<u32> = DedupCache::new(SimDuration::from_secs(1_000_000));
        let mut reference = std::collections::HashSet::new();
        for (i, k) in keys.iter().enumerate() {
            let fresh = cache.insert(*k, SimTime::from_secs(i as u64));
            prop_assert_eq!(fresh, reference.insert(*k));
        }
        prop_assert_eq!(cache.len(), reference.len());
    }

    /// Path scores are a strict weak order: never both a < b and b < a.
    #[test]
    fn path_score_antisymmetric(l1 in 0.0..200.0f64, h1 in 0u8..16, l2 in 0.0..200.0f64, h2 in 0u8..16) {
        let a = PathScore { lifetime: l1, hops: h1 };
        let b = PathScore { lifetime: l2, hops: h2 };
        prop_assert!(!(a.better_than(&b) && b.better_than(&a)));
    }

    /// No score beats itself (irreflexivity of the strict order).
    #[test]
    fn path_score_irreflexive(l in 0.0..200.0f64, h in 0u8..16) {
        let a = PathScore { lifetime: l, hops: h };
        prop_assert!(!a.better_than(&a));
    }

    /// A clearly longer-lived path always wins, whatever the hop counts:
    /// MRMM's ordering puts lifetime strictly before path length.
    #[test]
    fn path_score_lifetime_dominates(l in 0.0..200.0f64, extra in 1.0..100.0f64, h1 in 0u8..16, h2 in 0u8..16) {
        let short = PathScore { lifetime: l, hops: h1 };
        let long = PathScore { lifetime: l + extra, hops: h2 };
        prop_assert!(long.better_than(&short));
        prop_assert!(!short.better_than(&long));
    }

    /// The pruning policy never drops the last forwarder: a node that
    /// heard fewer copies than the redundancy threshold keeps its
    /// rebroadcast no matter how short-lived its best upstream link is.
    #[test]
    fn prune_never_drops_sole_forwarder(min_lifetime in 0.0..600.0f64, threshold in 2u32..16, lifetime in 0.0..600.0f64, copies in 0u32..16) {
        let cfg = PruneConfig { min_lifetime_s: min_lifetime, redundancy_threshold: threshold };
        if copies < threshold {
            prop_assert!(!cfg.should_prune(lifetime, copies));
        }
        // The sole-copy case in particular (exactly one forwarder heard
        // the query) survives under every configuration.
        prop_assert!(!cfg.should_prune(lifetime, 1));
    }

    /// A link predicted dead on arrival (out of range) prunes whenever
    /// redundancy evidence exists — the complementary direction.
    #[test]
    fn prune_fires_on_dead_redundant_links(threshold in 2u32..8, extra in 0u32..8) {
        let cfg = PruneConfig { min_lifetime_s: 30.0, redundancy_threshold: threshold };
        prop_assert!(cfg.should_prune(0.0, threshold + extra));
    }

    /// MeshStats::merge is associative-compatible: merging equals field
    /// sums.
    #[test]
    fn mesh_stats_merge(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let mk = |v: u16| MeshStats {
            queries_rebroadcast: u64::from(v),
            data_forwarded: u64::from(v) * 2,
            data_delivered: u64::from(v) * 3,
            ..Default::default()
        };
        let mut merged = MeshStats::default();
        merged.merge(&mk(a));
        merged.merge(&mk(b));
        merged.merge(&mk(c));
        let total = u64::from(a) + u64::from(b) + u64::from(c);
        prop_assert_eq!(merged.queries_rebroadcast, total);
        prop_assert_eq!(merged.data_delivered, total * 3);
    }
}
