//! The chaos harness: canned fault schedules driven through full runs,
//! asserting that the stack never panics, metrics stay finite, the same
//! seed reproduces bit-identical output, and degradation stays graceful
//! (bounded error, successful Sync failover) under heavy faults.

use cocoa_core::prelude::*;
use cocoa_sim::faults::{FaultPlan, GilbertElliott, PRESET_NAMES};
use cocoa_sim::time::{SimDuration, SimTime};

const DURATION: SimDuration = SimDuration::from_secs(360);

/// A quick scenario small enough for CI but with enough windows (12) for
/// crashes, failover and recovery to all play out.
fn quick() -> ScenarioBuilder {
    let mut b = Scenario::builder();
    b.seed(77)
        .robots(12)
        .equipped(6)
        .duration(DURATION)
        .beacon_period(SimDuration::from_secs(30))
        .transmit_window(SimDuration::from_secs(3))
        .grid_resolution(8.0)
        .failover_missed_periods(2);
    b
}

fn finite(metrics: &RunMetrics) {
    for p in &metrics.error_series {
        assert!(
            p.mean_error_m.is_finite() && p.mean_error_m >= 0.0,
            "error series must stay finite, got {} at t={}",
            p.mean_error_m,
            p.t_s
        );
    }
    assert!(metrics.energy.total_j().is_finite());
    for l in &metrics.health {
        assert!(l.total_s().is_finite());
    }
}

#[test]
fn every_preset_runs_without_panicking() {
    for name in PRESET_NAMES {
        let plan = FaultPlan::preset(name, DURATION, 12).expect("known preset");
        let m = run(&quick().faults(plan).build());
        finite(&m);
        assert!(
            m.events_processed > 0,
            "preset '{name}' must actually simulate"
        );
    }
}

#[test]
fn same_seed_same_faults_identical_metrics() {
    let plan = FaultPlan::preset("chaos", DURATION, 12).expect("known preset");
    let a = run(&quick().faults(plan.clone()).build());
    let b = run(&quick().faults(plan).build());
    assert_eq!(a, b, "same seed and fault schedule must reproduce exactly");
    // Byte-identical, not just structurally equal: the rendered forms of
    // both runs match down to every digit.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn sync_crash_mid_run_elects_new_timebase() {
    // Crash the Sync robot (robot 0) at T/2 with no reboot: the team must
    // elect a replacement timebase and keep delivering SYNC.
    let mut plan = FaultPlan::new();
    plan.schedule(
        SimTime::ZERO + DURATION / 2,
        cocoa_sim::faults::Fault::Crash { robot: 0 },
    );
    let m = run(&quick().faults(plan).build());
    finite(&m);
    assert_eq!(m.robustness.crashes, 1);
    assert!(
        m.robustness.failovers >= 1,
        "a new timebase must be elected after the Sync robot crashes"
    );
    // SYNC keeps flowing after the failover gap: more deliveries than a
    // run that stopped at T/2 could produce alone is hard to bound tightly,
    // but there must be deliveries and the dead robot accrues down-time.
    assert!(m.traffic.syncs_delivered > 0);
    assert!(
        m.health[0].down_s > DURATION.as_secs_f64() * 0.4,
        "the crashed robot spends the second half down, got {:.0} s",
        m.health[0].down_s
    );
}

#[test]
fn degradation_is_graceful_at_30pct_burst_loss_plus_sync_crash() {
    let baseline = run(&quick().build());
    let base_err = baseline.mean_error_over_time();

    let mut plan = FaultPlan::new();
    plan.schedule(
        SimTime::ZERO + DURATION / 6,
        cocoa_sim::faults::Fault::BurstLossStart {
            model: GilbertElliott::bursty(0.3, 8.0),
        },
    );
    plan.schedule(
        SimTime::ZERO + DURATION / 2,
        cocoa_sim::faults::Fault::Crash { robot: 0 },
    );
    let m = run(&quick().faults(plan).build());
    finite(&m);
    assert!(
        m.robustness.burst_losses > 0,
        "the overlay must drop frames"
    );
    assert!(m.robustness.failovers >= 1);
    let err = m.mean_error_over_time();
    assert!(
        err <= 3.0 * base_err.max(1.0),
        "degradation must stay graceful: {err:.1} m vs fault-free {base_err:.1} m"
    );
}

#[test]
fn reboot_restores_the_robot_and_ledgers_add_up() {
    // Crash an unequipped robot for the middle third of the run.
    let mut plan = FaultPlan::new();
    plan.schedule(
        SimTime::ZERO + DURATION / 3,
        cocoa_sim::faults::Fault::Crash { robot: 7 },
    );
    plan.schedule(
        SimTime::ZERO + (DURATION * 2) / 3,
        cocoa_sim::faults::Fault::Reboot { robot: 7 },
    );
    let m = run(&quick().faults(plan).build());
    finite(&m);
    assert_eq!(m.robustness.crashes, 1);
    assert_eq!(m.robustness.reboots, 1);
    let third = DURATION.as_secs_f64() / 3.0;
    let l = &m.health[7];
    assert!(
        (l.down_s - third).abs() < 1.0,
        "down time should be one third of the run, got {:.0} s",
        l.down_s
    );
    assert!(
        (l.total_s() - DURATION.as_secs_f64()).abs() < 1e-6,
        "the ledger must cover the whole run"
    );
    // After the reboot the robot re-enters the window cycle and can fix
    // again; at minimum it reports an estimate and stays finite.
    assert!(m.error_series.last().is_some());
}

#[test]
fn corrupted_beacons_are_counted_and_survived() {
    let plan = FaultPlan::preset("corrupt", DURATION, 12).expect("known preset");
    let m = run(&quick().faults(plan).build());
    finite(&m);
    let r = &m.robustness;
    assert!(
        r.corrupt_frames_dropped + r.garbled_frames_delivered > 0,
        "the garbling transmitter must have corrupted frames: {r:?}"
    );
    assert!(
        m.traffic.fixes > 0,
        "the team must keep localizing through corruption"
    );
}
