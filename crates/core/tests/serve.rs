//! End-to-end tests for the `cocoa-serve` subsystem: wire fidelity,
//! single-flight dedup, the two cache layers, failure mapping, and
//! persistence across restarts. Every test runs a real server on an
//! ephemeral localhost port and talks to it through the bundled
//! client — the same code path `cocoa-serve --submit` uses.

use std::sync::Arc;
use std::time::Duration;

use cocoa_core::executor::manifest::encode_metrics;
use cocoa_core::runner::SimRun;
use cocoa_core::serve::{client, parse_spec, ServeConfig, Server};
use cocoa_sim::telemetry::Telemetry;

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn counter(server: &Server, name: &str) -> u64 {
    server
        .counters()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("unknown counter {name}"))
}

const SMALL_SPEC: &str =
    "{\"seed\": 11, \"robots\": 6, \"equipped\": 3, \"duration_s\": 120, \"period_s\": 50}";

/// Normalizes the wall-clock residue of span lines: zeroes `total_ns`
/// and orders spans by name (the export sorts them by measured time).
/// The event stream is deterministic and kept byte-for-byte; span
/// *timings* are the one thing two separate executions can never
/// share.
fn normalize_span_timings(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut spans: Vec<String> = Vec::new();
    let flush = |spans: &mut Vec<String>, out: &mut String| {
        spans.sort();
        for span in spans.drain(..) {
            out.push_str(&span);
            out.push('\n');
        }
    };
    for line in jsonl.lines() {
        if line.contains("\"wall\":true") {
            // Wall-clock histograms (they say so themselves) are as
            // run-specific as span timings; skip them entirely.
            continue;
        }
        if line.starts_with("{\"kind\":\"span\"") {
            if let Some(pos) = line.find("\"total_ns\":") {
                let digits_at = pos + "\"total_ns\":".len();
                let rest = &line[digits_at..];
                let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
                spans.push(format!("{}0{}", &line[..digits_at], &rest[digits..]));
                continue;
            }
        }
        flush(&mut spans, &mut out);
        out.push_str(line);
        out.push('\n');
    }
    flush(&mut spans, &mut out);
    out
}

#[test]
fn end_to_end_stream_matches_local_run_exactly() {
    let spec = "{\"seed\": 11, \"robots\": 6, \"equipped\": 3, \"duration_s\": 120,\n \
                \"period_s\": 50, \"telemetry\": \"full\"}";
    let (_server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    let response = client::submit(&addr, spec).expect("submit succeeds");
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(response.cache_status(), Some("miss"));

    // The same experiment run locally, exactly as cocoa-run would.
    let request = parse_spec(spec).expect("spec parses");
    let telemetry = Telemetry::new(request.telemetry);
    let (local_metrics, local_telemetry) = SimRun::new(&request.scenario, telemetry).finish();

    // Zero observer effect: the streamed JSONL is what --trace-out
    // would have written locally — the event stream byte-for-byte, the
    // span lines up to their wall-clock timings (the only
    // nondeterministic bytes any two executions can differ in).
    assert_eq!(
        normalize_span_timings(&response.telemetry_jsonl()),
        normalize_span_timings(&local_telemetry.to_jsonl(true))
    );
    // And the metrics trailer decodes to the byte-exact local metrics.
    let wire_metrics = response.metrics().expect("metrics decode");
    assert_eq!(
        encode_metrics(&wire_metrics),
        encode_metrics(&local_metrics)
    );
}

#[test]
fn repeat_submission_is_served_from_cache() {
    let (server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    let first = client::submit(&addr, SMALL_SPEC).expect("first submit");
    let second = client::submit(&addr, SMALL_SPEC).expect("second submit");
    assert_eq!(first.cache_status(), Some("miss"));
    assert_eq!(second.cache_status(), Some("hit"));
    assert_eq!(
        first.header("X-Cocoa-Fingerprint"),
        second.header("X-Cocoa-Fingerprint")
    );
    assert_eq!(first.body, second.body, "cached body is byte-identical");
    assert_eq!(counter(&server, "serve.executed"), 1, "one run, two serves");
    assert_eq!(counter(&server, "serve.cache_hits"), 1);
}

#[test]
fn concurrent_identical_submissions_execute_once() {
    let (server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    let spec = "{\"seed\": 3, \"robots\": 10, \"equipped\": 5, \"duration_s\": 400, \
                \"period_s\": 50}";
    let addr = Arc::new(addr);
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || client::submit(&addr, spec).expect("submit"))
        })
        .collect();
    let responses: Vec<_> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // Exactly one run executed, no matter how the four requests raced.
    assert_eq!(counter(&server, "serve.executed"), 1);
    let misses = responses
        .iter()
        .filter(|r| r.cache_status() == Some("miss"))
        .count();
    assert_eq!(misses, 1, "exactly one leader");
    for response in &responses {
        assert_eq!(response.status, 200);
        assert!(
            matches!(response.cache_status(), Some("miss" | "join" | "hit")),
            "unexpected cache status {:?}",
            response.cache_status()
        );
        assert_eq!(response.body, responses[0].body, "byte-identical bodies");
    }
}

#[test]
fn warm_fork_results_match_a_cold_local_run() {
    let (server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    // Two specs in the same scenario family: identical team, RF
    // environment and calibration; different beacon schedule.
    let cold_spec = "{\"seed\": 11, \"robots\": 6, \"equipped\": 3, \"duration_s\": 120, \
                     \"period_s\": 50}";
    let warm_spec = "{\"seed\": 11, \"robots\": 6, \"equipped\": 3, \"duration_s\": 120, \
                     \"period_s\": 30}";
    let first = client::submit(&addr, cold_spec).expect("cold submit");
    let second = client::submit(&addr, warm_spec).expect("warm submit");
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(counter(&server, "serve.cold_starts"), 1);
    assert_eq!(
        counter(&server, "serve.warm_forks"),
        1,
        "second run forks from the cached family artifacts"
    );
    // Determinism makes warm reuse invisible: the warm-forked result is
    // byte-identical to running the second scenario cold and locally.
    let request = parse_spec(warm_spec).expect("spec parses");
    let (local_metrics, _) = SimRun::new(&request.scenario, Telemetry::off()).finish();
    let wire_metrics = second.metrics().expect("metrics decode");
    assert_eq!(
        encode_metrics(&wire_metrics),
        encode_metrics(&local_metrics)
    );
}

#[test]
fn invalid_specs_are_rejected_with_400() {
    let (server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    for bad in [
        "not json at all",
        "{\"robotz\": 5}",
        "{\"robots\": 4, \"equipped\": 9}",
    ] {
        let response = client::submit(&addr, bad).expect("transport ok");
        assert_eq!(response.status, 400, "spec {bad:?}");
        assert!(
            response.body_str().contains("\"kind\":\"serve.error\""),
            "{}",
            response.body_str()
        );
    }
    assert_eq!(counter(&server, "serve.rejected"), 3);
    assert_eq!(counter(&server, "serve.executed"), 0);
}

#[test]
fn deadline_exceeded_maps_to_504() {
    let (server, addr) = start(ServeConfig {
        quiet: true,
        job_deadline: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    });
    let spec = "{\"seed\": 5, \"robots\": 30, \"equipped\": 15, \"duration_s\": 3600}";
    let response = client::submit(&addr, spec).expect("transport ok");
    assert_eq!(response.status, 504, "{}", response.body_str());
    assert_eq!(counter(&server, "serve.failed"), 1);
    // The failed fingerprint was not cached: the next submission leads
    // again rather than being served a stale failure.
    assert_eq!(counter(&server, "serve.cache_hits"), 0);
}

#[test]
fn results_persist_across_a_restart() {
    let dir = std::env::temp_dir().join(format!("cocoa-serve-state-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let body_before;
    {
        let (server, addr) = start(ServeConfig {
            quiet: true,
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let response = client::submit(&addr, SMALL_SPEC).expect("submit");
        assert_eq!(response.status, 200);
        assert_eq!(counter(&server, "serve.persisted"), 1);
        body_before = response.body;
        // Graceful drain over HTTP; wait() returns only after the
        // accept loop has drained and written the manifest.
        client::shutdown(&addr).expect("shutdown accepted");
        server.wait();
    }
    assert!(
        dir.join("serve-manifest.json").exists(),
        "drain persists the manifest"
    );
    // A fresh process (modeled as a fresh Server) restores the cache.
    let (server, addr) = start(ServeConfig {
        quiet: true,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(counter(&server, "serve.restored"), 1);
    let response = client::submit(&addr, SMALL_SPEC).expect("resubmit");
    assert_eq!(response.cache_status(), Some("hit"));
    assert_eq!(
        response.body, body_before,
        "restored body is byte-identical"
    );
    assert_eq!(counter(&server, "serve.executed"), 0, "no recompute");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn service_endpoints_answer() {
    let (_server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    let health = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");

    let template = client::get(&addr, "/v1/spec").expect("spec template");
    assert_eq!(template.status, 200);
    parse_spec(&template.body_str()).expect("template is a valid spec");

    let stats = client::get(&addr, "/v1/stats").expect("stats");
    let object =
        cocoa_core::tracefile::parse_flat_object(&stats.body_str()).expect("stats are flat JSON");
    assert!(object.contains_key("serve.requests"));
    assert!(object.contains_key("supervisor.panics_caught"));

    let fleet = client::get(&addr, "/v1/fleet").expect("fleet");
    assert!(
        fleet.body_str().contains("\"schema\":1"),
        "{}",
        fleet.body_str()
    );

    let missing = client::get(&addr, "/v1/nope").expect("transport ok");
    assert_eq!(missing.status, 404);
}

#[test]
fn tailed_submission_streams_the_same_bytes() {
    let (_server, addr) = start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    });
    let spec = "{\"seed\": 11, \"robots\": 6, \"equipped\": 3, \"duration_s\": 120, \
                \"period_s\": 50, \"telemetry\": \"counters\"}";
    let mut tailed = Vec::new();
    let response = client::submit_tailed(&addr, spec, &mut tailed).expect("submit");
    assert_eq!(response.status, 200);
    assert_eq!(tailed, response.body, "the tail saw every byte, in order");
    assert!(
        response.body_str().contains("\"kind\":\"serve.metrics\""),
        "trailer line present"
    );
}
