//! Resume equivalence and corruption safety for the snapshot subsystem.
//!
//! The tentpole property: interrupting a run with a snapshot and resuming
//! it produces **bit-identical** results — the same `RunMetrics` and the
//! same full-telemetry JSONL — as the uninterrupted run, for every mesh
//! backend and under fault injection. And the dual safety property:
//! corrupted snapshot bytes yield a typed [`SnapshotError`], never a
//! panic.

use std::sync::OnceLock;

use cocoa_core::metrics::RunMetrics;
use cocoa_core::runner::SimRun;
use cocoa_core::scenario::Scenario;
use cocoa_localization::kernel::{GridKernel, GridPipeline, GridPrecision};
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_sim::faults::FaultPlan;
use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};
use cocoa_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

const DURATION_S: u64 = 40;
const FAULT_PRESETS: [&str; 2] = ["sync-crash", "chaos"];

fn scenario(seed: u64, protocol: MulticastProtocol, preset: &str) -> Scenario {
    let duration = SimDuration::from_secs(DURATION_S);
    let num_robots = 6;
    let mut b = Scenario::builder();
    b.seed(seed)
        .duration(duration)
        .robots(num_robots)
        .equipped(3)
        .beacon_period(SimDuration::from_secs(10))
        .multicast(protocol)
        .faults(FaultPlan::preset(preset, duration, num_robots).expect("known preset"));
    b.build()
}

/// Runs `s` start to finish with full telemetry.
fn uninterrupted(s: &Scenario) -> (RunMetrics, String) {
    let (metrics, telemetry) = SimRun::new(s, Telemetry::new(TelemetryLevel::Full)).finish();
    (metrics, telemetry.to_jsonl(false))
}

/// Runs `s` to `at`, captures a snapshot, abandons that run, restores the
/// snapshot and runs the restored state to completion.
fn interrupted_at(s: &Scenario, at: SimTime) -> (RunMetrics, String) {
    let mut first = SimRun::new(s, Telemetry::new(TelemetryLevel::Full));
    first.run_until(at);
    let bytes = first.capture();
    drop(first);
    let resumed = SimRun::resume(&bytes).expect("own snapshot must restore");
    let (metrics, telemetry) = resumed.finish();
    (metrics, telemetry.to_jsonl(false))
}

#[test]
fn resume_is_bit_identical_across_backends_and_fault_presets() {
    let at = SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2);
    for protocol in MulticastProtocol::ALL {
        for preset in FAULT_PRESETS {
            let s = scenario(42, protocol, preset);
            let (m_cold, j_cold) = uninterrupted(&s);
            let (m_res, j_res) = interrupted_at(&s, at);
            assert_eq!(
                m_cold,
                m_res,
                "{}/{preset}: RunMetrics diverged after resume",
                protocol.as_str()
            );
            assert_eq!(
                j_cold,
                j_res,
                "{}/{preset}: telemetry JSONL diverged after resume",
                protocol.as_str()
            );
        }
    }
}

#[test]
fn resume_is_bit_identical_for_every_estimator_backend() {
    // The v4 estimator section is backend-tagged: each RF solver's state
    // (posterior cells / range set / EKF mean+covariance) must survive
    // capture and restore so the resumed run stays bit-identical, across
    // every mesh backend it might be combined with.
    use cocoa_localization::estimator::RfAlgorithm;
    let at = SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2);
    for algorithm in RfAlgorithm::ALL {
        for protocol in MulticastProtocol::ALL {
            let mut s = scenario(42, protocol, "sync-crash");
            s.rf_algorithm = algorithm;
            s.validate().expect("estimator scenario must validate");
            let (m_cold, j_cold) = uninterrupted(&s);
            let (m_res, j_res) = interrupted_at(&s, at);
            assert_eq!(
                m_cold,
                m_res,
                "{algorithm}/{}: RunMetrics diverged after resume",
                protocol.as_str()
            );
            assert_eq!(
                j_cold,
                j_res,
                "{algorithm}/{}: telemetry JSONL diverged after resume",
                protocol.as_str()
            );
        }
    }
}

#[test]
fn resume_is_bit_identical_for_every_grid_kernel_variant() {
    let at = SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2);
    let variants = [
        GridPipeline {
            kernel: GridKernel::Scalar,
            ..GridPipeline::default()
        },
        GridPipeline::default(), // simd / f64
        GridPipeline {
            precision: GridPrecision::F32,
            ..GridPipeline::default()
        },
        GridPipeline {
            fused: true,
            ..GridPipeline::default()
        },
        GridPipeline {
            adaptive: true,
            ..GridPipeline::default()
        },
    ];
    for pipeline in variants {
        let mut s = scenario(42, MulticastProtocol::Mrmm, "sync-crash");
        s.grid_pipeline = pipeline;
        s.validate().expect("variant scenario must validate");
        let (m_cold, j_cold) = uninterrupted(&s);
        let (m_res, j_res) = interrupted_at(&s, at);
        assert_eq!(
            m_cold,
            m_res,
            "{}: RunMetrics diverged after resume",
            pipeline.variant_name()
        );
        assert_eq!(
            j_cold,
            j_res,
            "{}: telemetry JSONL diverged after resume",
            pipeline.variant_name()
        );
    }
}

#[test]
fn resume_restores_histogram_state_bit_identically() {
    // The deterministic histograms (per-robot error, entropy, RSSI,
    // queue depth, …) are part of the snapshot codec: a resumed run's
    // final histograms must equal the uninterrupted run's, bucket for
    // bucket and aggregate for aggregate. Wall-clock histograms
    // (`span.duration_us`) are measurement, not state — they restart
    // empty on resume and are excluded from the comparison.
    let at = SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2);
    for protocol in MulticastProtocol::ALL {
        let s = scenario(42, protocol, "chaos");
        let (_, t_cold) = SimRun::new(&s, Telemetry::new(TelemetryLevel::Full)).finish();

        let mut first = SimRun::new(&s, Telemetry::new(TelemetryLevel::Full));
        first.run_until(at);
        let bytes = first.capture();
        drop(first);
        let resumed = SimRun::resume(&bytes).expect("own snapshot must restore");
        let (_, t_res) = resumed.finish();

        let cold: Vec<_> = t_cold.histograms().deterministic_sorted();
        let res: Vec<_> = t_res.histograms().deterministic_sorted();
        assert_eq!(
            cold,
            res,
            "{}: deterministic histograms diverged after resume",
            protocol.as_str()
        );
        assert!(
            cold.iter().any(|(_, h)| h.count() > 0),
            "the comparison must cover populated histograms"
        );
    }
}

#[test]
fn marked_resume_counts_and_announces_the_restore() {
    let s = scenario(42, MulticastProtocol::Flood, "sync-crash");
    let mut first = SimRun::new(&s, Telemetry::new(TelemetryLevel::Full));
    first.run_until(SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2));
    let bytes = first.capture();
    let (_, capturing) = first.finish();
    assert_eq!(capturing.counters().get("snapshot.captures"), Some(1));
    assert_eq!(
        capturing.counters().get("snapshot.bytes"),
        Some(bytes.len() as u64)
    );

    let resumed = SimRun::resume_marked(&bytes).expect("own snapshot must restore");
    let (_, telemetry) = resumed.finish();
    assert_eq!(telemetry.counters().get("snapshot.restores"), Some(1));
    let jsonl = telemetry.to_jsonl(false);
    assert!(
        jsonl.contains("\"kind\":\"snapshot_restored\""),
        "marked resume must announce itself in the timeline"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// snapshot → restore → run is bit-identical for random seeds,
    /// snapshot instants, mesh backends and fault presets.
    #[test]
    fn snapshot_restore_run_is_bit_identical(
        seed in 1u64..10_000,
        backend in 0usize..3,
        preset in 0usize..2,
        quarter in 1u64..4,
    ) {
        let s = scenario(seed, MulticastProtocol::ALL[backend], FAULT_PRESETS[preset]);
        let at = SimTime::ZERO + SimDuration::from_secs(DURATION_S * quarter / 4);
        let (m_cold, j_cold) = uninterrupted(&s);
        let (m_res, j_res) = interrupted_at(&s, at);
        prop_assert_eq!(m_cold, m_res);
        prop_assert_eq!(j_cold, j_res);
    }
}

/// A valid snapshot to corrupt, captured once for the whole test binary.
fn pristine() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let s = scenario(7, MulticastProtocol::Odmrp, "chaos");
        let mut run = SimRun::new(&s, Telemetry::off());
        run.run_until(SimTime::ZERO + SimDuration::from_secs(DURATION_S / 2));
        run.capture()
    })
}

#[test]
fn truncated_snapshots_yield_typed_errors() {
    let bytes = pristine();
    for cut in [0, 1, 4, 7, bytes.len() / 2, bytes.len() - 1] {
        let err = SimRun::resume(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("truncation to {cut} bytes must not restore"));
        // Typed and displayable, never a panic.
        assert!(!err.to_string().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A bit flip anywhere in the file never panics the decoder; flips
    /// inside section payloads (past the tiny header/meta region) are
    /// always caught by the per-section CRC or a structural check.
    #[test]
    fn bit_flips_are_rejected_not_panicked_on(
        offset_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = pristine().clone();
        let offset = (offset_seed as usize) % bytes.len();
        bytes[offset] ^= 1 << bit;
        let outcome = SimRun::resume(&bytes);
        // Flips inside the CRC-covered payload area must be detected.
        // (The header + metadata line occupy well under 1 KiB; only those
        // cosmetic bytes may corrupt silently.)
        if offset >= 1024 {
            prop_assert!(outcome.is_err(), "payload flip at {offset} went undetected");
        } else if let Err(e) = outcome {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    /// Random truncation points never restore and never panic.
    #[test]
    fn random_truncations_are_rejected(cut_seed in any::<u64>()) {
        let bytes = pristine();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(SimRun::resume(&bytes[..cut]).is_err());
    }
}
