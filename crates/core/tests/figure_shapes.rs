//! Regression tests for the *shapes* of the paper's figures, at a small
//! scale: orderings, monotonicities and crossovers that must hold for the
//! reproduction to be faithful, regardless of absolute numbers.

use cocoa_core::experiment::{
    ablation_packet_loss, ablation_rf_algorithm, fig10_equipped, fig1_calibration, fig6_rf_only,
    fig7_comparison, fig9_period, ExperimentScale,
};
use cocoa_sim::time::SimDuration;

fn scale() -> ExperimentScale {
    ExperimentScale {
        seed: 1234,
        duration: SimDuration::from_secs(400),
        num_robots: 24,
    }
}

#[test]
fn fig1_shape_gaussian_near_empirical_far() {
    let f = fig1_calibration(9);
    assert!(f.near.gaussian);
    assert!(!f.far.gaussian);
    // The far PDF peaks at a much larger distance than the near PDF.
    let peak = |c: &cocoa_core::experiment::PdfCurve| {
        c.points
            .iter()
            .copied()
            .fold((0.0, f64::MIN), |b, p| if p.1 > b.1 { p } else { b })
            .0
    };
    assert!(peak(&f.far) > 3.0 * peak(&f.near));
}

#[test]
fn fig6_shape_error_grows_with_period() {
    let f = fig6_rf_only(scale(), &[20, 100]);
    let steady = |s: &cocoa_core::experiment::Series| s.mean_after(110.0);
    assert!(
        steady(&f.series[0]) < steady(&f.series[1]),
        "T = 20 ({:.1} m) must beat T = 100 ({:.1} m) in RF-only mode",
        steady(&f.series[0]),
        steady(&f.series[1])
    );
}

#[test]
fn fig7_shape_cocoa_wins_at_both_speeds() {
    let f = fig7_comparison(scale());
    for (v, series) in &f.by_speed {
        let find = |label: &str| {
            series
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap_or_else(|| panic!("{label} series missing"))
                .mean_after(150.0)
        };
        let cocoa = find("CoCoA");
        let rf = find("RF");
        assert!(
            cocoa < rf,
            "at v_max = {v}: CoCoA {cocoa:.1} m must beat RF-only {rf:.1} m"
        );
    }
}

#[test]
fn fig9_shape_energy_tradeoff() {
    let f = fig9_period(scale(), &[20, 100]);
    // Larger T: cheaper coordinated energy, bigger savings factor, worse
    // (or equal) accuracy.
    let (a, b) = (&f.points[0], &f.points[1]);
    assert!(b.energy_coordinated_j < a.energy_coordinated_j);
    assert!(b.savings_factor() > a.savings_factor());
    assert!(
        b.steady_error_m >= a.steady_error_m * 0.8,
        "accuracy should not improve much with larger T"
    );
    // Uncoordinated energy barely depends on T (radios always idle).
    let drift = (a.energy_uncoordinated_j - b.energy_uncoordinated_j).abs();
    assert!(drift < 0.05 * a.energy_uncoordinated_j);
}

#[test]
fn fig10_shape_more_equipped_is_better() {
    let f = fig10_equipped(scale(), &[3, 12]);
    assert!(
        f.points[1].mean_error_m < f.points[0].mean_error_m,
        "12 equipped ({:.1} m) must beat 3 equipped ({:.1} m)",
        f.points[1].mean_error_m,
        f.points[0].mean_error_m
    );
}

#[test]
fn ablation_shapes_hold() {
    // Bayes beats (or matches) the multilateration baseline.
    let algo = ablation_rf_algorithm(scale());
    assert!(
        algo[0].mean_error_m <= algo[1].mean_error_m * 1.1,
        "bayes {:.1} m vs multilateration {:.1} m",
        algo[0].mean_error_m,
        algo[1].mean_error_m
    );
    // Packet loss degrades accuracy monotonically-ish and never adds fixes.
    let loss = ablation_packet_loss(scale());
    assert!(loss.last().unwrap().mean_error_m >= loss.first().unwrap().mean_error_m * 0.95);
    assert!(loss.last().unwrap().fixes <= loss.first().unwrap().fixes);
}
