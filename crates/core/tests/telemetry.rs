//! Telemetry acceptance tests: observation must not perturb the
//! simulation, traces must be reproducible, and the trace must carry
//! enough information to rebuild the headline metrics exactly.

use cocoa_core::prelude::*;
use cocoa_core::tracefile::TraceFile;
use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};
use cocoa_sim::time::SimDuration;

fn scenario(seed: u64) -> Scenario {
    Scenario::builder()
        .seed(seed)
        .robots(10)
        .equipped(5)
        .duration(SimDuration::from_secs(120))
        .beacon_period(SimDuration::from_secs(30))
        .grid_resolution(6.0)
        .build()
}

fn faulty_scenario(seed: u64) -> Scenario {
    let mut s = scenario(seed);
    s.faults = FaultPlan::preset("chaos", s.duration, s.num_robots).expect("preset exists");
    s.validate().expect("valid scenario");
    s
}

#[test]
fn identical_seeds_give_byte_identical_traces() {
    let s = scenario(42);
    let (_, t1) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
    let (_, t2) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
    // Spans are wall-clock and excluded; everything else must match byte
    // for byte.
    assert_eq!(t1.to_jsonl(false), t2.to_jsonl(false));
}

#[test]
fn different_seeds_give_different_traces() {
    let (_, t1) = run_with_telemetry(&scenario(1), Telemetry::new(TelemetryLevel::Full));
    let (_, t2) = run_with_telemetry(&scenario(2), Telemetry::new(TelemetryLevel::Full));
    assert_ne!(t1.to_jsonl(false), t2.to_jsonl(false));
}

#[test]
fn histograms_have_zero_observer_effect() {
    // Histogram recording must be invisible to the simulation AND to the
    // deterministic trace: with histograms on vs off, RunMetrics and the
    // wall-clock-free JSONL are byte-identical across every mesh backend
    // and under fault injection. Hist lines ride only the `to_jsonl(true)`
    // trailer, next to the span report.
    use cocoa_multicast::protocol::MulticastProtocol;
    let mut variants = Vec::new();
    for protocol in [
        MulticastProtocol::Flood,
        MulticastProtocol::Odmrp,
        MulticastProtocol::Mrmm,
    ] {
        let mut s = scenario(11);
        s.multicast = protocol;
        s.validate().expect("valid scenario");
        variants.push(s);
    }
    variants.push(faulty_scenario(11));
    for s in variants {
        let mut dark = Telemetry::new(TelemetryLevel::Full);
        dark.set_histograms(false);
        let (m_off, t_off) = run_with_telemetry(&s, dark);
        let (m_on, t_on) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
        assert_eq!(
            m_on, m_off,
            "histograms changed RunMetrics ({:?})",
            s.multicast
        );
        assert_eq!(
            t_on.to_jsonl(false),
            t_off.to_jsonl(false),
            "histograms changed the deterministic trace ({:?})",
            s.multicast
        );
        // And the instrumented side actually measured something.
        let populated = t_on
            .histograms()
            .sorted()
            .iter()
            .any(|(_, h, _)| h.count() > 0);
        assert!(populated, "instrumented run recorded no histogram samples");
        assert!(
            t_off
                .histograms()
                .sorted()
                .iter()
                .all(|(_, h, _)| h.count() == 0),
            "set_histograms(false) must record nothing"
        );
    }
}

#[test]
fn exposition_export_round_trips_from_a_real_run() {
    use cocoa_sim::telemetry::export::{parse_exposition, MetricsSnapshot};
    let (_, t) = run_with_telemetry(&scenario(42), Telemetry::new(TelemetryLevel::Full));
    let text = MetricsSnapshot::from_telemetry(&t).to_exposition();
    let families = parse_exposition(&text).expect("exported text must satisfy our own lint");
    // The run instruments at least the six core distributions plus span
    // durations; each must survive the round trip with samples intact.
    let hist_families: Vec<_> = families.iter().filter(|f| !f.buckets.is_empty()).collect();
    assert!(
        hist_families.len() >= 6,
        "expected >= 6 histogram families, got {}",
        hist_families.len()
    );
    assert!(
        families
            .iter()
            .any(|f| f.name.starts_with("cocoa_traffic_")),
        "counters must be exported alongside histograms"
    );
}

#[test]
fn folded_stacks_conserve_span_profiler_totals_exactly() {
    use cocoa_sim::telemetry::export::fold_spans;
    let (_, t) = run_with_telemetry(&scenario(42), Telemetry::new(TelemetryLevel::Full));
    let report = t.spans().report();
    assert!(!report.is_empty(), "a full-telemetry run must record spans");
    let totals: Vec<(&str, u128)> = report.iter().map(|s| (s.name, s.total_ns)).collect();
    let folded = fold_spans(&totals);
    // Per-span conservation: a span's profiler total equals its folded
    // self time plus the folded lines of all stacks nesting under it.
    for stat in &report {
        let attributed: u128 = folded
            .iter()
            .filter(|(stack, _)| {
                stack.ends_with(&format!(";{}", stat.name))
                    || stack == stat.name
                    || stack.contains(&format!(";{};", stat.name))
                    || stack.starts_with(&format!("{};", stat.name))
            })
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            attributed, stat.total_ns,
            "span {} lost time in the fold",
            stat.name
        );
    }
    // Global conservation: the flamegraph's grand total is the root's
    // profiler total (everything nests under run.total).
    let grand: u128 = folded.iter().map(|(_, v)| *v).sum();
    let root = report
        .iter()
        .find(|s| s.name == "run.total")
        .expect("run.total span");
    assert_eq!(grand, root.total_ns);
}

#[test]
fn observation_does_not_perturb_the_run() {
    // The whole point of the read-only telemetry design: metrics from an
    // instrumented run equal metrics from a dark run, bit for bit.
    for s in [scenario(7), faulty_scenario(7)] {
        let dark = run(&s);
        for level in [
            TelemetryLevel::Counters,
            TelemetryLevel::Timeline,
            TelemetryLevel::Full,
        ] {
            let (observed, _) = run_with_telemetry(&s, Telemetry::new(level));
            assert_eq!(observed, dark, "telemetry level {level} changed the run");
        }
    }
}

#[test]
fn trace_reconstructs_error_and_energy_curves_exactly() {
    let s = scenario(9);
    let (metrics, t) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Timeline));
    let trace = TraceFile::parse(&t.to_jsonl(false)).expect("valid trace");
    let curve = trace.team_error_curve();
    assert_eq!(curve.len(), metrics.error_series.len());
    for (rebuilt, original) in curve.iter().zip(&metrics.error_series) {
        assert_eq!(rebuilt.0, original.t_s, "sample times diverge");
        assert_eq!(
            rebuilt.1, original.mean_error_m,
            "mean error diverges at t = {} s",
            original.t_s
        );
        assert_eq!(rebuilt.2 as usize, original.robots);
    }
    // Energy: the final sample's cumulative ledger must match the final
    // report's total for robots that were sampled at the same instant.
    let energy = trace.team_energy_curve();
    assert_eq!(energy.len(), metrics.error_series.len());
    let (_, last_j) = *energy.last().expect("samples exist");
    let total_j = metrics.energy.total_j();
    assert!(
        (last_j - total_j).abs() < 1e-6,
        "trace energy {last_j} J vs metrics {total_j} J"
    );
}

#[test]
fn full_trace_round_trips_through_the_parser() {
    let s = faulty_scenario(11);
    let (_, t) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
    let trace = TraceFile::parse(&t.to_jsonl(true)).expect("valid trace");
    assert_eq!(trace.meta.events_emitted, t.events_emitted());
    assert_eq!(trace.meta.dropped, 0);
    assert_eq!(trace.events.len() as u64, t.events_emitted());
    // The chaos preset must leave visible fingerprints in the stream.
    let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind.as_str()).collect();
    for expected in [
        "window_start",
        "beacon_tx",
        "beacon_rx",
        "fix",
        "fault",
        "team_sample",
    ] {
        assert!(kinds.contains(&expected), "no {expected} events in trace");
    }
    // Counters must be exported and include every subsystem prefix.
    for prefix in ["traffic.", "mesh.", "engine.", "radio.", "telemetry."] {
        assert!(
            trace.counters.iter().any(|(n, _)| n.starts_with(prefix)),
            "no {prefix} counters"
        );
    }
}

#[test]
fn span_report_attributes_the_run() {
    let s = scenario(5);
    let (_, t) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
    let spans = t.spans();
    let coverage = spans
        .coverage("run.total")
        .expect("run.total span recorded");
    assert!(
        coverage >= 0.95,
        "run.* phases only cover {:.1}% of run.total",
        coverage * 100.0
    );
}

#[test]
fn bounded_telemetry_counts_what_it_drops() {
    let s = scenario(3);
    let (_, t) = run_with_telemetry(&s, Telemetry::with_capacity(TelemetryLevel::Full, 64));
    assert!(t.events_emitted() > 64, "run emits more than the bound");
    assert_eq!(t.events().count(), 64, "ring buffer holds the bound");
    assert_eq!(
        t.dropped_events(),
        t.events_emitted() - 64,
        "every evicted event is counted"
    );
    // The drop count survives into the exported trace and its counters.
    let trace = TraceFile::parse(&t.to_jsonl(false)).expect("valid trace");
    assert_eq!(trace.meta.dropped, t.dropped_events());
    let dropped = trace
        .counters
        .iter()
        .find(|(n, _)| n == "telemetry.events_dropped")
        .map(|(_, v)| *v);
    assert_eq!(dropped, Some(t.dropped_events()));
}

// ---------------------------------------------------------------------------
// Golden-seed regression: the `world/` refactor must leave the pinned-seed
// ODMRP path bit-identical — both the `RunMetrics` value and the full-level
// JSONL trace. The golden files were generated at the pre-refactor HEAD
// (commit 32f1d9a) and are compared byte for byte. Regenerate deliberately
// with:
//
// ```sh
// COCOA_REGEN_GOLDEN=1 cargo test -p cocoa-core --test telemetry golden
// ```
//
// Counter lines with a `mesh.<backend>.` prefix are stripped before the
// trace comparison: the per-backend counter export is additive telemetry
// introduced by the refactor itself and carries no simulation state.

use cocoa_multicast::odmrp::{MeshMode, OdmrpConfig};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The pinned scenario: the standard telemetry test scenario forced into
/// plain-ODMRP mesh mode (reachable both before and after the refactor via
/// the mesh parameter block).
fn golden_odmrp_scenario() -> Scenario {
    Scenario::builder()
        .seed(42)
        .robots(10)
        .equipped(5)
        .duration(SimDuration::from_secs(120))
        .beacon_period(SimDuration::from_secs(30))
        .grid_resolution(6.0)
        .mesh(OdmrpConfig {
            mode: MeshMode::Odmrp,
            ..OdmrpConfig::default()
        })
        .build()
}

/// Drops `mesh.<backend>.*` / `estimator.<backend>.*` counter lines
/// (additive, refactor-era) so the remaining trace must match the
/// pre-refactor bytes exactly.
fn strip_backend_counters(trace: &str) -> String {
    let mut out = String::with_capacity(trace.len());
    for line in trace.lines() {
        let is_backend_counter = line.starts_with("{\"kind\":\"counter\"")
            && [
                "mesh.flood.",
                "mesh.odmrp.",
                "mesh.mrmm.",
                "grid.",
                "estimator.",
            ]
            .iter()
            .any(|p| line.contains(&format!("\"name\":\"{p}")));
        if !is_backend_counter {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Byte comparison with a readable failure: reports the first divergent
/// line instead of dumping both multi-hundred-KB documents.
fn assert_same_text(actual: &str, golden: &str, what: &str) {
    if actual == golden {
        return;
    }
    let mut a = actual.lines();
    let mut g = golden.lines();
    let mut line_no = 1usize;
    loop {
        match (a.next(), g.next()) {
            (Some(x), Some(y)) if x == y => line_no += 1,
            (Some(x), Some(y)) => panic!(
                "{what} diverges from the pre-refactor golden at line {line_no}:\n  golden: {y}\n  actual: {x}"
            ),
            (Some(x), None) => panic!("{what} has extra content at line {line_no}: {x}"),
            (None, Some(y)) => panic!("{what} is truncated at line {line_no}; golden continues: {y}"),
            (None, None) => panic!("{what} differs from the golden in line endings only"),
        }
    }
}

/// Compares `text` against the pinned golden file, or rewrites the pin when
/// `COCOA_REGEN_GOLDEN` is set.
fn check_golden(file: &str, text: &str, what: &str) {
    let path = golden_dir().join(file);
    if std::env::var_os("COCOA_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); regenerate with COCOA_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_same_text(text, &golden, what);
}

#[test]
fn golden_odmrp_metrics_and_trace_survive_the_world_refactor() {
    let s = golden_odmrp_scenario();
    let (metrics, t) = run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
    check_golden(
        "odmrp_seed42_metrics.txt",
        &format!("{metrics:#?}\n"),
        "ODMRP RunMetrics",
    );
    check_golden(
        "odmrp_seed42_trace.jsonl",
        &strip_backend_counters(&t.to_jsonl(false)),
        "ODMRP full trace",
    );
}

#[test]
fn golden_default_metrics_survive_the_world_refactor() {
    // The default mesh configuration (MRMM mode). Its trace may gain
    // refactor-era `mesh_prune` events, but the metrics must stay
    // bit-identical because prune bookkeeping consumes no randomness.
    let s = scenario(42);
    let metrics = run(&s);
    check_golden(
        "default_seed42_metrics.txt",
        &format!("{metrics:#?}\n"),
        "default-path RunMetrics",
    );
}

#[test]
fn legacy_trace_rides_the_bus_unchanged() {
    // `run_traced` must keep producing the same string records whether or
    // not it is re-routed through the telemetry bus internally.
    use cocoa_sim::trace::{Trace, TraceLevel};
    let s = faulty_scenario(13);
    let trace_a = run_traced(&s, Trace::new(TraceLevel::Debug)).1;
    let trace_b = run_traced(&s, Trace::new(TraceLevel::Debug)).1;
    let lines = |tr: &Trace| -> Vec<String> {
        tr.records()
            .map(|r| format!("{} {} {}", r.time, r.subsystem, r.message))
            .collect()
    };
    assert!(trace_a.emitted() > 0, "debug trace captures records");
    assert_eq!(lines(&trace_a), lines(&trace_b));
}
