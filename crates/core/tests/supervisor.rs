//! End-to-end properties of the supervision layer.
//!
//! The pinned tentpole property: a sweep that is interrupted (completed
//! points recorded, one point mid-flight, one never started) and then
//! auto-resumed from its manifest produces `RunMetrics` **byte-identical**
//! — through the metrics codec — to an uninterrupted sweep. Alongside it:
//! panic isolation (one poisoned point cannot sink the sweep), retry
//! determinism across all mesh backends, deadline classification, and
//! manifest codec round-trip/corruption properties.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cocoa_core::executor::manifest::{encode_metrics, PointState, SweepManifest};
use cocoa_core::executor::supervisor::SupervisorConfig;
use cocoa_core::executor::sweep::{run_supervised, SweepConfig};
use cocoa_core::metrics::RunMetrics;
use cocoa_core::runner::{run, SimRun};
use cocoa_core::scenario::Scenario;
use cocoa_core::world::checkpoint::scenario_fingerprint;
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_sim::telemetry::Telemetry;
use cocoa_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn scenario(seed: u64, period_s: u64, protocol: MulticastProtocol) -> Scenario {
    let mut b = Scenario::builder();
    b.seed(seed)
        .duration(SimDuration::from_secs(60))
        .robots(8)
        .equipped(4)
        .beacon_period(SimDuration::from_secs(period_s))
        .multicast(protocol);
    b.build()
}

fn temp_manifest(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cocoa-supervisor-{tag}-{}.csnp",
        std::process::id()
    ))
}

fn metrics_of(report: &cocoa_core::prelude::SweepReport<RunMetrics>, index: usize) -> Vec<u8> {
    encode_metrics(
        report.outcomes[index]
            .result
            .as_ref()
            .expect("point should have completed"),
    )
}

/// One always-panicking point is classified and contained; every other
/// point completes with metrics byte-identical to an unsupervised run.
#[test]
fn always_panicking_point_completes_the_rest() {
    let scenarios = vec![
        scenario(1, 10, MulticastProtocol::Mrmm),
        scenario(2, 15, MulticastProtocol::Mrmm),
        scenario(3, 20, MulticastProtocol::Mrmm),
    ];
    let golden: Vec<Vec<u8>> = scenarios.iter().map(|s| encode_metrics(&run(s))).collect();
    let cfg = SweepConfig {
        supervisor: SupervisorConfig {
            max_attempts: 2,
            ..SupervisorConfig::default()
        },
        attempt_hook: Some(Arc::new(|index| {
            if index == 1 {
                panic!("poisoned point");
            }
        })),
        ..SweepConfig::default()
    };
    let report = run_supervised(scenarios, &cfg).expect("no manifest involved");
    assert_eq!(report.completed(), 2);
    assert_eq!(report.failed(), 1);
    let failures: Vec<_> = report.failures().collect();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, 1);
    assert_eq!(failures[0].1.kind(), "panic");
    assert!(failures[0].1.detail().contains("poisoned point"));
    assert_eq!(report.outcomes[1].attempts, 2);
    assert_eq!(report.counters.panics_caught, 2);
    assert_eq!(metrics_of(&report, 0), golden[0]);
    assert_eq!(metrics_of(&report, 2), golden[2]);
}

/// A job that panics on its first N−1 attempts and then succeeds yields
/// metrics byte-identical to a first-try success — under every mesh
/// backend (retries must not perturb the deterministic RNG streams).
#[test]
fn retry_recovery_is_byte_identical_across_backends() {
    for protocol in MulticastProtocol::ALL {
        let s = scenario(7, 10, protocol);
        let golden = encode_metrics(&run(&s));
        let panics_left = Arc::new(AtomicU32::new(2));
        let hook_left = Arc::clone(&panics_left);
        let cfg = SweepConfig {
            supervisor: SupervisorConfig {
                max_attempts: 3,
                ..SupervisorConfig::default()
            },
            attempt_hook: Some(Arc::new(move |_| {
                if hook_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    panic!("flaky attempt");
                }
            })),
            ..SweepConfig::default()
        };
        let report = run_supervised(vec![s], &cfg).expect("no manifest involved");
        assert!(
            report.is_clean(),
            "{protocol:?}: flaky point should recover"
        );
        assert_eq!(report.outcomes[0].attempts, 3, "{protocol:?}");
        assert_eq!(report.counters.retries, 2, "{protocol:?}");
        assert_eq!(metrics_of(&report, 0), golden, "{protocol:?}");
    }
}

/// The pinned resume property: a manifest recording one completed point,
/// one mid-flight snapshot and one pending point resumes to metrics
/// byte-identical to uninterrupted runs, skipping the finished point.
#[test]
fn interrupted_sweep_resumes_byte_identical() {
    let scenarios = vec![
        scenario(11, 10, MulticastProtocol::Mrmm),
        scenario(12, 15, MulticastProtocol::Mrmm),
        scenario(13, 20, MulticastProtocol::Mrmm),
    ];
    let golden: Vec<RunMetrics> = scenarios.iter().map(run).collect();

    // Hand-craft the state a killed sweep would leave behind.
    let fingerprints: Vec<u64> = scenarios.iter().map(scenario_fingerprint).collect();
    let mut manifest = SweepManifest::new(fingerprints);
    manifest.states[0] = PointState::Completed(Box::new(golden[0].clone()));
    let mut mid = SimRun::new(&scenarios[1], Telemetry::off());
    mid.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    manifest.states[1] = PointState::InFlight(mid.capture());
    drop(mid);
    let path = temp_manifest("resume");
    manifest.store(&path).expect("manifest store");

    let cfg = SweepConfig {
        manifest_path: Some(path.clone()),
        ..SweepConfig::default()
    };
    let report = run_supervised(scenarios, &cfg);
    std::fs::remove_file(&path).ok();
    let report = report.expect("manifest should load");
    assert!(report.is_clean());
    assert_eq!(report.counters.points_skipped_on_resume, 1);
    for (i, golden) in golden.iter().enumerate() {
        assert_eq!(metrics_of(&report, i), encode_metrics(golden), "point {i}");
    }
}

/// Periodic in-flight checkpointing must not perturb the run: a sweep
/// that snapshots every 10 simulated seconds produces the same bytes as
/// a straight run.
#[test]
fn inflight_checkpointing_does_not_perturb_metrics() {
    let scenarios = vec![scenario(21, 10, MulticastProtocol::Mrmm)];
    let golden = encode_metrics(&run(&scenarios[0]));
    let path = temp_manifest("inflight");
    std::fs::remove_file(&path).ok();
    let cfg = SweepConfig {
        manifest_path: Some(path.clone()),
        inflight_interval: Some(SimDuration::from_secs(10)),
        ..SweepConfig::default()
    };
    let report = run_supervised(scenarios, &cfg);
    std::fs::remove_file(&path).ok();
    let report = report.expect("fresh manifest");
    assert!(report.counters.checkpoints_written > 0);
    assert_eq!(metrics_of(&report, 0), golden);
}

/// A hung point is classified as a deadline failure after the configured
/// number of attempts.
#[test]
fn deadline_classifies_hung_points() {
    let scenarios = vec![scenario(31, 10, MulticastProtocol::Mrmm)];
    let cfg = SweepConfig {
        supervisor: SupervisorConfig {
            max_attempts: 2,
            deadline: Some(Duration::from_millis(100)),
            ..SupervisorConfig::default()
        },
        attempt_hook: Some(Arc::new(|_| std::thread::sleep(Duration::from_secs(5)))),
        ..SweepConfig::default()
    };
    let report = run_supervised(scenarios, &cfg).expect("no manifest involved");
    assert_eq!(report.failed(), 1);
    let (_, failure) = report.failures().next().expect("one failure");
    assert_eq!(failure.kind(), "deadline");
    assert_eq!(report.counters.timeouts, 2);
}

/// Real metrics for the proptest cases, computed once.
fn tiny_metrics() -> &'static RunMetrics {
    static METRICS: OnceLock<RunMetrics> = OnceLock::new();
    METRICS.get_or_init(|| run(&scenario(99, 10, MulticastProtocol::Mrmm)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary manifests (mixed pending / in-flight / completed states)
    /// survive an encode → decode → encode cycle byte-exactly.
    #[test]
    fn manifest_round_trips(
        fingerprints in proptest::collection::vec(any::<u64>(), 1..6),
        tags in proptest::collection::vec(0u8..3, 1..6),
        payload in proptest::collection::vec(any::<u8>(), 32..128),
    ) {
        let n = fingerprints.len().min(tags.len());
        let mut manifest = SweepManifest::new(fingerprints[..n].to_vec());
        for (i, tag) in tags[..n].iter().enumerate() {
            manifest.states[i] = match tag {
                0 => PointState::Pending,
                1 => PointState::InFlight(payload.clone()),
                _ => PointState::Completed(Box::new(tiny_metrics().clone())),
            };
        }
        let bytes = manifest.encode();
        let decoded = SweepManifest::decode(&bytes).expect("round trip");
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Any bit flip in the CRC-guarded tail (section payload or checksum)
    /// is rejected with a typed error, never a panic or silent corruption.
    #[test]
    fn manifest_tail_bit_flips_are_rejected(
        fingerprints in proptest::collection::vec(any::<u64>(), 1..4),
        payload in proptest::collection::vec(any::<u8>(), 64..128),
        back in 1usize..48,
        bit in 0u8..8,
    ) {
        let mut manifest = SweepManifest::new(fingerprints);
        manifest.states[0] = PointState::InFlight(payload);
        let mut bytes = manifest.encode();
        let pos = bytes.len() - back;
        bytes[pos] ^= 1 << bit;
        prop_assert!(SweepManifest::decode(&bytes).is_err());
    }
}
