//! Fuzzing the SYNC body codec: arbitrary, truncated, bit-flipped and
//! over-length inputs must never panic — wrong-length bodies decode to
//! `None`, exact-length bodies to `Some`.

use bytes::Bytes;
use cocoa_core::sync::SyncMessage;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup: `decode` is total, and only exact-size bodies
    /// ever parse.
    #[test]
    fn random_bodies_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..128)) {
        let len = raw.len();
        let decoded = SyncMessage::decode(Bytes::from(raw));
        prop_assert_eq!(decoded.is_some(), len == SyncMessage::WIRE_SIZE);
    }

    /// Bit flips keep the body well-sized, so it still decodes — to some
    /// (possibly wrong) message, never a panic.
    #[test]
    fn bit_flipped_bodies_still_decode(
        period in any::<u64>(),
        window in any::<u64>(),
        index in any::<u64>(),
        start in any::<u64>(),
        pos in 0usize..SyncMessage::WIRE_SIZE,
        bit in 0u8..8,
    ) {
        let msg = SyncMessage {
            period_us: period,
            window_us: window,
            window_index: index,
            window_start_us: start,
        };
        let mut raw = msg.encode().to_vec();
        raw[pos] ^= 1 << bit;
        prop_assert!(SyncMessage::decode(Bytes::from(raw)).is_some());
    }

    /// Truncated or padded bodies are rejected, never panicked on.
    #[test]
    fn wrong_length_bodies_are_rejected(
        period in any::<u64>(),
        delta in 1usize..32,
        grow in any::<bool>(),
    ) {
        let msg = SyncMessage {
            period_us: period,
            window_us: 3_000_000,
            window_index: 1,
            window_start_us: 0,
        };
        let mut raw = msg.encode().to_vec();
        if grow {
            raw.extend(std::iter::repeat_n(0xAA, delta));
        } else {
            raw.truncate(SyncMessage::WIRE_SIZE - delta.min(SyncMessage::WIRE_SIZE));
        }
        prop_assert!(SyncMessage::decode(Bytes::from(raw)).is_none());
    }

    /// Round-trip: every message survives encode → decode.
    #[test]
    fn roundtrip(
        period in any::<u64>(),
        window in any::<u64>(),
        index in any::<u64>(),
        start in any::<u64>(),
    ) {
        let msg = SyncMessage {
            period_us: period,
            window_us: window,
            window_index: index,
            window_start_us: start,
        };
        prop_assert_eq!(SyncMessage::decode(msg.encode()), Some(msg));
    }
}
