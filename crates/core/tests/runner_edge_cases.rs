//! Edge-case behaviour of the simulation runner: degenerate teams, all
//! equipped, no beacon sources, window geometry extremes.

use cocoa_core::prelude::*;
use cocoa_sim::time::{SimDuration, SimTime};

fn tiny() -> ScenarioBuilder {
    let mut b = Scenario::builder();
    b.robots(6)
        .equipped(3)
        .duration(SimDuration::from_secs(120))
        .beacon_period(SimDuration::from_secs(30))
        .grid_resolution(8.0);
    b
}

#[test]
fn single_robot_odometry_only() {
    let s = tiny()
        .robots(1)
        .equipped(0)
        .mode(EstimatorMode::OdometryOnly)
        .build();
    let m = run(&s);
    assert_eq!(m.final_states.len(), 1);
    assert!(m.error_series.iter().all(|p| p.robots == 1));
}

#[test]
fn all_robots_equipped_reports_nobody() {
    // Everyone has a device: nobody reports error, the series is empty,
    // but beacons still flow and energy is still accounted.
    let s = tiny().robots(6).equipped(6).build();
    let m = run(&s);
    assert!(m.error_series.is_empty(), "no unequipped robots to report");
    assert!(m.traffic.beacons_sent > 0);
    assert!(m.energy.total_j() > 0.0);
    assert_eq!(m.traffic.fixes, 0);
}

#[test]
fn relay_mode_with_zero_equipped_never_bootstraps() {
    // Relay beaconing needs a first fix to exist somewhere; with zero
    // equipped robots nobody ever fixes, so no beacons ever flow. The
    // scenario is legal (relaying counts as a potential source) but inert
    // — pinned here as documented behaviour.
    let s = tiny().equipped(0).relay_beaconing(true).build();
    let m = run(&s);
    assert_eq!(m.traffic.beacons_sent, 0);
    assert_eq!(m.traffic.fixes, 0);
}

#[test]
fn one_equipped_robot_is_not_enough_for_fixes() {
    // A single beacon source sends k = 3 beacons per window, which meets
    // the >= 3 packet rule, but all from (nearly) one position: the
    // posterior concentrates on a ring. Fixes happen; accuracy is poor
    // but bounded by the area.
    let s = tiny().equipped(1).build();
    let m = run(&s);
    for r in &m.final_states {
        assert!(s.area.contains(r.estimate));
    }
}

#[test]
fn window_nearly_filling_the_period() {
    // t = 25 s of a 30 s period: radios barely sleep; still correct.
    let s = tiny().transmit_window(SimDuration::from_secs(25)).build();
    let m = run(&s);
    assert!(m.traffic.fixes > 0);
    let team = m.energy.team();
    assert!(team.idle_uj > team.sleep_uj, "mostly awake by construction");
}

#[test]
fn duration_shorter_than_one_period() {
    // The run ends before the second window: exactly one window happens.
    let s = tiny()
        .duration(SimDuration::from_secs(20))
        .beacon_period(SimDuration::from_secs(15))
        .build();
    let m = run(&s);
    assert!(m.traffic.beacons_sent > 0, "the first window still runs");
}

#[test]
fn snapshot_at_time_zero_and_horizon() {
    let s = tiny()
        .snapshots([SimTime::ZERO, SimTime::from_secs(120)])
        .build();
    let m = run(&s);
    assert_eq!(m.snapshots.len(), 2);
    // t = 0: nobody has a fix; everyone estimates the area centre.
    assert!(m.snapshots[0].mean() > 0.0);
    assert_eq!(m.position_snapshots.len(), 2);
}

#[test]
fn zero_clock_skew_is_perfectly_aligned() {
    let s = tiny().clock_skew_ppm(0.0).build();
    let m = run(&s);
    assert_eq!(m.traffic.syncs_missed, 0, "nothing to miss at zero skew");
}

#[test]
fn metrics_interval_coarser_than_tick() {
    let b = tiny();
    b.build(); // defaults fine; change interval via scenario clone
    let mut s = b.build();
    s.metrics_interval = SimDuration::from_secs(10);
    let m = run(&s);
    assert_eq!(m.error_series.len(), 12, "one sample per 10 s over 120 s");
}

#[test]
fn multilateration_algorithm_runs_end_to_end() {
    use cocoa_localization::estimator::RfAlgorithm;
    let bayes = run(&tiny().build());
    let lateration = run(&tiny().rf_algorithm(RfAlgorithm::Multilateration).build());
    assert!(lateration.traffic.fixes > 0, "baseline must also fix");
    // Different algorithms, same beacons: different series.
    assert_ne!(bayes.error_series, lateration.error_series);
}
