//! Coarse-grained time synchronization (paper Section 2.3, Fig. 3).
//!
//! Every robot runs a cheap crystal with some skew. The designated Sync
//! robot is the timebase: it multicasts SYNC messages (carrying `T`, `t`
//! and the countdown to the next period) over the MRMM mesh at the start
//! of every beacon period. A robot that receives a SYNC realigns its local
//! schedule; one that keeps missing them drifts, wakes at increasingly
//! wrong times, and compensates with an escalating guard band until it
//! re-acquires — this is what makes synchronization *matter* in the
//! simulation instead of being assumed.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use cocoa_sim::time::{SimDuration, SimTime};

/// A drifting local clock.
///
/// Tracks the robot's scheduling error relative to the true (Sync-robot)
/// timeline: positive error means the robot's timers fire late.
///
/// # Examples
///
/// ```
/// use cocoa_core::sync::DriftingClock;
/// use cocoa_sim::time::SimTime;
///
/// let mut clock = DriftingClock::new(100e-6); // 100 ppm fast-running skew
/// let err = clock.error_at(SimTime::from_secs(1000));
/// assert!((err - 0.1).abs() < 1e-9); // 100 ms of drift after 1000 s
/// clock.resync(SimTime::from_secs(1000));
/// assert_eq!(clock.error_at(SimTime::from_secs(1000)), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingClock {
    /// Skew as a fraction (100 ppm = 100e-6). May be negative.
    skew: f64,
    /// Accumulated scheduling error at `anchor`, seconds.
    error_s: f64,
    /// When `error_s` was last materialized.
    anchor: SimTime,
    /// Consecutive beacon periods without a SYNC.
    missed_syncs: u32,
    /// SYNCs ignored because they were older than the current anchor.
    stale_syncs: u32,
}

impl DriftingClock {
    /// Creates a clock with the given fractional skew, synchronized at
    /// time zero.
    pub fn new(skew: f64) -> Self {
        assert!(
            skew.is_finite() && skew.abs() < 0.01,
            "unphysical skew {skew}"
        );
        DriftingClock {
            skew,
            error_s: 0.0,
            anchor: SimTime::ZERO,
            missed_syncs: 0,
            stale_syncs: 0,
        }
    }

    /// The scheduling error at `now`, seconds (positive = timers late).
    pub fn error_at(&self, now: SimTime) -> f64 {
        self.error_s + self.skew * now.saturating_since(self.anchor).as_secs_f64()
    }

    /// Realigns the clock to the reference timeline (a SYNC was received).
    ///
    /// A SYNC carrying a timestamp older than the current anchor — a
    /// delayed mesh duplicate, or a replay from a partitioned node — is
    /// ignored rather than silently rewinding the clock; such events are
    /// counted in [`DriftingClock::stale_syncs`]. Returns whether the
    /// realignment was applied.
    pub fn resync(&mut self, now: SimTime) -> bool {
        if now < self.anchor {
            self.stale_syncs = self.stale_syncs.saturating_add(1);
            return false;
        }
        self.error_s = 0.0;
        self.anchor = now;
        self.missed_syncs = 0;
        true
    }

    /// Applies a step change of `delta_ppm` parts per million to the skew
    /// (temperature shock, voltage sag). Error accumulated so far is
    /// materialized first so history is preserved; the resulting skew is
    /// clamped to the physical range accepted by [`DriftingClock::new`].
    pub fn apply_skew_step(&mut self, delta_ppm: f64, now: SimTime) {
        self.error_s = self.error_at(now);
        self.anchor = self.anchor.max(now);
        self.skew = (self.skew + delta_ppm * 1e-6).clamp(-0.009, 0.009);
    }

    /// SYNCs ignored because their timestamp predated the current anchor.
    pub fn stale_syncs(&self) -> u32 {
        self.stale_syncs
    }

    /// Records that a beacon period passed without hearing a SYNC.
    pub fn note_missed_sync(&mut self) {
        self.missed_syncs = self.missed_syncs.saturating_add(1);
    }

    /// Consecutive periods without a SYNC.
    pub fn missed_syncs(&self) -> u32 {
        self.missed_syncs
    }

    /// When the robot's timer actually fires for an intended instant,
    /// given the current drift. Never earlier than `now`.
    pub fn actual_fire_time(&self, intended: SimTime, now: SimTime) -> SimTime {
        let err = self.error_at(intended.max(now));
        let shifted = intended.as_secs_f64() + err;
        let t = SimTime::from_secs_f64(shifted.max(0.0));
        t.max(now)
    }

    /// The clock's complete state as checkpoint data:
    /// `(skew, error_s, anchor, missed_syncs, stale_syncs)`.
    pub fn checkpoint(&self) -> (f64, f64, SimTime, u32, u32) {
        (
            self.skew,
            self.error_s,
            self.anchor,
            self.missed_syncs,
            self.stale_syncs,
        )
    }

    /// Rebuilds a clock from [`DriftingClock::checkpoint`] data.
    pub fn from_checkpoint(
        skew: f64,
        error_s: f64,
        anchor: SimTime,
        missed_syncs: u32,
        stale_syncs: u32,
    ) -> Self {
        DriftingClock {
            skew,
            error_s,
            anchor,
            missed_syncs,
            stale_syncs,
        }
    }

    /// The guard band to use given the current desynchronization: doubles
    /// per missed SYNC so a drifted robot widens its wake window until it
    /// re-acquires, capped at `max`.
    pub fn effective_guard(&self, base: SimDuration, max: SimDuration) -> SimDuration {
        let factor = 1u64 << self.missed_syncs.min(6);
        (base * factor).min(max)
    }
}

/// The SYNC message body carried as MRMM mesh data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncMessage {
    /// Beacon period `T`, microseconds.
    pub period_us: u64,
    /// Transmit window `t`, microseconds.
    pub window_us: u64,
    /// Index of the window this SYNC opens.
    pub window_index: u64,
    /// True start time of that window on the Sync robot's timeline, µs.
    pub window_start_us: u64,
}

impl SyncMessage {
    /// Serialized size, bytes.
    pub const WIRE_SIZE: usize = 32;

    /// Encodes the message as mesh-data body bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_SIZE);
        b.put_u64(self.period_us);
        b.put_u64(self.window_us);
        b.put_u64(self.window_index);
        b.put_u64(self.window_start_us);
        b.freeze()
    }

    /// Decodes a body previously produced by [`SyncMessage::encode`].
    ///
    /// Returns `None` for truncated or oversized bodies.
    pub fn decode(mut body: Bytes) -> Option<Self> {
        if body.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(SyncMessage {
            period_us: body.get_u64(),
            window_us: body.get_u64(),
            window_index: body.get_u64(),
            window_start_us: body.get_u64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_accumulates_linearly() {
        let c = DriftingClock::new(50e-6);
        assert!((c.error_at(SimTime::from_secs(100)) - 0.005).abs() < 1e-12);
        assert!((c.error_at(SimTime::from_secs(200)) - 0.010).abs() < 1e-12);
    }

    #[test]
    fn resync_zeroes_error_and_missed_count() {
        let mut c = DriftingClock::new(-100e-6);
        c.note_missed_sync();
        c.note_missed_sync();
        assert_eq!(c.missed_syncs(), 2);
        c.resync(SimTime::from_secs(500));
        assert_eq!(c.missed_syncs(), 0);
        assert_eq!(c.error_at(SimTime::from_secs(500)), 0.0);
        // Drift resumes from the resync anchor.
        assert!((c.error_at(SimTime::from_secs(600)) + 0.01).abs() < 1e-9);
    }

    #[test]
    fn fire_time_shifts_by_error() {
        let mut c = DriftingClock::new(0.0);
        c.resync(SimTime::ZERO);
        // Inject a 2-second-late clock by simulating skew.
        let mut late = DriftingClock::new(0.001);
        late.resync(SimTime::ZERO);
        let intended = SimTime::from_secs(2000); // error = 2 s
        let fire = late.actual_fire_time(intended, SimTime::from_secs(1000));
        assert!((fire.as_secs_f64() - 2002.0).abs() < 1e-6);
        let exact = c.actual_fire_time(intended, SimTime::from_secs(1000));
        assert_eq!(exact, intended);
    }

    #[test]
    fn fire_time_never_in_the_past() {
        let c = DriftingClock::new(-0.001); // fast clock, fires early
        let intended = SimTime::from_secs(10);
        let now = SimTime::from_secs(10);
        assert!(c.actual_fire_time(intended, now) >= now);
    }

    #[test]
    fn guard_escalates_and_caps() {
        let mut c = DriftingClock::new(0.0);
        let base = SimDuration::from_millis(200);
        let max = SimDuration::from_secs(5);
        assert_eq!(c.effective_guard(base, max), base);
        c.note_missed_sync();
        assert_eq!(c.effective_guard(base, max), SimDuration::from_millis(400));
        for _ in 0..10 {
            c.note_missed_sync();
        }
        assert_eq!(c.effective_guard(base, max), max, "capped");
    }

    #[test]
    fn stale_resync_is_ignored_and_counted() {
        let mut c = DriftingClock::new(100e-6);
        assert!(c.resync(SimTime::from_secs(500)));
        c.note_missed_sync();
        // A SYNC from before the anchor must not rewind the clock.
        assert!(!c.resync(SimTime::from_secs(400)));
        assert_eq!(c.stale_syncs(), 1);
        assert_eq!(c.missed_syncs(), 1, "stale SYNC does not reset misses");
        // Drift still measured from the newer anchor.
        assert!((c.error_at(SimTime::from_secs(600)) - 0.01).abs() < 1e-9);
        // A fresh SYNC still works.
        assert!(c.resync(SimTime::from_secs(600)));
        assert_eq!(c.missed_syncs(), 0);
    }

    #[test]
    fn skew_step_preserves_accumulated_error() {
        let mut c = DriftingClock::new(100e-6);
        // 0.05 s of error after 500 s.
        c.apply_skew_step(100.0, SimTime::from_secs(500));
        let e = c.error_at(SimTime::from_secs(600));
        // 0.05 s history + 100 s at 200 ppm.
        assert!((e - 0.07).abs() < 1e-9, "error {e}");
    }

    #[test]
    fn skew_step_clamps_to_physical_range() {
        let mut c = DriftingClock::new(0.0);
        c.apply_skew_step(1e9, SimTime::ZERO);
        assert!((c.error_at(SimTime::from_secs(1000)) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn sync_message_roundtrip() {
        let m = SyncMessage {
            period_us: 100_000_000,
            window_us: 3_000_000,
            window_index: 7,
            window_start_us: 700_000_000,
        };
        assert_eq!(SyncMessage::decode(m.encode()), Some(m));
        assert_eq!(m.encode().len(), SyncMessage::WIRE_SIZE);
    }

    #[test]
    fn sync_message_rejects_bad_sizes() {
        assert_eq!(SyncMessage::decode(Bytes::from_static(b"short")), None);
        let long = Bytes::from(vec![0u8; 33]);
        assert_eq!(SyncMessage::decode(long), None);
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn rejects_unphysical_skew() {
        let _ = DriftingClock::new(0.5);
    }
}
