//! Loading, validating and querying JSONL telemetry traces.
//!
//! [`Telemetry::to_jsonl`](cocoa_sim::telemetry::Telemetry::to_jsonl)
//! writes one flat JSON object per line; this module is the read side — a
//! dependency-free parser for exactly that subset of JSON (flat objects of
//! strings, numbers, booleans and nulls) plus the query layer behind the
//! `cocoa-trace` binary: per-robot timelines, span reports, counter dumps,
//! per-window summaries and event replay.
//!
//! The reconstruction helpers ([`TraceFile::team_error_curve`],
//! [`TraceFile::team_energy_curve`]) rebuild the paper-style
//! error-vs-time and energy-vs-time curves from `team_sample` events; the
//! runner emits those with bit-identical arithmetic to the metrics
//! pipeline, so the rebuilt curves match `RunMetrics` exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
}

impl JsonValue {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parsed flat JSON object (one trace line).
pub type JsonObject = BTreeMap<String, JsonValue>;

/// Parses one flat JSON object: `{"key": scalar, ...}` with no nesting.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_flat_object(line: &str) -> Result<JsonObject, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = JsonObject::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            out.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(c) if c == b => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", b as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {:?}", d as char))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                s.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {s:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(format!("expected keyword {kw:?}"))
        }
    }
}

/// The `meta` header line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Trace schema version.
    pub schema: u32,
    /// Telemetry level the trace was recorded at.
    pub level: String,
    /// Total events emitted (including dropped ones).
    pub events_emitted: u64,
    /// Events discarded by the ring-buffer bound.
    pub dropped: u64,
}

/// One event line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind (`"fix"`, `"team_sample"`, …).
    pub kind: String,
    /// Stable sequence number.
    pub seq: u64,
    /// Simulation time, microseconds.
    pub t_us: u64,
    /// All remaining fields of the line.
    pub fields: JsonObject,
}

impl TraceEvent {
    /// Simulation time in seconds.
    pub fn t_s(&self) -> f64 {
        self.t_us as f64 / 1e6
    }

    /// The `robot` field, if present and numeric.
    pub fn robot(&self) -> Option<u64> {
        self.fields.get("robot").and_then(|v| v.as_u64())
    }
}

/// One span line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name.
    pub name: String,
    /// Total wall-clock time attributed, nanoseconds.
    pub total_ns: u64,
    /// Times the span closed.
    pub count: u64,
}

/// One histogram line of a trace (the `include_spans` trailer).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHist {
    /// Histogram name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Whether the histogram tracks wall-clock quantities.
    pub wall: bool,
    /// Non-zero buckets as `(bucket index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

/// Every event kind the schema defines.
pub const KNOWN_EVENT_KINDS: &[&str] = &[
    "window_start",
    "beacon_tx",
    "beacon_rx",
    "grid_update",
    "fix",
    "flat_posterior",
    "starved_window",
    "sync_delivered",
    "sync_missed",
    "failover",
    "mesh_prune",
    "radio_state",
    "fault",
    "health",
    "robot_sample",
    "team_sample",
    "snapshot_taken",
    "snapshot_restored",
    "legacy",
];

/// A fully parsed telemetry trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// The header line.
    pub meta: TraceMeta,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// End-of-run counters, as written (sorted by name).
    pub counters: Vec<(String, u64)>,
    /// Span totals, if the trace embeds them.
    pub spans: Vec<TraceSpan>,
    /// Histogram snapshots, if the trace embeds them.
    pub hists: Vec<TraceHist>,
}

/// Why a trace failed to parse — distinguishing genuinely invalid input
/// from the one damage shape a killed run produces: a torn final line.
///
/// A process killed mid-`write` leaves a JSONL file whose last line
/// stops short. Everything before it is intact and perfectly usable —
/// notably by `cocoa-trace bisect`, which compares the longest common
/// prefix anyway — so [`TruncatedTail`](TraceError::TruncatedTail)
/// carries the valid prefix instead of discarding it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace violates the schema somewhere other than a torn tail.
    Invalid(String),
    /// Only the final line is damaged; every earlier line parsed and
    /// validated.
    TruncatedTail {
        /// The valid trace formed by every line before the torn one.
        /// Its `meta` is the original header, so `meta.events_emitted`
        /// may exceed `events.len()`.
        prefix: Box<TraceFile>,
        /// 1-based number of the torn line.
        line: usize,
        /// What went wrong on that line.
        detail: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Invalid(msg) => f.write_str(msg),
            TraceError::TruncatedTail {
                prefix,
                line,
                detail,
            } => write!(
                f,
                "line {line}: {detail} (file ends on a torn line; {} valid events precede it)",
                prefix.events.len()
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parser state threaded through the per-line validation.
#[derive(Default)]
struct TraceAccumulator {
    meta: Option<TraceMeta>,
    events: Vec<TraceEvent>,
    counters: Vec<(String, u64)>,
    spans: Vec<TraceSpan>,
    hists: Vec<TraceHist>,
    last_seq: Option<u64>,
    last_t: u64,
}

impl TraceAccumulator {
    /// Parses and validates one non-empty line. Errors carry no line
    /// number — the caller owns line accounting.
    fn push_line(&mut self, lineno: usize, line: &str) -> Result<(), String> {
        let obj = parse_flat_object(line)?;
        let get_u64 = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer {key:?}"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string {key:?}"))
        };
        let kind = get_str("kind")?;
        match kind.as_str() {
            "meta" => {
                if self.meta.is_some() {
                    return Err("duplicate meta line".into());
                }
                if lineno != 1 {
                    return Err("meta must be the first line".into());
                }
                let schema = get_u64("schema")? as u32;
                if schema != cocoa_sim::telemetry::TRACE_SCHEMA_VERSION {
                    return Err(format!("unsupported schema {schema}"));
                }
                self.meta = Some(TraceMeta {
                    schema,
                    level: get_str("level")?,
                    events_emitted: get_u64("events")?,
                    dropped: get_u64("dropped")?,
                });
            }
            "counter" => self.counters.push((get_str("name")?, get_u64("value")?)),
            "span" => self.spans.push(TraceSpan {
                name: get_str("name")?,
                total_ns: get_u64("total_ns")?,
                count: get_u64("count")?,
            }),
            "hist" => {
                let get_f64 = |key: &str| -> Result<f64, String> {
                    obj.get(key)
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| format!("missing number {key:?}"))
                };
                let wall = match obj.get("wall") {
                    Some(JsonValue::Bool(b)) => *b,
                    _ => return Err("missing boolean \"wall\"".into()),
                };
                // Non-zero buckets ride a compact "idx:count,idx:count"
                // string so hist lines stay flat JSON objects.
                let mut buckets = Vec::new();
                let spec = get_str("buckets")?;
                for pair in spec.split(',').filter(|p| !p.is_empty()) {
                    let (idx, count) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("malformed bucket pair {pair:?}"))?;
                    let idx: u32 = idx
                        .parse()
                        .map_err(|_| format!("bad bucket index {idx:?}"))?;
                    let count: u64 = count
                        .parse()
                        .map_err(|_| format!("bad bucket count {count:?}"))?;
                    buckets.push((idx, count));
                }
                self.hists.push(TraceHist {
                    name: get_str("name")?,
                    count: get_u64("count")?,
                    sum: get_f64("sum")?,
                    min: get_f64("min")?,
                    max: get_f64("max")?,
                    wall,
                    buckets,
                });
            }
            k if KNOWN_EVENT_KINDS.contains(&k) => {
                if self.meta.is_none() {
                    return Err("event before meta line".into());
                }
                let seq = get_u64("seq")?;
                let t_us = get_u64("t_us")?;
                if self.last_seq.is_some_and(|s| seq <= s) {
                    return Err(format!("seq {seq} not increasing"));
                }
                if t_us < self.last_t {
                    return Err(format!("t_us {t_us} went backwards"));
                }
                self.last_seq = Some(seq);
                self.last_t = t_us;
                let mut fields = obj;
                fields.remove("kind");
                fields.remove("seq");
                fields.remove("t_us");
                self.events.push(TraceEvent {
                    kind,
                    seq,
                    t_us,
                    fields,
                });
            }
            other => return Err(format!("unknown kind {other:?}")),
        }
        Ok(())
    }

    fn into_trace(self) -> Result<TraceFile, String> {
        let meta = self.meta.ok_or("missing meta line")?;
        Ok(TraceFile {
            meta,
            events: self.events,
            counters: self.counters,
            spans: self.spans,
            hists: self.hists,
        })
    }
}

impl TraceFile {
    /// Parses and validates a JSONL trace.
    ///
    /// Validation enforces the schema: a leading `meta` line with a known
    /// schema version, only known event kinds, strictly increasing
    /// sequence numbers and non-decreasing timestamps.
    ///
    /// # Errors
    ///
    /// Returns `"line N: reason"` on the first malformed line. A torn
    /// final line is also an error here; use [`TraceFile::parse_partial`]
    /// to recover the valid prefix instead.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        TraceFile::parse_partial(text).map_err(|e| e.to_string())
    }

    /// Like [`TraceFile::parse`], but classifies the one recoverable
    /// damage shape: when only the *final* non-empty line is malformed
    /// (the signature of a run killed mid-write), the error is
    /// [`TraceError::TruncatedTail`] carrying the fully validated
    /// prefix, so tools can keep working with every intact event.
    ///
    /// # Errors
    ///
    /// [`TraceError::Invalid`] for damage anywhere before the final
    /// line (or a missing/unsupported header);
    /// [`TraceError::TruncatedTail`] when only the tail is torn.
    pub fn parse_partial(text: &str) -> Result<TraceFile, TraceError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let mut acc = TraceAccumulator::default();
        for (pos, &(lineno, line)) in lines.iter().enumerate() {
            if let Err(detail) = acc.push_line(lineno, line) {
                let is_tail = pos == lines.len() - 1 && acc.meta.is_some();
                if is_tail {
                    let prefix = acc
                        .into_trace()
                        .expect("meta checked above, prefix is valid");
                    return Err(TraceError::TruncatedTail {
                        prefix: Box::new(prefix),
                        line: lineno,
                        detail,
                    });
                }
                return Err(TraceError::Invalid(format!("line {lineno}: {detail}")));
            }
        }
        acc.into_trace().map_err(TraceError::Invalid)
    }

    /// The team mean-error curve: `(t_s, mean_err_m, robots)` per sample.
    /// Bit-identical to `RunMetrics::error_series` for the same run.
    pub fn team_error_curve(&self) -> Vec<(f64, f64, u64)> {
        self.events
            .iter()
            .filter(|e| e.kind == "team_sample")
            .filter_map(|e| {
                Some((
                    e.t_s(),
                    e.fields.get("mean_err_m")?.as_f64()?,
                    e.fields.get("robots")?.as_u64()?,
                ))
            })
            .collect()
    }

    /// The team energy curve: `(t_s, energy_j)` per sample.
    pub fn team_energy_curve(&self) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter(|e| e.kind == "team_sample")
            .filter_map(|e| Some((e.t_s(), e.fields.get("energy_j")?.as_f64()?)))
            .collect()
    }

    /// All events touching `robot` (samples, fixes, radio/health changes),
    /// in time order.
    pub fn robot_events(&self, robot: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.robot() == Some(robot))
            .collect()
    }

    /// Per-window protocol summary derived from the event stream:
    /// `(window, fixes, syncs_delivered, syncs_missed, starved)`.
    pub fn window_summary(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut windows: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
        for e in &self.events {
            let Some(w) = e.fields.get("window").and_then(|v| v.as_u64()) else {
                continue;
            };
            let entry = windows.entry(w).or_default();
            match e.kind.as_str() {
                "fix" => entry.0 += 1,
                "sync_delivered" => entry.1 += 1,
                "sync_missed" => entry.2 += 1,
                "starved_window" => entry.3 += 1,
                _ => {}
            }
        }
        windows
            .into_iter()
            .map(|(w, (f, sd, sm, st))| (w, f, sd, sm, st))
            .collect()
    }

    /// Events at or after `from_s`, optionally capped at `limit`.
    pub fn replay_from(&self, from_s: f64, limit: Option<usize>) -> Vec<&TraceEvent> {
        let from_us = (from_s * 1e6).max(0.0) as u64;
        let it = self.events.iter().filter(move |e| e.t_us >= from_us);
        match limit {
            Some(n) => it.take(n).collect(),
            None => it.collect(),
        }
    }

    /// Finds the first event index at which two traces diverge.
    ///
    /// Events are compared in stream order on kind, sequence number,
    /// timestamp and every field. Returns `None` when both event streams
    /// are identical (counters and spans are not compared — see
    /// [`TraceFile::counter_diffs`]); when one stream is a strict prefix
    /// of the other, the divergence index is the prefix length.
    pub fn first_divergence(&self, other: &TraceFile) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            if self.events[i] != other.events[i] {
                return Some(i);
            }
        }
        if self.events.len() != other.events.len() {
            return Some(n);
        }
        None
    }

    /// End-of-run counters that differ between two traces:
    /// `(name, value_in_self, value_in_other)`, `None` when absent.
    pub fn counter_diffs(&self, other: &TraceFile) -> Vec<(String, Option<u64>, Option<u64>)> {
        let a: BTreeMap<&str, u64> = self
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let b: BTreeMap<&str, u64> = other
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let names: std::collections::BTreeSet<&str> = a.keys().chain(b.keys()).copied().collect();
        names
            .into_iter()
            .filter_map(|name| {
                let (va, vb) = (a.get(name).copied(), b.get(name).copied());
                (va != vb).then(|| (name.to_string(), va, vb))
            })
            .collect()
    }

    /// One human-readable line for an event (the replay display format).
    pub fn format_event(e: &TraceEvent) -> String {
        let mut out = format!("{:>12.6}s  {:<16}", e.t_s(), e.kind);
        for (k, v) in &e.fields {
            match v {
                JsonValue::Null => {
                    let _ = write!(out, " {k}=null");
                }
                JsonValue::Bool(b) => {
                    let _ = write!(out, " {k}={b}");
                }
                JsonValue::Num(n) => {
                    let _ = write!(out, " {k}={n}");
                }
                JsonValue::Str(s) => {
                    let _ = write!(out, " {k}={s:?}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_sim::telemetry::{Telemetry, TelemetryEvent, TelemetryLevel};
    use cocoa_sim::time::SimTime;

    #[test]
    fn parses_scalars_and_escapes() {
        let obj = parse_flat_object(r#"{"a": 1.5, "b": "x\"y\nz", "c": null, "d": true, "e": -2}"#)
            .unwrap();
        assert_eq!(obj["a"], JsonValue::Num(1.5));
        assert_eq!(obj["b"], JsonValue::Str("x\"y\nz".into()));
        assert_eq!(obj["c"], JsonValue::Null);
        assert_eq!(obj["d"], JsonValue::Bool(true));
        assert_eq!(obj["e"], JsonValue::Num(-2.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_flat_object("{").is_err());
        assert!(parse_flat_object(r#"{"a":}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_flat_object(r#"{"a":1,}"#).is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_round_trip() {
        let obj = parse_flat_object(r#"{"s": "café → 日本"}"#).unwrap();
        assert_eq!(obj["s"], JsonValue::Str("café → 日本".into()));
    }

    fn sample_trace() -> String {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        t.emit(
            SimTime::from_secs(1),
            TelemetryEvent::WindowStart { window: 0 },
        );
        t.emit(
            SimTime::from_secs(2),
            TelemetryEvent::Fix {
                robot: 3,
                window: 0,
                x_m: 10.0,
                y_m: 20.0,
                err_m: 1.25,
            },
        );
        t.emit(
            SimTime::from_secs(2),
            TelemetryEvent::SyncMissed {
                robot: 4,
                window: 0,
            },
        );
        t.emit(
            SimTime::from_secs(3),
            TelemetryEvent::TeamSample {
                mean_err_m: 2.5,
                robots: 25,
                energy_j: 100.0,
            },
        );
        t.absorb("traffic.fixes", 1);
        t.to_jsonl(false)
    }

    #[test]
    fn round_trips_telemetry_output() {
        let trace = TraceFile::parse(&sample_trace()).unwrap();
        assert_eq!(trace.meta.level, "full");
        assert_eq!(trace.meta.events_emitted, 4);
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.counters, vec![("traffic.fixes".to_string(), 1)]);
        assert_eq!(trace.events[1].kind, "fix");
        assert_eq!(trace.events[1].robot(), Some(3));
        let curve = trace.team_error_curve();
        assert_eq!(curve, vec![(3.0, 2.5, 25)]);
        assert_eq!(trace.team_energy_curve(), vec![(3.0, 100.0)]);
        let windows = trace.window_summary();
        assert_eq!(windows, vec![(0, 1, 0, 1, 0)]);
        assert_eq!(trace.robot_events(3).len(), 1);
        assert_eq!(trace.replay_from(2.0, None).len(), 3);
        assert_eq!(trace.replay_from(2.0, Some(1)).len(), 1);
    }

    #[test]
    fn validation_rejects_schema_violations() {
        // Missing meta.
        let err = TraceFile::parse("{\"kind\":\"fix\",\"seq\":0,\"t_us\":0,\"robot\":1,\"window\":0,\"x_m\":0,\"y_m\":0,\"err_m\":0}\n")
            .unwrap_err();
        assert!(err.contains("before meta"), "{err}");
        // Unknown kind.
        let err = TraceFile::parse(
            "{\"kind\":\"meta\",\"schema\":1,\"level\":\"full\",\"events\":0,\"dropped\":0}\n{\"kind\":\"bogus\",\"seq\":0,\"t_us\":0}\n",
        )
        .unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        // Decreasing seq.
        let err = TraceFile::parse(
            "{\"kind\":\"meta\",\"schema\":1,\"level\":\"full\",\"events\":2,\"dropped\":0}\n\
             {\"kind\":\"window_start\",\"seq\":1,\"t_us\":0,\"window\":0}\n\
             {\"kind\":\"window_start\",\"seq\":0,\"t_us\":0,\"window\":1}\n",
        )
        .unwrap_err();
        assert!(err.contains("not increasing"), "{err}");
        // Unsupported schema.
        let err = TraceFile::parse(
            "{\"kind\":\"meta\",\"schema\":99,\"level\":\"full\",\"events\":0,\"dropped\":0}\n",
        )
        .unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn spans_parse_when_embedded() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        let id = t.span_id("grid.update");
        let s = t.span_start();
        t.span_end(id, s);
        let trace = TraceFile::parse(&t.to_jsonl(true)).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "grid.update");
        assert_eq!(trace.spans[0].count, 1);
    }

    #[test]
    fn hist_lines_parse_when_embedded() {
        let mut t = Telemetry::new(TelemetryLevel::Counters);
        let h = t.hist("run.robot_error_m");
        for x in [0.5, 1.5, 1.5, -2.0] {
            t.hist_record(h, x);
        }
        let trace = TraceFile::parse(&t.to_jsonl(true)).unwrap();
        assert_eq!(trace.hists.len(), 1);
        let hist = &trace.hists[0];
        assert_eq!(hist.name, "run.robot_error_m");
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 1.5);
        assert_eq!(hist.min, -2.0);
        assert_eq!(hist.max, 1.5);
        assert!(!hist.wall);
        assert_eq!(hist.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        // A trace without the trailer simply has no hists.
        let bare = TraceFile::parse(&t.to_jsonl(false)).unwrap();
        assert!(bare.hists.is_empty());
    }

    #[test]
    fn malformed_hist_buckets_are_rejected() {
        let text = "{\"kind\":\"meta\",\"schema\":1,\"level\":\"counters\",\"events\":0,\"dropped\":0}\n\
                    {\"kind\":\"hist\",\"name\":\"x\",\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"wall\":false,\"buckets\":\"7\"}\n";
        let err = TraceFile::parse(text).unwrap_err();
        assert!(err.contains("malformed bucket pair"), "{err}");
    }

    #[test]
    fn format_event_is_readable() {
        let trace = TraceFile::parse(&sample_trace()).unwrap();
        let line = TraceFile::format_event(&trace.events[1]);
        assert!(line.contains("fix"), "{line}");
        assert!(line.contains("robot=3"), "{line}");
    }

    #[test]
    fn bisect_localizes_injected_single_event_divergence() {
        let base = sample_trace();
        let a = TraceFile::parse(&base).unwrap();
        // Inject a single-event divergence: perturb one field of the
        // third event (seq 2) and leave everything else untouched.
        let divergent = base.replacen("\"robot\":4", "\"robot\":5", 1);
        assert_ne!(base, divergent, "injection must change the trace");
        let b = TraceFile::parse(&divergent).unwrap();
        let idx = a.first_divergence(&b).expect("divergence must be found");
        assert_eq!(idx, 2, "exact first diverging event index");
        assert_eq!(a.events[idx].seq, 2, "exact first diverging seq");
        assert_eq!(a.events[idx].kind, "sync_missed");
        // Symmetric.
        assert_eq!(b.first_divergence(&a), Some(2));
        // Identical traces report no divergence.
        assert_eq!(a.first_divergence(&a), None);
        assert!(a.counter_diffs(&a).is_empty());
    }

    #[test]
    fn bisect_reports_prefix_truncation_and_counter_deltas() {
        let base = sample_trace();
        let a = TraceFile::parse(&base).unwrap();
        // Drop the last event line and change the counter value.
        let truncated: String = base
            .lines()
            .filter(|l| !l.contains("team_sample"))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            .replace("\"value\":1", "\"value\":3");
        let b = TraceFile::parse(&truncated).unwrap();
        assert_eq!(
            a.first_divergence(&b),
            Some(3),
            "a strict prefix diverges at its length"
        );
        let diffs = a.counter_diffs(&b);
        assert_eq!(diffs, vec![("traffic.fixes".to_string(), Some(1), Some(3))]);
    }

    #[test]
    fn torn_final_line_yields_the_valid_prefix() {
        let base = sample_trace();
        let full = TraceFile::parse(&base).unwrap();
        // Chop the file mid-way through its final line, as a SIGKILL
        // during the trailing write would.
        let cut = base.trim_end().len() - 9;
        let torn = &base[..cut];
        let err = TraceFile::parse_partial(torn).unwrap_err();
        match err {
            TraceError::TruncatedTail { prefix, line, .. } => {
                assert_eq!(prefix.meta, full.meta);
                assert_eq!(line, 6, "the counter line is the torn one");
                assert_eq!(prefix.events.len(), full.events.len());
                assert_eq!(prefix.events, full.events);
                assert!(prefix.counters.is_empty(), "torn counter not kept");
                // The prefix still answers queries — what bisect needs.
                assert_eq!(prefix.team_error_curve(), full.team_error_curve());
            }
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
        // The strict entry point reports the same failure as a string.
        let msg = TraceFile::parse(torn).unwrap_err();
        assert!(msg.contains("torn line"), "{msg}");
    }

    #[test]
    fn damage_before_the_tail_is_still_invalid() {
        let base = sample_trace();
        // Tear an event line in the middle of the file.
        let lines: Vec<&str> = base.lines().collect();
        let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        let mid = 2;
        mangled[mid] = mangled[mid][..mangled[mid].len() / 2].to_string();
        let text = mangled.join("\n");
        match TraceFile::parse_partial(&text) {
            Err(TraceError::Invalid(msg)) => {
                assert!(msg.starts_with(&format!("line {}", mid + 1)), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn missing_meta_is_invalid_not_truncated() {
        match TraceFile::parse_partial("{\"kind\":\"counter\",\"name\":\"x\"") {
            Err(TraceError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_marker_events_parse() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        t.emit(
            SimTime::from_secs(1),
            TelemetryEvent::SnapshotTaken {
                bytes: 1024,
                sections: 7,
            },
        );
        t.emit(
            SimTime::from_secs(2),
            TelemetryEvent::SnapshotRestored { bytes: 1024 },
        );
        let trace = TraceFile::parse(&t.to_jsonl(false)).unwrap();
        assert_eq!(trace.events[0].kind, "snapshot_taken");
        assert_eq!(trace.events[1].kind, "snapshot_restored");
    }
}
