//! A bounded work-stealing executor for simulation sweeps.
//!
//! Figure and ablation drivers run many independent, single-threaded,
//! deterministic simulations. Spawning one OS thread per scenario (the
//! previous approach) oversubscribes the machine as soon as a sweep has
//! more points than cores, and a 16-point sweep on a 4-core box pays for
//! 16 stacks and the scheduler thrash of 4× oversubscription.
//!
//! [`map_bounded`] instead runs the jobs on at most
//! `available_parallelism()` scoped worker threads that pull indices off a
//! shared atomic counter: no job queue to build, no channel, no
//! oversubscription, and results come back in input order regardless of
//! which worker finished which job.
//!
//! Three entry points with increasing resilience:
//!
//! - [`map_bounded`] — fail-fast: the first panic propagates after the
//!   sweep drains (all results are discarded). Right for interactive
//!   figure regeneration where a panic means "fix the code".
//! - [`try_map_bounded`] — panic-isolated: every job runs to completion
//!   and each result slot is `Ok(value)` or the caught panic. Surviving
//!   workers finish their queues.
//! - [`supervisor::Supervisor`] — full supervision: deadlines, retries
//!   with deterministic backoff, typed failure classification, and (via
//!   [`sweep`]) checkpointed auto-resume of interrupted sweeps.

pub mod fleet;
pub mod manifest;
pub mod supervisor;
pub mod sweep;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use supervisor::{run_guarded, CaughtPanic};

/// Upper bound on worker threads, from the OS (1 if unknown).
pub fn max_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item of `items` on a bounded pool of scoped
/// threads and returns the results in input order.
///
/// At most `min(items.len(), max_workers())` threads run at any moment.
/// Workers self-schedule: each repeatedly claims the next unclaimed index
/// from an atomic counter, so long and short jobs interleave without any
/// up-front partitioning. With one item (or one core) no thread is
/// spawned at all and `f` runs on the caller's thread.
///
/// # Panics
///
/// Panics if any invocation of `f` panics. Unlike the previous
/// join-and-abort behavior, every job still runs to completion first —
/// only then is the lowest-index panic re-raised (with its original
/// payload) and the completed results discarded. Callers that want those
/// results use [`try_map_bounded`].
pub fn map_bounded<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut first_panic: Option<CaughtPanic> = None;
    let mut out = Vec::with_capacity(items.len());
    for result in try_map_bounded(items, f) {
        match result {
            Ok(r) => out.push(r),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        p.resume();
    }
    out
}

/// Panic-isolated variant of [`map_bounded`]: applies `f` to every item
/// and returns, in input order, `Ok(result)` per completed job and
/// `Err(caught panic)` per panicked one.
///
/// One panicking job no longer poisons the sweep — surviving workers
/// keep pulling indices until the queue drains, so a 100-point sweep
/// with one crash still yields 99 results. Each caught panic carries the
/// stringified payload and a backtrace captured at the panic site (see
/// [`supervisor::run_guarded`]).
pub fn try_map_bounded<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, CaughtPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers().min(n);
    if workers <= 1 {
        return items.iter().map(|item| run_guarded(|| f(item))).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, CaughtPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run_guarded(|| f(&items[i]));
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = map_bounded(items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map_bounded(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = map_bounded(vec![41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn concurrency_never_exceeds_the_core_count() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        map_bounded(items, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= max_workers(),
            "peak concurrency {} exceeded the bound {}",
            peak.load(Ordering::SeqCst),
            max_workers()
        );
    }

    #[test]
    fn uneven_job_durations_still_order_results() {
        let items: Vec<u64> = (0..16).rev().collect();
        let out = map_bounded(items.clone(), |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms / 4));
            ms
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        map_bounded(items, |&i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn isolated_map_returns_surviving_results() {
        let items: Vec<usize> = (0..32).collect();
        let out = try_map_bounded(items, |&i| {
            assert!(i % 10 != 7, "boom at {i}");
            i * 3
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 7 {
                let p = r.as_ref().expect_err("index {i} should have panicked");
                assert!(p.payload.contains(&format!("boom at {i}")));
            } else {
                assert_eq!(*r.as_ref().expect("surviving job"), i * 3);
            }
        }
    }

    #[test]
    fn isolated_map_single_item_panics_inline() {
        let out = try_map_bounded(vec![1u32], |_| -> u32 { panic!("inline boom") });
        assert_eq!(out.len(), 1);
        assert!(out[0].as_ref().unwrap_err().payload.contains("inline boom"));
    }
}
