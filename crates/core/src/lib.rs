//! # cocoa-core — the CoCoA architecture
//!
//! CoCoA (Coordinated Cooperative Ad-hoc localization, ICDCS 2006) lets a
//! mobile robot team in which only a *subset* of robots carry localization
//! devices localize everyone: equipped robots broadcast RF beacons with
//! their coordinates, unequipped robots range on beacon RSSI and run
//! Bayesian inference, odometry bridges the gaps, and an MRMM-multicast
//! SYNC service coarsely synchronizes the team so radios sleep between the
//! short transmit windows.
//!
//! This crate assembles the substrates (`cocoa-sim`, `cocoa-net`,
//! `cocoa-mobility`, `cocoa-multicast`, `cocoa-localization`) into the full
//! system:
//!
//! - [`scenario`]: the experiment configuration (defaults = the paper's
//!   evaluation setup);
//! - [`robot`]: the per-robot bundle (motion, radio, estimator, mesh,
//!   clock) and its estimate logic;
//! - [`sync`]: drifting clocks, SYNC messages and the escalating-guard
//!   re-acquisition policy;
//! - [`world`]: the deterministic event-driven simulation, split by
//!   concern (events, windows, beacons, mesh backends, faults, metrics);
//! - [`runner`]: the stable facade over [`world`]'s entry points;
//! - [`metrics`]: localization-error series, CDF snapshots and the energy
//!   ledger;
//! - [`experiment`]: one driver per paper figure (4 through 10);
//! - [`tracefile`]: the read side of the telemetry bus — JSONL trace
//!   parsing, validation and the queries behind `cocoa-trace`;
//! - [`serve`]: sweep-as-a-service — the `cocoa-serve` batch server with
//!   single-flight scenario dedup and a warm-artifact cache.
//!
//! # Examples
//!
//! ```no_run
//! use cocoa_core::prelude::*;
//!
//! // The paper's headline configuration: 50 robots, 25 equipped,
//! // T = 100 s, CoCoA mode.
//! let scenario = Scenario::builder().seed(1).build();
//! let metrics = run(&scenario);
//! println!(
//!     "avg error {:.1} m, team energy {:.0} J",
//!     metrics.mean_error_over_time(),
//!     metrics.energy.total_j()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod experiment;
pub mod health;
pub mod metrics;
pub mod report;
pub mod robot;
pub mod runner;
pub mod scenario;
pub mod serve;
pub mod sync;
pub mod tracefile;
pub mod world;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::executor::manifest::{ManifestError, PointState, SweepManifest};
    pub use crate::executor::supervisor::{
        CaughtPanic, JobFailure, JobOutcome, Supervisor, SupervisorConfig, SupervisorCounters,
        SweepReport,
    };
    pub use crate::executor::sweep::{run_supervised, SweepConfig};
    pub use crate::health::{DegradationState, HealthLedger, HealthMonitor};
    pub use crate::metrics::{
        EnergyReport, ErrorPoint, ErrorSnapshot, RobotFinalState, RobustnessStats, RunMetrics,
        TrafficStats,
    };
    pub use crate::robot::Robot;
    pub use crate::runner::{run, run_traced, run_with_telemetry};
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use crate::serve::{parse_spec, request_fingerprint, ServeConfig, ServeRequest, Server};
    pub use crate::sync::{DriftingClock, SyncMessage};
    pub use crate::tracefile::{TraceError, TraceFile};
    pub use crate::world::mesh::{make_backend, MeshBackend};
    pub use cocoa_localization::estimator::EstimatorMode;
    pub use cocoa_multicast::protocol::MulticastProtocol;
    pub use cocoa_sim::faults::{Fault, FaultPlan, GilbertElliott};
    pub use cocoa_sim::telemetry::{Telemetry, TelemetryEvent, TelemetryLevel};
}
