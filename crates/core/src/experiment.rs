//! One driver per figure of the paper's evaluation (Section 4), plus the
//! ablations DESIGN.md calls out.
//!
//! Every driver takes an [`ExperimentScale`] so the benchmark harness can
//! run a downsized variant while the figure-regeneration binaries run the
//! paper's full 30-minute, 50-robot setup. Drivers return structured
//! results and render the same rows/series the paper reports via their
//! `render()` methods. Parameter sweeps run their points on parallel
//! threads (each simulation is single-threaded and deterministic).

use serde::{Deserialize, Serialize};

use cocoa_localization::estimator::EstimatorMode;
use cocoa_net::calibration::{calibrate, CalibrationConfig};
use cocoa_net::channel::RfChannel;
use cocoa_net::rssi::RssiBin;
use cocoa_sim::rng::SeedSplitter;
use cocoa_sim::stats;
use cocoa_sim::time::{SimDuration, SimTime};

use cocoa_sim::telemetry::Telemetry;

use crate::metrics::RunMetrics;
use crate::runner::{run, WarmArtifacts};
use crate::scenario::{Scenario, ScenarioBuilder};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Master seed.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Team size.
    pub num_robots: usize,
}

impl Default for ExperimentScale {
    /// The paper's scale: 50 robots, 30 minutes.
    fn default() -> Self {
        ExperimentScale {
            seed: 42,
            duration: SimDuration::from_secs(1800),
            num_robots: 50,
        }
    }
}

impl ExperimentScale {
    /// A downsized scale for CI and Criterion benches.
    pub fn quick() -> Self {
        ExperimentScale {
            seed: 42,
            duration: SimDuration::from_secs(300),
            num_robots: 20,
        }
    }

    fn base_builder(&self) -> ScenarioBuilder {
        let mut b = Scenario::builder();
        b.seed(self.seed)
            .duration(self.duration)
            .robots(self.num_robots)
            .equipped(self.num_robots / 2);
        b
    }
}

/// Runs scenarios on the bounded sweep executor, preserving input order.
///
/// Each simulation is single-threaded and deterministic; the executor
/// caps concurrency at the machine's core count instead of spawning one
/// thread per scenario.
fn run_parallel(scenarios: Vec<Scenario>) -> Vec<RunMetrics> {
    crate::executor::map_bounded(scenarios, run)
}

/// Runs a sweep family on the bounded executor, warm-starting every
/// point from a shared time-zero snapshot of the first scenario.
///
/// The base scenario's setup — validation, RF calibration, team
/// placement, RNG stream splits — is performed once; each point then
/// forks the captured state under its own schedule-side parameters via
/// [`WarmArtifacts::fork`], reusing the calibration tables instead of
/// recomputing them per run. A point that changes a setup-feeding field
/// (and is therefore not fork-compatible with the base) falls back to a
/// cold [`run`], so the output is always identical to what
/// the cold path would produce: warm starting is purely a wall-clock
/// optimization, measured by the perf harness in `BENCH_snapshot.json`.
pub fn run_warm_parallel(scenarios: Vec<Scenario>) -> Vec<RunMetrics> {
    let Some(first) = scenarios.first() else {
        return Vec::new();
    };
    let artifacts = std::sync::Arc::new(WarmArtifacts::build(first));
    crate::executor::map_bounded(scenarios, move |s| {
        match artifacts.fork(s, Telemetry::off()) {
            Ok(fork) => fork.finish().0,
            Err(_) => run(s),
        }
    })
}

/// Runs a sweep under full supervision: panic isolation, per-point
/// deadlines, deterministic retry, and (when
/// [`SweepConfig::manifest_path`](crate::executor::sweep::SweepConfig)
/// is set) checkpointed auto-resume of interrupted sweeps.
///
/// Unlike [`run_warm_parallel`], one crashing or hanging point does not
/// abort the sweep: every other point still completes and the failure
/// comes back classified inside the
/// [`SweepReport`](crate::executor::supervisor::SweepReport).
///
/// # Errors
///
/// Fails only when a configured manifest file exists but cannot be
/// read or decoded; job failures are reported, not raised.
pub fn run_parallel_supervised(
    scenarios: Vec<Scenario>,
    cfg: &crate::executor::sweep::SweepConfig,
) -> Result<
    crate::executor::supervisor::SweepReport<RunMetrics>,
    crate::executor::manifest::ManifestError,
> {
    crate::executor::sweep::run_supervised(scenarios, cfg)
}

/// A labelled `(x, y)` series — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label as it would appear in the figure legend.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    fn from_metrics(label: impl Into<String>, m: &RunMetrics) -> Self {
        Series {
            label: label.into(),
            points: m
                .error_series
                .iter()
                .map(|p| (p.t_s, p.mean_error_m))
                .collect(),
        }
    }

    /// Mean of the y values (0 if empty).
    pub fn mean(&self) -> f64 {
        let ys: Vec<f64> = self.points.iter().map(|p| p.1).collect();
        stats::mean(&ys)
    }

    /// Maximum of the y values (0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// The last y value (0 if empty).
    pub fn last(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.1)
    }

    /// Mean of the y values with `x >= from` (0 if none).
    pub fn mean_after(&self, from: f64) -> f64 {
        let tail: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.0 >= from)
            .map(|p| p.1)
            .collect();
        stats::mean(&tail)
    }

    /// Downsamples to roughly `n` points (for compact printing). `n = 0`
    /// returns the series unchanged.
    pub fn downsampled(&self, n: usize) -> Series {
        if self.points.len() <= n || n == 0 {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(n);
        Series {
            label: self.label.clone(),
            points: self.points.iter().step_by(stride).copied().collect(),
        }
    }
}

fn render_series_table(title: &str, series: &[Series], n_points: usize) -> String {
    let mut out = format!("# {title}\n");
    for s in series {
        let ds = s.downsampled(n_points);
        out.push_str(&format!(
            "{} | mean={:.2} m, steady(>310s)={:.2} m, max={:.2} m, final={:.2} m\n",
            ds.label,
            s.mean(),
            s.mean_after(310.0),
            s.max(),
            s.last()
        ));
        let row: Vec<String> = ds
            .points
            .iter()
            .map(|(t, e)| format!("({t:.0}s, {e:.1}m)"))
            .collect();
        out.push_str(&format!("  {}\n", row.join(" ")));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 1 — calibration PDFs
// ---------------------------------------------------------------------------

/// One PDF curve of paper Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdfCurve {
    /// The RSSI bin the curve belongs to.
    pub rssi_dbm: i16,
    /// Whether the calibration kept the Gaussian form.
    pub gaussian: bool,
    /// `(distance, density)` samples of the PDF.
    pub points: Vec<(f64, f64)>,
}

/// Output of the Fig. 1 regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Calibration {
    /// The near-field example (paper: RSSI = −52 dBm, Gaussian).
    pub near: PdfCurve,
    /// The far-field example (paper: RSSI = −86 dBm, non-Gaussian).
    pub far: PdfCurve,
    /// Number of calibrated RSSI bins in the table.
    pub table_bins: usize,
}

/// Regenerates paper Fig. 1: the distance PDFs for a strong and a weak
/// RSSI value — Gaussian and non-Gaussian respectively.
pub fn fig1_calibration(seed: u64) -> Fig1Calibration {
    let channel = RfChannel::default();
    let table = calibrate(
        &channel,
        &CalibrationConfig::default(),
        &mut SeedSplitter::new(seed).stream("calibration", 0),
    );
    let curve = |bin: i16| -> PdfCurve {
        let pdf = table
            .lookup(RssiBin(bin).center())
            .unwrap_or_else(|| panic!("bin {bin} missing from the table"));
        let max_d = pdf.support_max().min(160.0);
        let points = (0..=200)
            .map(|i| {
                let d = 0.5 + max_d * f64::from(i) / 200.0;
                (d, pdf.density(d))
            })
            .collect();
        PdfCurve {
            rssi_dbm: bin,
            gaussian: pdf.is_gaussian(),
            points,
        }
    };
    Fig1Calibration {
        near: curve(-52),
        far: curve(-86),
        table_bins: table.len(),
    }
}

impl Fig1Calibration {
    /// Renders the figure's content as text.
    pub fn render(&self) -> String {
        let peak = |c: &PdfCurve| {
            c.points
                .iter()
                .copied()
                .fold((0.0, 0.0), |best, p| if p.1 > best.1 { p } else { best })
        };
        let (dn, _) = peak(&self.near);
        let (df, _) = peak(&self.far);
        format!(
            "# Fig. 1 — calibration PDFs ({} bins)\n\
             (a) RSSI {} dBm: {} PDF, peak at {:.1} m\n\
             (b) RSSI {} dBm: {} PDF, peak at {:.1} m\n",
            self.table_bins,
            self.near.rssi_dbm,
            if self.near.gaussian {
                "Gaussian"
            } else {
                "empirical"
            },
            dn,
            self.far.rssi_dbm,
            if self.far.gaussian {
                "Gaussian"
            } else {
                "empirical"
            },
            df,
        )
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — odometry-only error growth
// ---------------------------------------------------------------------------

/// Output of the Fig. 4 regeneration: one error-vs-time series per speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Odometry {
    /// Error series for `v_max` = 0.5 and 2.0 m/s.
    pub series: Vec<Series>,
}

/// Regenerates paper Fig. 4: localization error over time using odometry
/// only, for maximum speeds 0.5 and 2.0 m/s.
pub fn fig4_odometry(scale: ExperimentScale) -> Fig4Odometry {
    let scenarios: Vec<Scenario> = [0.5, 2.0]
        .into_iter()
        .map(|v| {
            scale
                .base_builder()
                .mode(EstimatorMode::OdometryOnly)
                .v_max(v)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    Fig4Odometry {
        series: results
            .iter()
            .zip(["v_max = 0.5 m/s", "v_max = 2.0 m/s"])
            .map(|(m, label)| Series::from_metrics(label, m))
            .collect(),
    }
}

impl Fig4Odometry {
    /// Renders the figure's series as text.
    pub fn render(&self) -> String {
        render_series_table(
            "Fig. 4 — localization error over time, odometry only",
            &self.series,
            12,
        )
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — RF-only error for different beacon periods
// ---------------------------------------------------------------------------

/// Output of the Fig. 6 regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6RfOnly {
    /// One error series per beacon period `T`.
    pub series: Vec<Series>,
}

/// Regenerates paper Fig. 6: RF-only localization error over time for the
/// given beacon periods (the paper uses 10/50/100/300 s).
pub fn fig6_rf_only(scale: ExperimentScale, periods_s: &[u64]) -> Fig6RfOnly {
    let scenarios: Vec<Scenario> = periods_s
        .iter()
        .map(|&t| {
            scale
                .base_builder()
                .mode(EstimatorMode::RfOnly)
                .beacon_period(SimDuration::from_secs(t))
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    Fig6RfOnly {
        series: results
            .iter()
            .zip(periods_s)
            .map(|(m, t)| Series::from_metrics(format!("T = {t} s"), m))
            .collect(),
    }
}

impl Fig6RfOnly {
    /// Renders the figure's series as text.
    pub fn render(&self) -> String {
        render_series_table(
            "Fig. 6 — localization error over time, RF localization only",
            &self.series,
            12,
        )
    }
}

// ---------------------------------------------------------------------------
// Fig. 7 — CoCoA vs odometry-only vs RF-only
// ---------------------------------------------------------------------------

/// Output of the Fig. 7 regeneration: for each speed, the three modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Comparison {
    /// `(v_max, [odometry, rf-only, cocoa])` series.
    pub by_speed: Vec<(f64, Vec<Series>)>,
}

/// Regenerates paper Fig. 7: the three estimator modes at T = 100 s for
/// both maximum speeds.
pub fn fig7_comparison(scale: ExperimentScale) -> Fig7Comparison {
    let mut by_speed = Vec::new();
    for v in [0.5, 2.0] {
        let scenarios: Vec<Scenario> = [
            EstimatorMode::OdometryOnly,
            EstimatorMode::RfOnly,
            EstimatorMode::Cocoa,
        ]
        .into_iter()
        .map(|mode| {
            scale
                .base_builder()
                .mode(mode)
                .v_max(v)
                .beacon_period(SimDuration::from_secs(100))
                .build()
        })
        .collect();
        let results = run_parallel(scenarios);
        let series = results
            .iter()
            .zip(["odometry only", "RF localization only", "CoCoA"])
            .map(|(m, label)| Series::from_metrics(label, m))
            .collect();
        by_speed.push((v, series));
    }
    Fig7Comparison { by_speed }
}

impl Fig7Comparison {
    /// Renders the figure's series as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (v, series) in &self.by_speed {
            out.push_str(&render_series_table(
                &format!("Fig. 7 — error over time at v_max = {v} m/s (T = 100 s)"),
                series,
                10,
            ));
        }
        out
    }

    /// The headline comparison the paper quotes (CoCoA ≈ 6.5 m vs RF-only
    /// ≈ 33 m at 2 m/s): returns `(cocoa_mean, rf_only_mean)`.
    pub fn headline(&self) -> Option<(f64, f64)> {
        let (_, series) = self.by_speed.iter().find(|(v, _)| *v == 2.0)?;
        let rf = series.iter().find(|s| s.label.starts_with("RF"))?;
        let cocoa = series.iter().find(|s| s.label == "CoCoA")?;
        Some((cocoa.mean(), rf.mean()))
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — error CDFs at three time instants
// ---------------------------------------------------------------------------

/// Output of the Fig. 8 regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Cdf {
    /// The run's metrics; `metrics.snapshots` holds the three CDFs: end of
    /// beacon period, end of transmit period, middle of beacon period.
    pub metrics: RunMetrics,
}

/// Regenerates paper Fig. 8: CDFs of the localization error at the end of
/// a beacon period, right after a transmit period (the paper's 804 s
/// instant), and in the middle of a beacon period, for T = 100 s.
pub fn fig8_cdf(scale: ExperimentScale) -> Fig8Cdf {
    // Land just before the window nearest 45% of the run (the paper's
    // 799/804/854 s instants for its 1800 s run with T = 100 s).
    let base = ((scale.duration.as_secs_f64() * 0.45 / 100.0).floor() * 100.0 - 1.0).max(99.0);
    let s = scale
        .base_builder()
        .mode(EstimatorMode::Cocoa)
        .beacon_period(SimDuration::from_secs(100))
        .snapshots([
            SimTime::from_secs_f64(base),
            SimTime::from_secs_f64(base + 5.0),
            SimTime::from_secs_f64(base + 55.0),
        ])
        .build();
    Fig8Cdf { metrics: run(&s) }
}

impl Fig8Cdf {
    /// Renders the CDF summary (fractions below 5/10/20 m per instant).
    pub fn render(&self) -> String {
        let labels = [
            "end of beacon period   ",
            "end of transmit period ",
            "middle of beacon period",
        ];
        let mut out = String::from("# Fig. 8 — CDF of localization error (T = 100 s)\n");
        for (snap, label) in self.metrics.snapshots.iter().zip(labels) {
            if snap.errors_m.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{label} (t = {:.0} s): P[e<=5m] = {:.2}, P[e<=10m] = {:.2}, P[e<=20m] = {:.2}, median = {:.1} m\n",
                snap.time.as_secs_f64(),
                snap.fraction_below(5.0),
                snap.fraction_below(10.0),
                snap.fraction_below(20.0),
                snap.percentile(0.5),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — impact of the beacon period on error and energy
// ---------------------------------------------------------------------------

/// One row of the Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodPoint {
    /// Beacon period `T`, seconds.
    pub period_s: u64,
    /// Mean localization error over time, metres.
    pub mean_error_m: f64,
    /// Mean error excluding the cold start before the first possible fix
    /// of the largest swept period, metres (comparable across periods).
    pub steady_error_m: f64,
    /// Team energy with sleep coordination, joules.
    pub energy_coordinated_j: f64,
    /// Team energy without coordination (radios idle), joules.
    pub energy_uncoordinated_j: f64,
    /// The error series (Fig. 9(a)'s curves).
    pub series: Series,
}

impl PeriodPoint {
    /// How many times more energy the uncoordinated system burns.
    pub fn savings_factor(&self) -> f64 {
        if self.energy_coordinated_j == 0.0 {
            0.0
        } else {
            self.energy_uncoordinated_j / self.energy_coordinated_j
        }
    }
}

/// Output of the Fig. 9 regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Period {
    /// One entry per beacon period.
    pub points: Vec<PeriodPoint>,
}

/// Builds the Fig. 9 scenario family: `periods × {coordinated, not}`.
///
/// Public so the perf harness can time the exact same family through the
/// cold and warm sweep paths.
pub fn fig9_scenarios(scale: ExperimentScale, periods_s: &[u64]) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &t in periods_s {
        for coordination in [true, false] {
            scenarios.push(
                scale
                    .base_builder()
                    .mode(EstimatorMode::Cocoa)
                    .beacon_period(SimDuration::from_secs(t))
                    .coordination(coordination)
                    .build(),
            );
        }
    }
    scenarios
}

/// Regenerates paper Fig. 9: localization error (a) and team energy with
/// vs without sleep coordination (b) across beacon periods (paper:
/// 10/50/100/300 s).
pub fn fig9_period(scale: ExperimentScale, periods_s: &[u64]) -> Fig9Period {
    fig9_assemble(periods_s, run_parallel(fig9_scenarios(scale, periods_s)))
}

/// [`fig9_period`] on the warm-start path: the seed's setup is captured
/// once as a time-zero snapshot and every `(period, coordination)` point
/// forks it via [`WarmArtifacts::fork`]. Produces bit-identical figures to
/// [`fig9_period`] (pinned by test) in less wall-clock time.
pub fn fig9_period_warm(scale: ExperimentScale, periods_s: &[u64]) -> Fig9Period {
    fig9_assemble(
        periods_s,
        run_warm_parallel(fig9_scenarios(scale, periods_s)),
    )
}

fn fig9_assemble(periods_s: &[u64], results: Vec<RunMetrics>) -> Fig9Period {
    let warmup_s = periods_s.iter().copied().max().unwrap_or(0) as f64 + 10.0;
    let points = periods_s
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let with = &results[i * 2];
            let without = &results[i * 2 + 1];
            PeriodPoint {
                period_s: t,
                mean_error_m: with.mean_error_over_time(),
                steady_error_m: with.mean_error_after(warmup_s),
                energy_coordinated_j: with.energy.total_j(),
                energy_uncoordinated_j: without.energy.total_j(),
                series: Series::from_metrics(format!("T = {t} s"), with),
            }
        })
        .collect();
    Fig9Period { points }
}

impl Fig9Period {
    /// Renders both panels as text tables.
    pub fn render(&self) -> String {
        let mut out = String::from("# Fig. 9 — impact of beacon period T (50% equipped)\n");
        out.push_str("(a) T[s]  mean error [m]  steady-state [m]\n");
        for p in &self.points {
            out.push_str(&format!(
                "    {:>4}  {:>8.2}  {:>8.2}\n",
                p.period_s, p.mean_error_m, p.steady_error_m
            ));
        }
        out.push_str("(b) T[s]  coordinated [J]  uncoordinated [J]  savings\n");
        for p in &self.points {
            out.push_str(&format!(
                "    {:>4}  {:>12.1}  {:>12.1}  {:.1}x\n",
                p.period_s,
                p.energy_coordinated_j,
                p.energy_uncoordinated_j,
                p.savings_factor()
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 10 — impact of the number of equipped robots
// ---------------------------------------------------------------------------

/// One row of the Fig. 10 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquippedPoint {
    /// Robots carrying localization devices.
    pub equipped: usize,
    /// Mean localization error over time, metres.
    pub mean_error_m: f64,
    /// Mean error after the cold start (first two periods), metres.
    pub steady_error_m: f64,
    /// Maximum of the per-second mean error, metres.
    pub max_error_m: f64,
}

/// Output of the Fig. 10 regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Equipped {
    /// One entry per equipped-count.
    pub points: Vec<EquippedPoint>,
}

/// Regenerates paper Fig. 10: localization error as the number of robots
/// with localization devices varies (paper: 5 to 35).
pub fn fig10_equipped(scale: ExperimentScale, equipped: &[usize]) -> Fig10Equipped {
    let scenarios: Vec<Scenario> = equipped
        .iter()
        .map(|&n| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .equipped(n)
                .beacon_period(SimDuration::from_secs(100))
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    Fig10Equipped {
        points: equipped
            .iter()
            .zip(&results)
            .map(|(&n, m)| EquippedPoint {
                equipped: n,
                mean_error_m: m.mean_error_over_time(),
                steady_error_m: m.mean_error_after(210.0),
                max_error_m: m.max_error_over_time(),
            })
            .collect(),
    }
}

impl Fig10Equipped {
    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Fig. 10 — impact of number of robots with localization devices\n\
             equipped  mean error [m]  steady-state [m]  max error [m]\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "    {:>4}  {:>10.2}  {:>10.2}  {:>10.2}\n",
                p.equipped, p.mean_error_m, p.steady_error_m, p.max_error_m
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md) — relay beaconing, grid resolution, sync, tx power
// ---------------------------------------------------------------------------

/// A labelled `(configuration, mean error, energy, fixes)` ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// What was varied.
    pub label: String,
    /// Mean localization error over time, metres.
    pub mean_error_m: f64,
    /// Team energy, joules.
    pub energy_j: f64,
    /// Fresh fixes obtained.
    pub fixes: u64,
}

fn ablation_row(label: impl Into<String>, m: &RunMetrics) -> AblationRow {
    AblationRow {
        label: label.into(),
        mean_error_m: m.mean_error_over_time(),
        energy_j: m.energy.total_j(),
        fixes: m.traffic.fixes,
    }
}

/// Relay-beaconing ablation (paper Section 6 future work): localized
/// unequipped robots also beacon, in a team with few equipped robots.
pub fn ablation_relay_beaconing(scale: ExperimentScale) -> Vec<AblationRow> {
    // Sparse enough that many robots miss beacons without relaying.
    let equipped = (scale.num_robots / 10).max(1);
    let scenarios: Vec<Scenario> = [false, true]
        .into_iter()
        .map(|relay| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .equipped(equipped)
                .relay_beaconing(relay)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(["relay off", "relay on"])
        .map(|(m, label)| ablation_row(format!("{label} ({equipped} equipped)"), m))
        .collect()
}

/// Grid-resolution ablation: accuracy of the Bayesian posterior at
/// 1/2/4/8 m cells (DESIGN.md decision 2).
pub fn ablation_grid_resolution(scale: ExperimentScale) -> Vec<AblationRow> {
    let scenarios: Vec<Scenario> = [1.0, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|res| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .grid_resolution(res)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(["1 m grid", "2 m grid", "4 m grid", "8 m grid"])
        .map(|(m, label)| ablation_row(label, m))
        .collect()
}

/// Synchronization ablation: CoCoA with the MRMM SYNC service disabled,
/// at realistic and exaggerated clock skews.
pub fn ablation_sync(scale: ExperimentScale) -> Vec<AblationRow> {
    let scenarios: Vec<Scenario> = [(true, 100.0), (false, 100.0), (false, 2000.0)]
        .into_iter()
        .map(|(sync, ppm)| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .sync_enabled(sync)
                .clock_skew_ppm(ppm)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip([
            "sync on, 100 ppm clocks",
            "sync off, 100 ppm clocks",
            "sync off, 2000 ppm clocks",
        ])
        .map(|(m, label)| ablation_row(label, m))
        .collect()
}

/// RF-algorithm ablation (paper Section 5): the Bayesian algorithm vs the
/// classic weighted-least-squares multilateration baseline, on identical
/// beacons.
pub fn ablation_rf_algorithm(scale: ExperimentScale) -> Vec<AblationRow> {
    use cocoa_localization::estimator::RfAlgorithm;
    let scenarios: Vec<Scenario> = [RfAlgorithm::Bayes, RfAlgorithm::Multilateration]
        .into_iter()
        .map(|algo| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .rf_algorithm(algo)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip([
            "bayesian inference (paper)",
            "wls multilateration (baseline)",
        ])
        .map(|(m, label)| ablation_row(label, m))
        .collect()
}

/// Transmission-power ablation (paper Section 6): sweep the beacon tx
/// power and observe the range-vs-sharpness trade-off.
pub fn ablation_tx_power(scale: ExperimentScale) -> Vec<AblationRow> {
    let scenarios: Vec<Scenario> = [5.0, 10.0, 15.0, 20.0]
        .into_iter()
        .map(|dbm| {
            let ch = cocoa_net::channel::ChannelParams {
                tx_power_dbm: dbm,
                ..Default::default()
            };
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .channel(ch)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(["5 dBm", "10 dBm", "15 dBm", "20 dBm"])
        .map(|(m, label)| ablation_row(format!("tx power {label}"), m))
        .collect()
}

/// Packet-loss robustness ablation: how CoCoA degrades when receptions
/// are lost to unmodelled effects (k = 3 beacons exist exactly to absorb
/// this, paper Section 2.3).
pub fn ablation_packet_loss(scale: ExperimentScale) -> Vec<AblationRow> {
    let scenarios: Vec<Scenario> = [0.0, 0.1, 0.3, 0.6]
        .into_iter()
        .map(|p| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .packet_loss(p)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(["0% loss", "10% loss", "30% loss", "60% loss"])
        .map(|(m, label)| ablation_row(label, m))
        .collect()
}

/// Fault-injection ablation (chaos harness): CoCoA under each canned
/// fault schedule — none, Sync-robot crash, 30% bursty loss, corrupted
/// beacons, and everything at once. The graceful-degradation machinery
/// (entropy watchdog, outlier gate, Sync failover) should keep the error
/// bounded in every row.
pub fn ablation_faults(scale: ExperimentScale) -> Vec<AblationRow> {
    use cocoa_sim::faults::{FaultPlan, PRESET_NAMES};
    let scenarios: Vec<Scenario> = PRESET_NAMES
        .iter()
        .map(|name| {
            let plan = FaultPlan::preset(name, scale.duration, scale.num_robots)
                .expect("preset names are exhaustive");
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .faults(plan)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(PRESET_NAMES)
        .map(|(m, name)| {
            let mut row = ablation_row(format!("faults: {name}"), m);
            // Dead robots are excluded from the error series; surface the
            // failover count in the label so the table tells the story.
            if m.robustness.failovers > 0 {
                row.label
                    .push_str(&format!(" ({} failovers)", m.robustness.failovers));
            }
            row
        })
        .collect()
}

/// Propagation-model ablation: the calibrated log-distance channel vs a
/// two-ray ground-reflection channel (the classic Glomosim outdoor model).
/// The calibration pipeline adapts automatically — the table is learned
/// from whichever channel is deployed.
pub fn ablation_propagation(scale: ExperimentScale) -> Vec<AblationRow> {
    use cocoa_net::channel::{ChannelParams, PathLossModel};
    let models = [
        (
            "log-distance n=3.0",
            PathLossModel::LogDistance { exponent: 3.0 },
        ),
        (
            "log-distance n=2.4",
            PathLossModel::LogDistance { exponent: 2.4 },
        ),
        (
            "two-ray ground h=0.5m",
            PathLossModel::TwoRayGround {
                antenna_height_m: 0.5,
                wavelength_m: 0.125,
            },
        ),
    ];
    let scenarios: Vec<Scenario> = models
        .iter()
        .map(|(_, model)| {
            let ch = ChannelParams {
                path_loss: *model,
                ..Default::default()
            };
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .channel(ch)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    results
        .iter()
        .zip(models)
        .map(|(m, (label, _))| ablation_row(label, m))
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation — multicast backends (flood vs ODMRP vs MRMM)
// ---------------------------------------------------------------------------

/// One row of the multicast-backend ablation: SYNC dissemination quality
/// and cost under one [`cocoa_multicast::protocol::MulticastProtocol`],
/// plus how well geographic
/// routing works over the coordinates that backend's run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastRow {
    /// The SYNC transport that ran.
    pub backend: cocoa_multicast::protocol::MulticastProtocol,
    /// Fraction of robot-windows that heard a SYNC.
    pub sync_delivery_rate: f64,
    /// Data transmissions on the air (originated + forwarded).
    pub data_transmissions: u64,
    /// Control transmissions on the air (queries + rebroadcasts + replies).
    pub control_transmissions: u64,
    /// JOIN QUERY rebroadcasts pruned (MRMM's redundancy suppression).
    pub prunes: u64,
    /// Mean localization error over time, metres.
    pub mean_error_m: f64,
    /// Team energy, joules.
    pub energy_j: f64,
    /// Greedy/face geographic-routing delivery rate over the believed
    /// coordinates at the end of the run (Section 6 extension).
    pub geo_delivery_rate: f64,
}

impl MulticastRow {
    /// Everything the backend put on the air: data plus mesh control.
    /// Every robot is a SYNC member, so member-driven data forwarding is
    /// near-identical across backends — where MRMM earns its keep is the
    /// control plane (fewer rebroadcasts and replies on longer-lived
    /// routes), which this total exposes.
    pub fn total_transmissions(&self) -> u64 {
        self.data_transmissions + self.control_transmissions
    }
}

/// Multicast-backend ablation: disseminate SYNC over blind flooding,
/// classic ODMRP and the paper's MRMM, on otherwise identical scenarios,
/// and compare delivery, traffic, energy and localization. Every backend
/// sees the same seed, so the placement, motion and channel draws match.
pub fn ablation_multicast(scale: ExperimentScale) -> Vec<MulticastRow> {
    use cocoa_georouting::prelude::*;
    use cocoa_multicast::protocol::MulticastProtocol;
    use rand::Rng;

    let scenarios: Vec<Scenario> = MulticastProtocol::ALL
        .into_iter()
        .map(|p| {
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .multicast(p)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    MulticastProtocol::ALL
        .into_iter()
        .zip(&results)
        .map(|(backend, m)| {
            let tr = &m.traffic;
            let windows = tr.syncs_delivered + tr.syncs_missed;
            // Route over the team's believed coordinates at the end of the
            // run: a mesh that starves localization of SYNC (sleep windows
            // drift apart) degrades the coordinates every other service
            // consumes.
            let nodes: Vec<RoutingNode> = m
                .final_states
                .iter()
                .map(|r| RoutingNode {
                    true_position: r.true_position,
                    believed_position: r.estimate,
                })
                .collect();
            let graph = UnitDiskGraph::new(nodes, 50.0);
            let mut rng = SeedSplitter::new(scale.seed).stream("pairs", 0);
            let n = graph.len();
            let pairs: Vec<(usize, usize)> = (0..200)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let geo = delivery_experiment(&graph, &pairs);
            MulticastRow {
                backend,
                sync_delivery_rate: if windows == 0 {
                    0.0
                } else {
                    tr.syncs_delivered as f64 / windows as f64
                },
                data_transmissions: m.mesh.data_originated + m.mesh.data_forwarded,
                control_transmissions: m.mesh.control_overhead(),
                prunes: m.mesh.queries_suppressed,
                mean_error_m: m.mean_error_over_time(),
                energy_j: m.energy.total_j(),
                geo_delivery_rate: geo.delivery_rate(),
            }
        })
        .collect()
}

/// Renders the multicast ablation as a text table.
pub fn render_multicast_ablation(rows: &[MulticastRow]) -> String {
    let mut out = String::from(
        "# Ablation — SYNC multicast backend (flood vs ODMRP vs MRMM)\n\
         backend  sync del.  data tx  ctrl tx  pruned  error [m]  energy [J]  geo del.\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<7}  {:>8.1}%  {:>7}  {:>7}  {:>6}  {:>9.2}  {:>10.1}  {:>7.1}%\n",
            r.backend.as_str(),
            r.sync_delivery_rate * 100.0,
            r.data_transmissions,
            r.control_transmissions,
            r.prunes,
            r.mean_error_m,
            r.energy_j,
            r.geo_delivery_rate * 100.0,
        ));
    }
    let find =
        |p: cocoa_multicast::protocol::MulticastProtocol| rows.iter().find(|r| r.backend == p);
    if let (Some(odmrp), Some(mrmm)) = (
        find(cocoa_multicast::protocol::MulticastProtocol::Odmrp),
        find(cocoa_multicast::protocol::MulticastProtocol::Mrmm),
    ) {
        out.push_str(&format!(
            "headline: MRMM forwards {} mesh transmissions vs ODMRP's {} \
             at {:.1}% vs {:.1}% SYNC delivery\n",
            mrmm.total_transmissions(),
            odmrp.total_transmissions(),
            mrmm.sync_delivery_rate * 100.0,
            odmrp.sync_delivery_rate * 100.0,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Ablation — estimator backends (Bayes vs multilateration vs EKF)
// ---------------------------------------------------------------------------

/// One row of the estimator-backend ablation: localization quality and
/// cost under one [`cocoa_localization::estimator::RfAlgorithm`], on
/// beacons drawn from the identical seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorRow {
    /// The per-window RF solver that ran.
    pub algorithm: cocoa_localization::estimator::RfAlgorithm,
    /// The injected fault preset (`"none"` for the clean rows).
    pub faults: String,
    /// Mean localization error over time, metres.
    pub mean_error_m: f64,
    /// Team energy, joules.
    pub energy_j: f64,
    /// Beacons put on the air (the estimator's input traffic).
    pub beacons_sent: u64,
    /// Position fixes produced over the run.
    pub fixes: u64,
    /// Beacons the shared claimed-distance outlier gate refused to fuse
    /// (for the EKF this includes innovation-gated updates).
    pub outliers_rejected: u64,
}

/// Estimator-backend ablation (paper Section 5: CoCoA "is not tied to a
/// specific localization technique"): run the Bayesian grid, WLS
/// multilateration and the EKF on identical seeds — same placement,
/// motion, channel draws and beacon traffic — and compare error, energy
/// and traffic. A final row reruns the EKF under the `chaos` fault
/// preset, so the innovation gate's behaviour under corrupted beacons is
/// part of the figure.
pub fn ablation_estimator(scale: ExperimentScale) -> Vec<EstimatorRow> {
    use cocoa_localization::estimator::RfAlgorithm;
    use cocoa_sim::faults::FaultPlan;
    let configs: Vec<(RfAlgorithm, &str)> = vec![
        (RfAlgorithm::Bayes, "none"),
        (RfAlgorithm::Multilateration, "none"),
        (RfAlgorithm::Ekf, "none"),
        (RfAlgorithm::Ekf, "chaos"),
    ];
    let scenarios: Vec<Scenario> = configs
        .iter()
        .map(|&(algo, preset)| {
            let plan = FaultPlan::preset(preset, scale.duration, scale.num_robots)
                .expect("preset names are canned");
            scale
                .base_builder()
                .mode(EstimatorMode::Cocoa)
                .rf_algorithm(algo)
                .faults(plan)
                .build()
        })
        .collect();
    let results = run_parallel(scenarios);
    configs
        .into_iter()
        .zip(&results)
        .map(|((algorithm, preset), m)| EstimatorRow {
            algorithm,
            faults: preset.to_string(),
            mean_error_m: m.mean_error_over_time(),
            energy_j: m.energy.total_j(),
            beacons_sent: m.traffic.beacons_sent,
            fixes: m.traffic.fixes,
            outliers_rejected: m.robustness.outlier_beacons_rejected,
        })
        .collect()
}

/// Renders the estimator ablation as a text table.
pub fn render_estimator_ablation(rows: &[EstimatorRow]) -> String {
    let mut out = String::from(
        "# Ablation — estimator backend (Bayes vs multilateration vs EKF)\n\
         backend          faults  error [m]  energy [J]  beacons  fixes  outliers\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15}  {:>6}  {:>9.2}  {:>10.1}  {:>7}  {:>5}  {:>8}\n",
            r.algorithm.to_string(),
            r.faults,
            r.mean_error_m,
            r.energy_j,
            r.beacons_sent,
            r.fixes,
            r.outliers_rejected,
        ));
    }
    use cocoa_localization::estimator::RfAlgorithm;
    let find = |algo: RfAlgorithm, faults: &str| {
        rows.iter()
            .find(|r| r.algorithm == algo && r.faults == faults)
    };
    if let (Some(bayes), Some(ekf)) = (
        find(RfAlgorithm::Bayes, "none"),
        find(RfAlgorithm::Ekf, "none"),
    ) {
        out.push_str(&format!(
            "headline: EKF tracks at {:.2} m vs Bayes {:.2} m on identical \
             beacon traffic ({} beacons)",
            ekf.mean_error_m, bayes.mean_error_m, bayes.beacons_sent,
        ));
        if let Some(chaos) = find(RfAlgorithm::Ekf, "chaos") {
            out.push_str(&format!(
                "; under chaos faults the gate rejects {} beacons and holds \
                 {:.2} m",
                chaos.outliers_rejected, chaos.mean_error_m,
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders ablation rows as a text table.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!(
        "# {title}\n{:<34}  {:>10}  {:>12}  {:>6}\n",
        "config", "error [m]", "energy [J]", "fixes"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<34}  {:>10.2}  {:>12.1}  {:>6}\n",
            r.label, r.mean_error_m, r.energy_j, r.fixes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            seed: 7,
            duration: SimDuration::from_secs(120),
            num_robots: 12,
        }
    }

    #[test]
    fn fig1_shapes_match_paper() {
        let f = fig1_calibration(3);
        assert!(f.near.gaussian, "-52 dBm must be Gaussian");
        assert!(!f.far.gaussian, "-86 dBm must be non-Gaussian");
        assert!(f.table_bins > 20);
        assert!(f.render().contains("Fig. 1"));
    }

    #[test]
    fn fig4_produces_two_series() {
        let f = fig4_odometry(tiny());
        assert_eq!(f.series.len(), 2);
        assert!(f.series.iter().all(|s| !s.points.is_empty()));
        assert!(f.render().contains("odometry"));
    }

    #[test]
    fn fig9_energy_savings_positive_and_growing() {
        let f = fig9_period(tiny(), &[20, 60]);
        assert_eq!(f.points.len(), 2);
        for p in &f.points {
            assert!(
                p.savings_factor() > 1.0,
                "coordination must save energy at T = {}",
                p.period_s
            );
        }
        assert!(f.points[1].savings_factor() > f.points[0].savings_factor());
        assert!(f.render().contains("Fig. 9"));
    }

    #[test]
    fn warm_fork_sweep_matches_cold_runs() {
        // The warm-start path must be a pure wall-clock optimization:
        // every sweep point forked from the shared time-zero snapshot
        // produces bit-identical RunMetrics to a cold run of the same
        // scenario.
        let scenarios = fig9_scenarios(tiny(), &[20, 60]);
        let cold = run_parallel(scenarios.clone());
        let warm = run_warm_parallel(scenarios);
        assert_eq!(cold.len(), warm.len());
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_eq!(c, w, "point {i}: warm fork diverged from cold run");
        }
    }

    #[test]
    fn warm_sweep_of_empty_family_is_empty() {
        assert!(run_warm_parallel(Vec::new()).is_empty());
    }

    #[test]
    fn series_helpers() {
        let s = Series {
            label: "x".into(),
            points: (0..100).map(|i| (f64::from(i), f64::from(i))).collect(),
        };
        assert_eq!(s.mean(), 49.5);
        assert_eq!(s.max(), 99.0);
        assert_eq!(s.last(), 99.0);
        assert!(s.downsampled(10).points.len() <= 11);
        assert_eq!(s.downsampled(0).points.len(), 100);
    }

    #[test]
    fn ablation_faults_covers_every_preset() {
        let rows = ablation_faults(tiny());
        assert_eq!(rows.len(), cocoa_sim::faults::PRESET_NAMES.len());
        for r in &rows {
            assert!(
                r.mean_error_m.is_finite(),
                "{}: error must stay finite",
                r.label
            );
        }
    }

    #[test]
    fn ablation_multicast_runs_all_three_backends() {
        use cocoa_multicast::protocol::MulticastProtocol;
        // Full figure scale: MRMM's control-plane savings accrue from
        // mobility churn over the whole mission; short runs land in the
        // noise (the 200 m arena is near-single-hop at 150 m range).
        let rows = ablation_multicast(ExperimentScale {
            seed: 42,
            duration: SimDuration::from_secs(1800),
            num_robots: 50,
        });
        assert_eq!(rows.len(), MulticastProtocol::ALL.len());
        for (p, r) in MulticastProtocol::ALL.into_iter().zip(&rows) {
            assert_eq!(r.backend, p);
            assert!(
                r.sync_delivery_rate > 0.0,
                "{}: SYNC never arrived",
                p.as_str()
            );
            assert!(
                r.data_transmissions > 0,
                "{}: no data on the air",
                p.as_str()
            );
            assert!(r.mean_error_m.is_finite() && r.energy_j > 0.0);
        }
        // Flooding pays no control traffic; the mesh protocols do.
        assert_eq!(rows[0].control_transmissions, 0);
        assert!(rows[1].control_transmissions > 0);
        // The paper's claim, pinned: MRMM puts less traffic on the air than
        // plain ODMRP at equal-or-better SYNC delivery. (Every robot is a
        // SYNC member, so data forwarding matches; the saving is control.)
        let odmrp = &rows[1];
        let mrmm = &rows[2];
        assert!(
            mrmm.total_transmissions() < odmrp.total_transmissions(),
            "MRMM {} vs ODMRP {} transmissions",
            mrmm.total_transmissions(),
            odmrp.total_transmissions()
        );
        assert!(mrmm.sync_delivery_rate >= odmrp.sync_delivery_rate);
        let rendered = render_multicast_ablation(&rows);
        assert!(rendered.contains("mrmm") && rendered.contains("headline:"));
    }

    #[test]
    fn ablation_estimator_compares_backends_on_identical_traffic() {
        use cocoa_localization::estimator::RfAlgorithm;
        // Full figure scale, like the multicast ablation: the EKF's
        // odometry prediction only differentiates itself over a whole
        // mission of inter-window motion.
        let rows = ablation_estimator(ExperimentScale {
            seed: 42,
            duration: SimDuration::from_secs(1800),
            num_robots: 50,
        });
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.mean_error_m.is_finite() && r.energy_j > 0.0,
                "{} ({}): degenerate row",
                r.algorithm,
                r.faults
            );
            assert!(r.beacons_sent > 0 && r.fixes > 0);
        }
        // Same seed, same schedule: the estimator choice must not change
        // what goes on the air in the clean rows.
        assert_eq!(rows[0].beacons_sent, rows[1].beacons_sent);
        assert_eq!(rows[0].beacons_sent, rows[2].beacons_sent);
        // The paper's point, pinned: the grid solver and the EKF both
        // track; the faults row shows the shared outlier gate plus the
        // EKF's innovation gate actively rejecting corrupted beacons.
        let ekf_chaos = &rows[3];
        assert_eq!(ekf_chaos.algorithm, RfAlgorithm::Ekf);
        assert_eq!(ekf_chaos.faults, "chaos");
        assert!(
            ekf_chaos.outliers_rejected > 0,
            "chaos faults must exercise the outlier gate"
        );
        let rendered = render_estimator_ablation(&rows);
        assert!(rendered.contains("ekf") && rendered.contains("headline:"));
        assert!(rendered.contains("under chaos faults"));
    }

    #[test]
    fn ablation_render_contains_rows() {
        let rows = vec![AblationRow {
            label: "demo".into(),
            mean_error_m: 1.0,
            energy_j: 2.0,
            fixes: 3,
        }];
        let s = render_ablation("Demo", &rows);
        assert!(s.contains("demo") && s.contains("1.00"));
    }
}
