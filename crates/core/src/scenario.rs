//! Scenario configuration: everything a CoCoA simulation run needs.
//!
//! Defaults reproduce the paper's evaluation setup (Section 4): 50 robots
//! in a 40 000 m² (200 m × 200 m) area, half equipped with localization
//! devices, 30 simulated minutes, transmit window t = 3 s with k = 3
//! beacons, and the movement/odometry models of Section 3.

use serde::{Deserialize, Serialize};

use cocoa_localization::estimator::{EstimatorMode, RfAlgorithm};
use cocoa_localization::kernel::{GridKernel, GridPipeline, GridPrecision};
use cocoa_mobility::odometry::OdometryConfig;
use cocoa_multicast::odmrp::{MeshMode, OdmrpConfig};
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_net::channel::ChannelParams;
use cocoa_net::energy::EnergyParams;
use cocoa_net::geometry::Area;
use cocoa_sim::faults::FaultPlan;
use cocoa_sim::time::{SimDuration, SimTime};

/// A fully-specified simulation scenario.
///
/// Construct via [`Scenario::builder`]; every field is also public for
/// inspection and serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Deployment area (paper: 200 m × 200 m).
    pub area: Area,
    /// Total robots (paper: 50).
    pub num_robots: usize,
    /// Robots equipped with localization devices (paper default: 25).
    /// Ignored in [`EstimatorMode::OdometryOnly`] runs.
    pub num_equipped: usize,
    /// Simulated duration (paper: 30 minutes).
    pub duration: SimDuration,
    /// Beacon period `T` (paper sweeps 10–300 s; default 100 s).
    pub beacon_period: SimDuration,
    /// Transmit window `t` (paper: 3 s).
    pub transmit_window: SimDuration,
    /// Beacons per robot per window, `k` (paper: 3).
    pub beacons_per_window: u32,
    /// Minimum commanded robot speed, m/s (paper: 0.1). Set `v_min` and
    /// `v_max` both to zero for a static deployment (robots hold their
    /// start positions — a sensor-network-style baseline).
    pub v_min: f64,
    /// Maximum robot speed, m/s (paper: 0.5 or 2.0).
    pub v_max: f64,
    /// Which estimator the unequipped robots run.
    pub mode: EstimatorMode,
    /// Which per-window RF algorithm computes fixes (Bayes by default;
    /// multilateration is the classic baseline of paper Section 5).
    pub rf_algorithm: RfAlgorithm,
    /// Whether radios sleep between windows (CoCoA coordination). With
    /// `false`, radios idle through the whole period — the comparison line
    /// of paper Fig. 9(b).
    pub coordination: bool,
    /// Bayesian grid resolution, metres (ablation sweeps this).
    pub grid_resolution_m: f64,
    /// RF channel parameters.
    pub channel: ChannelParams,
    /// Energy model parameters.
    pub energy: EnergyParams,
    /// Odometry noise parameters.
    pub odometry: OdometryConfig,
    /// Mesh multicast (MRMM/ODMRP) timing/range parameters. The backend
    /// actually run is selected by [`Scenario::multicast`], which
    /// overrides this block's `mode`.
    pub mesh: OdmrpConfig,
    /// Which mesh multicast backend disseminates SYNC (flood baseline,
    /// plain ODMRP, or the paper's MRMM extension — the default).
    pub multicast: MulticastProtocol,
    /// Whether the Sync robot disseminates SYNC over the mesh. Disabling
    /// it leaves robots free-running on drifting clocks (ablation).
    pub sync_enabled: bool,
    /// Per-robot clock skew magnitude, parts per million. Each robot draws
    /// its skew uniformly from `[-skew, +skew]`.
    pub clock_skew_ppm: f64,
    /// How much earlier than the window start robots wake (coarse-sync
    /// slack).
    pub guard_band: SimDuration,
    /// Movement/odometry tick.
    pub tick: SimDuration,
    /// Metrics sampling interval (paper plots per-second averages).
    pub metrics_interval: SimDuration,
    /// Instants at which per-robot error snapshots are recorded (paper
    /// Fig. 8's CDFs).
    pub snapshot_times: Vec<SimTime>,
    /// Probability that any individual reception is lost to unmodelled
    /// effects (obstructions, interference bursts). Applied independently
    /// per (frame, receiver); 0.0 = the paper's clean outdoor field.
    pub packet_loss: f64,
    /// Future-work extension (paper Section 6): localized unequipped
    /// robots also beacon.
    pub relay_beaconing: bool,
    /// Relay-beaconing goodness guard: only relay if the last fix is at
    /// most this many windows old.
    pub relay_max_fix_age_windows: u64,
    /// Deterministic fault schedule (empty = benign run).
    pub faults: FaultPlan,
    /// How many beacon periods the Sync timebase may stay silent (crashed)
    /// before the team deterministically elects a replacement.
    pub failover_missed_periods: u32,
    /// Entropy watchdog threshold as a fraction of the grid's maximum
    /// entropy: a window whose posterior entropy exceeds
    /// `frac · ln(cells)` is declared flat and yields no fix. Values
    /// `>= 1.0` disable the watchdog.
    pub entropy_watchdog_frac: f64,
    /// Outlier beacon gate, metres: reject a beacon whose claimed distance
    /// from our reference estimate disagrees with the RSSI-implied
    /// distance by more than this. `0.0` disables the gate.
    pub outlier_gate_m: f64,
    /// Grid-update pipeline: kernel variant, lane precision, window-level
    /// beacon fusion and coarse-to-fine adaptive resolution. The default
    /// reproduces the reference posterior bit for bit.
    #[serde(default)]
    pub grid_pipeline: GridPipeline,
}

impl Scenario {
    /// Starts building a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Number of beacon periods that fit in the run.
    pub fn num_windows(&self) -> u64 {
        SimDuration::from_micros(self.duration.as_micros()).div_duration(self.beacon_period)
    }

    /// Whether this scenario deploys a static team (no robot ever moves:
    /// `v_min = v_max = 0`).
    pub fn is_static(&self) -> bool {
        self.v_max == 0.0
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_robots == 0 {
            return Err("scenario needs at least one robot".into());
        }
        if self.num_equipped > self.num_robots {
            return Err(format!(
                "{} equipped robots exceed the team of {}",
                self.num_equipped, self.num_robots
            ));
        }
        if self.transmit_window >= self.beacon_period {
            return Err(format!(
                "transmit window ({}) must be shorter than the beacon period ({})",
                self.transmit_window, self.beacon_period
            ));
        }
        if self.mode.uses_rf() && self.num_equipped == 0 && !self.relay_beaconing {
            return Err("RF modes need at least one beacon source".into());
        }
        if !self.v_min.is_finite() || !self.v_max.is_finite() || self.v_min < 0.0 {
            return Err(format!(
                "speed range [{}, {}] m/s must be finite and non-negative",
                self.v_min, self.v_max
            ));
        }
        if self.v_max < self.v_min {
            return Err(format!(
                "v_max {} m/s must be at least v_min {} m/s",
                self.v_max, self.v_min
            ));
        }
        if self.v_max <= 0.1 && !self.is_static() {
            return Err(format!(
                "v_max {} must exceed 0.1 m/s (or set v_min = v_max = 0 for a static deployment)",
                self.v_max
            ));
        }
        if self.multicast == MulticastProtocol::Mrmm && self.is_static() {
            // MRMM's link-lifetime scoring needs velocity: a static team
            // advertises all-stationary MobilityInfo, every link scores
            // the full horizon, and MRMM silently degrades to ODMRP.
            // Surface that as a configuration error instead.
            return Err(
                "MRMM requires a mobile team: with v_min = v_max = 0 every MobilityInfo is \
                 stationary and MRMM degrades to plain ODMRP — select the odmrp backend \
                 for static deployments"
                    .into(),
            );
        }
        if self.beacons_per_window == 0 {
            return Err("k (beacons per window) must be at least 1".into());
        }
        if self.guard_band * 2 >= self.beacon_period {
            return Err("guard band too large for the beacon period".into());
        }
        if !(0.0..1.0).contains(&self.packet_loss) {
            return Err(format!(
                "packet loss {} must be in [0, 1)",
                self.packet_loss
            ));
        }
        self.faults.validate(self.num_robots)?;
        if self.failover_missed_periods == 0 {
            return Err("failover threshold must be at least one period".into());
        }
        if !self.entropy_watchdog_frac.is_finite() || self.entropy_watchdog_frac <= 0.0 {
            return Err(format!(
                "entropy watchdog fraction {} must be positive (>= 1.0 disables)",
                self.entropy_watchdog_frac
            ));
        }
        if !self.outlier_gate_m.is_finite() || self.outlier_gate_m < 0.0 {
            return Err(format!(
                "outlier gate {} m must be finite and non-negative",
                self.outlier_gate_m
            ));
        }
        self.grid_pipeline.validate()?;
        if self.grid_pipeline.fused && self.grid_pipeline.adaptive {
            return Err(
                "fused windows and the adaptive grid cannot be combined (the batch \
                 pass is defined over the dense posterior)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Builder for [`Scenario`] (non-consuming, per Rust API guidelines).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                seed: 42,
                area: Area::square(200.0),
                num_robots: 50,
                num_equipped: 25,
                duration: SimDuration::from_secs(1800),
                beacon_period: SimDuration::from_secs(100),
                transmit_window: SimDuration::from_secs(3),
                beacons_per_window: 3,
                v_min: 0.1,
                v_max: 2.0,
                mode: EstimatorMode::Cocoa,
                rf_algorithm: RfAlgorithm::Bayes,
                coordination: true,
                grid_resolution_m: 2.0,
                channel: ChannelParams::default(),
                energy: EnergyParams::default(),
                odometry: OdometryConfig::default(),
                mesh: OdmrpConfig::default(),
                multicast: MulticastProtocol::default(),
                sync_enabled: true,
                clock_skew_ppm: 100.0,
                guard_band: SimDuration::from_millis(200),
                tick: SimDuration::from_secs(1),
                metrics_interval: SimDuration::from_secs(1),
                snapshot_times: Vec::new(),
                packet_loss: 0.0,
                relay_beaconing: false,
                relay_max_fix_age_windows: 1,
                faults: FaultPlan::new(),
                failover_missed_periods: 3,
                entropy_watchdog_frac: 0.98,
                outlier_gate_m: 80.0,
                grid_pipeline: GridPipeline::default(),
            },
        }
    }
}

impl ScenarioBuilder {
    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the deployment area.
    pub fn area(&mut self, area: Area) -> &mut Self {
        self.scenario.area = area;
        self
    }

    /// Sets the team size.
    pub fn robots(&mut self, n: usize) -> &mut Self {
        self.scenario.num_robots = n;
        self
    }

    /// Sets how many robots carry localization devices.
    pub fn equipped(&mut self, n: usize) -> &mut Self {
        self.scenario.num_equipped = n;
        self
    }

    /// Sets the simulated duration.
    pub fn duration(&mut self, d: SimDuration) -> &mut Self {
        self.scenario.duration = d;
        self
    }

    /// Sets the beacon period `T`.
    pub fn beacon_period(&mut self, t: SimDuration) -> &mut Self {
        self.scenario.beacon_period = t;
        self
    }

    /// Sets the transmit window `t`.
    pub fn transmit_window(&mut self, t: SimDuration) -> &mut Self {
        self.scenario.transmit_window = t;
        self
    }

    /// Sets `k`, the beacons per robot per window.
    pub fn beacons_per_window(&mut self, k: u32) -> &mut Self {
        self.scenario.beacons_per_window = k;
        self
    }

    /// Sets the minimum commanded robot speed.
    pub fn v_min(&mut self, v: f64) -> &mut Self {
        self.scenario.v_min = v;
        self
    }

    /// Sets the maximum robot speed.
    pub fn v_max(&mut self, v: f64) -> &mut Self {
        self.scenario.v_max = v;
        self
    }

    /// Deploys a static team: robots hold their start positions for the
    /// whole run (`v_min = v_max = 0`).
    pub fn static_team(&mut self) -> &mut Self {
        self.scenario.v_min = 0.0;
        self.scenario.v_max = 0.0;
        self
    }

    /// Selects the estimator mode.
    pub fn mode(&mut self, mode: EstimatorMode) -> &mut Self {
        self.scenario.mode = mode;
        self
    }

    /// Selects the per-window RF algorithm.
    pub fn rf_algorithm(&mut self, algorithm: RfAlgorithm) -> &mut Self {
        self.scenario.rf_algorithm = algorithm;
        self
    }

    /// Enables or disables sleep coordination.
    pub fn coordination(&mut self, on: bool) -> &mut Self {
        self.scenario.coordination = on;
        self
    }

    /// Sets the Bayesian grid resolution.
    pub fn grid_resolution(&mut self, metres: f64) -> &mut Self {
        self.scenario.grid_resolution_m = metres;
        self
    }

    /// Overrides the channel parameters.
    pub fn channel(&mut self, params: ChannelParams) -> &mut Self {
        self.scenario.channel = params;
        self
    }

    /// Overrides the energy parameters.
    pub fn energy(&mut self, params: EnergyParams) -> &mut Self {
        self.scenario.energy = params;
        self
    }

    /// Overrides the odometry noise parameters.
    pub fn odometry(&mut self, params: OdometryConfig) -> &mut Self {
        self.scenario.odometry = params;
        self
    }

    /// Overrides the mesh multicast parameters. The parameter block's
    /// `mode` also selects the matching backend, so pre-existing callers
    /// that switched modes through here keep their meaning.
    pub fn mesh(&mut self, params: OdmrpConfig) -> &mut Self {
        self.scenario.multicast = match params.mode {
            MeshMode::Odmrp => MulticastProtocol::Odmrp,
            MeshMode::Mrmm => MulticastProtocol::Mrmm,
        };
        self.scenario.mesh = params;
        self
    }

    /// Selects the mesh multicast backend (flood / odmrp / mrmm).
    pub fn multicast(&mut self, protocol: MulticastProtocol) -> &mut Self {
        self.scenario.multicast = protocol;
        self
    }

    /// Enables or disables SYNC dissemination.
    pub fn sync_enabled(&mut self, on: bool) -> &mut Self {
        self.scenario.sync_enabled = on;
        self
    }

    /// Sets the clock-skew magnitude, ppm.
    pub fn clock_skew_ppm(&mut self, ppm: f64) -> &mut Self {
        self.scenario.clock_skew_ppm = ppm;
        self
    }

    /// Sets the wake guard band.
    pub fn guard_band(&mut self, d: SimDuration) -> &mut Self {
        self.scenario.guard_band = d;
        self
    }

    /// Requests per-robot error snapshots at the given instants (Fig. 8).
    pub fn snapshots(&mut self, times: impl IntoIterator<Item = SimTime>) -> &mut Self {
        self.scenario.snapshot_times = times.into_iter().collect();
        self
    }

    /// Enables the relay-beaconing extension.
    pub fn relay_beaconing(&mut self, on: bool) -> &mut Self {
        self.scenario.relay_beaconing = on;
        self
    }

    /// Sets the per-reception loss probability (robustness studies).
    pub fn packet_loss(&mut self, p: f64) -> &mut Self {
        self.scenario.packet_loss = p;
        self
    }

    /// Installs a deterministic fault schedule.
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.scenario.faults = plan;
        self
    }

    /// Sets how many silent periods trigger Sync-timebase failover.
    pub fn failover_missed_periods(&mut self, k: u32) -> &mut Self {
        self.scenario.failover_missed_periods = k;
        self
    }

    /// Sets the entropy watchdog threshold fraction (`>= 1.0` disables).
    pub fn entropy_watchdog_frac(&mut self, frac: f64) -> &mut Self {
        self.scenario.entropy_watchdog_frac = frac;
        self
    }

    /// Sets the outlier beacon gate in metres (`0.0` disables).
    pub fn outlier_gate_m(&mut self, gate: f64) -> &mut Self {
        self.scenario.outlier_gate_m = gate;
        self
    }

    /// Sets the whole grid-update pipeline at once.
    pub fn grid_pipeline(&mut self, pipeline: GridPipeline) -> &mut Self {
        self.scenario.grid_pipeline = pipeline;
        self
    }

    /// Selects the grid kernel variant.
    pub fn grid_kernel(&mut self, kernel: GridKernel) -> &mut Self {
        self.scenario.grid_pipeline.kernel = kernel;
        self
    }

    /// Selects the lane arithmetic precision.
    pub fn grid_precision(&mut self, precision: GridPrecision) -> &mut Self {
        self.scenario.grid_pipeline.precision = precision;
        self
    }

    /// Enables/disables fused (whole-window) beacon batching.
    pub fn grid_fused(&mut self, fused: bool) -> &mut Self {
        self.scenario.grid_pipeline.fused = fused;
        self
    }

    /// Enables/disables the coarse-to-fine adaptive posterior.
    pub fn grid_adaptive(&mut self, adaptive: bool) -> &mut Self {
        self.scenario.grid_pipeline.adaptive = adaptive;
        self
    }

    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates an invariant; use
    /// [`ScenarioBuilder::try_build`] for a fallible version.
    pub fn build(&self) -> Scenario {
        self.try_build().expect("invalid scenario")
    }

    /// Builds the scenario, returning the violated invariant on failure.
    ///
    /// # Errors
    ///
    /// See [`Scenario::validate`].
    pub fn try_build(&self) -> Result<Scenario, String> {
        self.scenario.validate()?;
        Ok(self.scenario.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = Scenario::builder().build();
        assert_eq!(s.num_robots, 50);
        assert_eq!(s.num_equipped, 25);
        assert!((s.area.width() * s.area.height() - 40_000.0).abs() < 1e-9);
        assert_eq!(s.duration, SimDuration::from_secs(1800));
        assert_eq!(s.transmit_window, SimDuration::from_secs(3));
        assert_eq!(s.beacons_per_window, 3);
        assert_eq!(s.num_windows(), 18);
    }

    #[test]
    fn builder_round_trips_fields() {
        let s = Scenario::builder()
            .seed(7)
            .robots(10)
            .equipped(4)
            .v_max(0.5)
            .beacon_period(SimDuration::from_secs(50))
            .mode(EstimatorMode::RfOnly)
            .coordination(false)
            .build();
        assert_eq!(s.seed, 7);
        assert_eq!(s.num_robots, 10);
        assert_eq!(s.num_equipped, 4);
        assert_eq!(s.v_max, 0.5);
        assert!(!s.coordination);
        assert_eq!(s.mode, EstimatorMode::RfOnly);
    }

    #[test]
    fn rejects_equipped_exceeding_team() {
        let err = Scenario::builder().robots(10).equipped(11).try_build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_window_longer_than_period() {
        let err = Scenario::builder()
            .beacon_period(SimDuration::from_secs(2))
            .try_build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_rf_mode_without_sources() {
        let err = Scenario::builder()
            .equipped(0)
            .mode(EstimatorMode::RfOnly)
            .try_build();
        assert!(err.is_err());
        // Odometry-only mode is fine without beacon sources.
        assert!(Scenario::builder()
            .equipped(0)
            .mode(EstimatorMode::OdometryOnly)
            .try_build()
            .is_ok());
    }

    #[test]
    fn rejects_fault_plan_targeting_missing_robot() {
        use cocoa_sim::faults::Fault;
        let mut plan = FaultPlan::new();
        plan.schedule(SimTime::from_secs(10), Fault::Crash { robot: 50 });
        let err = Scenario::builder().faults(plan).try_build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_zero_failover_threshold() {
        let err = Scenario::builder().failover_missed_periods(0).try_build();
        assert!(err.is_err());
    }

    #[test]
    fn fault_preset_builds_valid_scenario() {
        let mut b = Scenario::builder();
        let d = b.try_build().unwrap().duration;
        let plan = FaultPlan::preset("chaos", d, 50).unwrap();
        let s = b.faults(plan).build();
        assert!(!s.faults.is_empty());
    }

    #[test]
    fn mesh_mode_selects_the_matching_backend() {
        let s = Scenario::builder()
            .mesh(OdmrpConfig {
                mode: MeshMode::Odmrp,
                ..OdmrpConfig::default()
            })
            .build();
        assert_eq!(s.multicast, MulticastProtocol::Odmrp);
        assert_eq!(
            Scenario::builder().build().multicast,
            MulticastProtocol::Mrmm
        );
    }

    #[test]
    fn rejects_mrmm_on_a_static_team() {
        // A static team advertises all-stationary MobilityInfo, silently
        // degrading MRMM to ODMRP — that must be a config error.
        let err = Scenario::builder().static_team().try_build();
        assert!(err.is_err(), "default backend is MRMM");
        let msg = err.unwrap_err();
        assert!(msg.contains("MRMM"), "unexpected message: {msg}");
        // The same deployment under ODMRP or flooding is fine.
        for p in [MulticastProtocol::Odmrp, MulticastProtocol::Flood] {
            assert!(Scenario::builder()
                .static_team()
                .multicast(p)
                .try_build()
                .is_ok());
        }
    }

    #[test]
    fn rejects_inverted_or_negative_speed_range() {
        assert!(Scenario::builder()
            .v_min(3.0)
            .v_max(2.0)
            .try_build()
            .is_err());
        assert!(Scenario::builder().v_min(-0.5).try_build().is_err());
        // A crawling-but-mobile team still trips the v_max floor.
        assert!(Scenario::builder()
            .v_min(0.0)
            .v_max(0.05)
            .try_build()
            .is_err());
    }

    #[test]
    fn snapshot_times_recorded() {
        let s = Scenario::builder()
            .snapshots([SimTime::from_secs(804), SimTime::from_secs(850)])
            .build();
        assert_eq!(s.snapshot_times.len(), 2);
    }
}
