//! `cocoa-serve` — sweep-as-a-service over plain HTTP/1.1 + JSONL.
//!
//! ```sh
//! # serve (ephemeral port; the bound address is printed on stdout)
//! cargo run --release -p cocoa-core --bin cocoa-serve -- --addr 127.0.0.1:0
//!
//! # submit a spec and tail the streamed telemetry
//! cargo run --release -p cocoa-core --bin cocoa-serve -- \
//!     --submit spec.json --addr 127.0.0.1:7071
//! ```
//!
//! The same binary is both the server and the client, so a round trip
//! needs no curl and no extra tooling — handy offline and in CI.

use std::io::Write;
use std::time::Duration;

use cocoa_core::serve::{client, example_spec, ServeConfig, Server};

const USAGE: &str = "\
cocoa-serve — run CoCoA scenarios as a batch service

USAGE:
    cocoa-serve [OPTIONS]                 start serving
    cocoa-serve --submit SPEC [OPTIONS]   post a spec, tail the stream
    cocoa-serve --stats [OPTIONS]         print server counters
    cocoa-serve --shutdown [OPTIONS]      ask the server to drain
    cocoa-serve --spec-template           print a starter spec

SERVER OPTIONS:
    --addr HOST:PORT    bind address (port 0 = ephemeral)
                                          [default: 127.0.0.1:7071]
    --max-jobs N        concurrent run limit [default: CPU count, max 8]
    --deadline SECS     per-run wall-clock deadline
    --state-dir DIR     persist results; restore them on restart
    --quiet             no per-request log lines on stderr

CLIENT OPTIONS:
    --submit SPEC       path to a spec file ('-' reads stdin)
    --out PATH          write the streamed JSONL here instead of stdout
    --stats             GET /v1/stats and print it
    --shutdown          POST /v1/shutdown
    --addr HOST:PORT    server to talk to    [default: 127.0.0.1:7071]

    -h, --help          print this help

The server prints `listening on HOST:PORT` on stdout once bound, then
serves until SIGTERM/SIGINT or POST /v1/shutdown; in-flight runs drain
to completion before exit.

EXIT CODES:
    0   success
    2   usage error
    3   the server rejected the spec (validation)
    4   runtime/transport failure
    6   the run exceeded the server-side deadline
";

const EXIT_USAGE: i32 = 2;
const EXIT_VALIDATION: i32 = 3;
const EXIT_RUNTIME: i32 = 4;
const EXIT_DEADLINE: i32 = 6;

enum Mode {
    Serve,
    Submit(String),
    Stats,
    Shutdown,
    SpecTemplate,
}

struct Args {
    mode: Mode,
    addr: String,
    max_jobs: Option<usize>,
    deadline: Option<Duration>,
    state_dir: Option<std::path::PathBuf>,
    quiet: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Serve,
        addr: "127.0.0.1:7071".into(),
        max_jobs: None,
        deadline: None,
        state_dir: None,
        quiet: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--max-jobs" => {
                let n: usize = value("--max-jobs")?
                    .parse()
                    .map_err(|e| format!("--max-jobs: {e}"))?;
                if n == 0 {
                    return Err("--max-jobs must be at least 1".into());
                }
                args.max_jobs = Some(n);
            }
            "--deadline" => {
                let s: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--deadline must be positive".into());
                }
                args.deadline = Some(Duration::from_secs_f64(s));
            }
            "--state-dir" => args.state_dir = Some(value("--state-dir")?.into()),
            "--quiet" => args.quiet = true,
            "--submit" => args.mode = Mode::Submit(value("--submit")?),
            "--out" => args.out = Some(value("--out")?),
            "--stats" => args.mode = Mode::Stats,
            "--shutdown" => args.mode = Mode::Shutdown,
            "--spec-template" => args.mode = Mode::SpecTemplate,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    match std::mem::replace(&mut args.mode, Mode::Serve) {
        Mode::SpecTemplate => {
            print!("{}", example_spec());
            0
        }
        Mode::Stats => match client::get(&args.addr, "/v1/stats") {
            Ok(response) => {
                print!("{}", response.body_str());
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_RUNTIME
            }
        },
        Mode::Shutdown => match client::shutdown(&args.addr) {
            Ok(_) => {
                eprintln!("server at {} is draining", args.addr);
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_RUNTIME
            }
        },
        Mode::Submit(spec_path) => run_submit(&args, &spec_path),
        Mode::Serve => run_serve(args),
    }
}

fn run_submit(args: &Args, spec_path: &str) -> i32 {
    let spec = if spec_path == "-" {
        let mut text = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin(), &mut text) {
            Ok(_) => text,
            Err(e) => {
                eprintln!("error: cannot read stdin: {e}");
                return EXIT_RUNTIME;
            }
        }
    } else {
        match std::fs::read_to_string(spec_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {spec_path}: {e}");
                return EXIT_RUNTIME;
            }
        }
    };
    // Tail the stream to --out (or stdout) as lines arrive.
    let mut file_out;
    let mut stdout_out;
    let out: &mut dyn Write = match &args.out {
        Some(path) => {
            file_out = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot create {path}: {e}");
                    return EXIT_RUNTIME;
                }
            };
            &mut file_out
        }
        None => {
            stdout_out = std::io::stdout();
            &mut stdout_out
        }
    };
    let response = match client::submit_tailed(&args.addr, &spec, out) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_RUNTIME;
        }
    };
    match response.status {
        200 => {
            let cache = response.cache_status().unwrap_or("?").to_string();
            let fingerprint = response
                .header("X-Cocoa-Fingerprint")
                .unwrap_or("?")
                .to_string();
            match response.metrics() {
                Ok(metrics) => eprintln!(
                    "run {fingerprint} ({cache}): mean error {:.2} m, team energy {:.0} J",
                    metrics.mean_error_over_time(),
                    metrics.energy.total_j()
                ),
                Err(e) => {
                    eprintln!("error: response carried no decodable metrics: {e}");
                    return EXIT_RUNTIME;
                }
            }
            0
        }
        400 => {
            eprintln!("error: server rejected the spec:\n{}", response.body_str());
            EXIT_VALIDATION
        }
        504 => {
            eprintln!("error: run exceeded the server deadline");
            EXIT_DEADLINE
        }
        status => {
            eprintln!("error: server returned {status}:\n{}", response.body_str());
            EXIT_RUNTIME
        }
    }
}

fn run_serve(args: Args) -> i32 {
    cocoa_signal::install_shutdown_handler();
    let mut cfg = ServeConfig {
        addr: args.addr,
        job_deadline: args.deadline,
        state_dir: args.state_dir,
        quiet: args.quiet,
        ..ServeConfig::default()
    };
    if let Some(n) = args.max_jobs {
        cfg.max_jobs = n;
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_RUNTIME;
        }
    };
    // Scripts scrape this line for the ephemeral port, so it goes to
    // stdout and is flushed immediately.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    0
}
