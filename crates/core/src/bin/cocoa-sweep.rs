//! `cocoa-sweep` — supervised beacon-period sweeps with auto-resume.
//!
//! Runs one scenario per `--periods` entry under the supervision layer:
//! each point is panic-isolated, deadline-guarded and retried with
//! deterministic backoff. With `--manifest`, progress is checkpointed so
//! a killed sweep resumes where it stopped — completed points are
//! skipped, in-flight points warm-resume from their last snapshot, and
//! the resumed metrics are byte-identical to an uninterrupted run.
//!
//! ```sh
//! cocoa-sweep --robots 20 --equipped 10 --duration 600 \
//!     --periods 20,60,100 --manifest sweep.csnp --inflight 60
//! ```
//!
//! The `--inject-*` flags exist for the chaos tests in CI: they provoke
//! panics and hangs at chosen points so the supervisor's behaviour can
//! be exercised end to end from the command line.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cocoa_core::executor::fleet::FleetStatus;
use cocoa_core::executor::manifest::encode_metrics;
use cocoa_core::executor::supervisor::JobEvent;
use cocoa_core::prelude::*;
use cocoa_core::report;
use cocoa_sim::snapshot::crc32;
use cocoa_sim::telemetry::export::MetricsSnapshot;
use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};
use cocoa_sim::time::SimDuration;

const USAGE: &str = "\
cocoa-sweep — supervised beacon-period sweep with checkpoint/auto-resume

USAGE:
    cocoa-sweep [OPTIONS]

OPTIONS:
    --periods LIST      comma-separated beacon periods, seconds
                                                     [default: 20,60,100]
    --seed N            master seed                  [default: 42]
    --robots N          team size                    [default: 50]
    --equipped N        robots with devices          [default: 25]
    --duration SECS     simulated seconds            [default: 1800]
    --manifest PATH     checkpoint the sweep here and auto-resume from
                        it on the next invocation
    --inflight SECS     simulated seconds between in-flight checkpoints
                        of each running point (requires --manifest to
                        be useful)
    --deadline SECS     wall-clock limit per job attempt
    --attempts N        attempts per point before giving up [default: 3]
    --backoff-ms MS     base retry backoff, milliseconds    [default: 0]
    --status-out PATH   maintain a machine-readable fleet status file
                        here (JSON; rewritten atomically on every
                        point state change, final state at exit)
    --metrics-out PATH  write sweep counters and the per-point wall-time
                        histogram in Prometheus exposition format
    --progress          print a live progress line (throughput, ETA) to
                        stderr as points start, retry and finish
    --report PREFIX     write PREFIX-failures.csv and PREFIX-sweep.md
    --print-metrics     print a deterministic per-point digest (metrics
                        codec CRC + mean error) for golden comparisons
    --inject-panic I:K  chaos: point I panics on its first K attempts
    --inject-hang I:S   chaos: point I sleeps S wall-clock seconds at
                        the start of every attempt
    -h, --help          print this help

EXIT CODES:
    0   every point completed
    1   the sweep finished but at least one point failed terminally
    2   usage error
    5   the manifest file exists but is corrupt or unreadable
";

const EXIT_FAILURES: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_MANIFEST: i32 = 5;

struct Args {
    periods: Vec<u64>,
    seed: u64,
    robots: usize,
    equipped: usize,
    duration: Option<u64>,
    manifest: Option<PathBuf>,
    inflight: Option<SimDuration>,
    deadline: Option<Duration>,
    attempts: u32,
    backoff_ms: u64,
    report_prefix: Option<String>,
    status_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    progress: bool,
    print_metrics: bool,
    inject_panic: Option<(usize, u32)>,
    inject_hang: Option<(usize, f64)>,
}

/// Parses an `I:K` injection spec.
fn parse_pair<K: std::str::FromStr>(flag: &str, spec: &str) -> Result<(usize, K), String>
where
    K::Err: std::fmt::Display,
{
    let (i, k) = spec
        .split_once(':')
        .ok_or_else(|| format!("{flag} expects POINT:VALUE, got '{spec}'"))?;
    let i = i.parse().map_err(|e| format!("{flag} point: {e}"))?;
    let k = k.parse().map_err(|e| format!("{flag} value: {e}"))?;
    Ok((i, k))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        periods: vec![20, 60, 100],
        seed: 42,
        robots: 50,
        equipped: 25,
        duration: None,
        manifest: None,
        inflight: None,
        deadline: None,
        attempts: 3,
        backoff_ms: 0,
        report_prefix: None,
        status_out: None,
        metrics_out: None,
        progress: false,
        print_metrics: false,
        inject_panic: None,
        inject_hang: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--periods" => {
                let list = value("--periods")?;
                args.periods = list
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|e| format!("--periods: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.periods.is_empty() {
                    return Err("--periods needs at least one period".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--robots" => {
                args.robots = value("--robots")?
                    .parse()
                    .map_err(|e| format!("--robots: {e}"))?;
            }
            "--equipped" => {
                args.equipped = value("--equipped")?
                    .parse()
                    .map_err(|e| format!("--equipped: {e}"))?;
            }
            "--duration" => {
                args.duration = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                );
            }
            "--manifest" => args.manifest = Some(PathBuf::from(value("--manifest")?)),
            "--inflight" => {
                let s: u64 = value("--inflight")?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?;
                args.inflight = Some(SimDuration::from_secs(s));
            }
            "--deadline" => {
                let s: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--deadline must be positive".into());
                }
                args.deadline = Some(Duration::from_secs_f64(s));
            }
            "--attempts" => {
                args.attempts = value("--attempts")?
                    .parse()
                    .map_err(|e| format!("--attempts: {e}"))?;
            }
            "--backoff-ms" => {
                args.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?;
            }
            "--report" => args.report_prefix = Some(value("--report")?),
            "--status-out" => args.status_out = Some(PathBuf::from(value("--status-out")?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--progress" => args.progress = true,
            "--print-metrics" => args.print_metrics = true,
            "--inject-panic" => {
                args.inject_panic = Some(parse_pair("--inject-panic", &value("--inject-panic")?)?);
            }
            "--inject-hang" => {
                args.inject_hang = Some(parse_pair("--inject-hang", &value("--inject-hang")?)?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// Builds the chaos hook from the `--inject-*` flags, if any.
fn build_hook(args: &Args) -> Option<cocoa_core::executor::sweep::AttemptHook> {
    if args.inject_panic.is_none() && args.inject_hang.is_none() {
        return None;
    }
    let panic_spec = args.inject_panic;
    let hang_spec = args.inject_hang;
    let panics_left = Arc::new(AtomicU32::new(panic_spec.map_or(0, |(_, k)| k)));
    Some(Arc::new(move |index: usize| {
        if let Some((target, secs)) = hang_spec {
            if index == target {
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
        if let Some((target, _)) = panic_spec {
            if index == target
                && panics_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                panic!("injected panic at sweep point {index}");
            }
        }
    }))
}

/// Shared live-view state driven by supervisor events: the fleet state
/// machine, per-point attempt start times (for the wall-time histogram)
/// and the status-file / progress-line side effects. All wall-clock
/// reads live here, at the CLI edge — the sweep itself stays
/// deterministic.
struct Watch {
    fleet: Mutex<FleetStatus>,
    started: Instant,
    starts: Mutex<Vec<Option<Instant>>>,
    point_wall_ms: Mutex<Vec<f64>>,
    status_out: Option<PathBuf>,
    progress: bool,
}

impl Watch {
    fn new(total: usize, status_out: Option<PathBuf>, progress: bool) -> Self {
        Watch {
            fleet: Mutex::new(FleetStatus::new(total)),
            started: Instant::now(),
            starts: Mutex::new(vec![None; total]),
            point_wall_ms: Mutex::new(Vec::new()),
            status_out,
            progress,
        }
    }

    fn observe(&self, event: JobEvent) {
        match event {
            JobEvent::Started { index, .. } => {
                if let Some(slot) = self.starts.lock().expect("starts").get_mut(index) {
                    *slot = Some(Instant::now());
                }
            }
            JobEvent::Completed { index, .. } => {
                let t0 = self.starts.lock().expect("starts").get(index).copied();
                if let Some(Some(t0)) = t0 {
                    self.point_wall_ms
                        .lock()
                        .expect("wall")
                        .push(t0.elapsed().as_secs_f64() * 1e3);
                }
            }
            _ => {}
        }
        let mut fleet = self.fleet.lock().expect("fleet");
        fleet.observe(event);
        let elapsed = self.started.elapsed();
        if self.progress {
            eprintln!("{}", fleet.progress_line(elapsed));
        }
        if let Some(path) = &self.status_out {
            if let Err(e) = fleet.store(path, elapsed) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }
}

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };

    let scenarios: Vec<Scenario> = {
        let mut out = Vec::with_capacity(args.periods.len());
        for period in &args.periods {
            let mut b = Scenario::builder();
            b.seed(args.seed)
                .robots(args.robots)
                .equipped(args.equipped)
                .beacon_period(SimDuration::from_secs(*period));
            if let Some(secs) = args.duration {
                b.duration(SimDuration::from_secs(secs));
            }
            match b.try_build() {
                Ok(s) => out.push(s),
                Err(e) => {
                    eprintln!("error: invalid scenario for period {period}: {e}");
                    return EXIT_USAGE;
                }
            }
        }
        out
    };

    let watch = Arc::new(Watch::new(
        scenarios.len(),
        args.status_out.clone(),
        args.progress,
    ));
    let observer_watch = Arc::clone(&watch);
    let cfg = SweepConfig {
        supervisor: SupervisorConfig {
            max_attempts: args.attempts,
            deadline: args.deadline,
            backoff_base: Duration::from_millis(args.backoff_ms),
            ..SupervisorConfig::default()
        },
        manifest_path: args.manifest.clone(),
        inflight_interval: args.inflight,
        attempt_hook: build_hook(&args),
        observer: Some(Arc::new(move |event| observer_watch.observe(event))),
    };

    let sweep = match run_supervised(scenarios, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: sweep manifest: {e}");
            return EXIT_MANIFEST;
        }
    };

    if args.print_metrics {
        for (i, (period, outcome)) in args.periods.iter().zip(&sweep.outcomes).enumerate() {
            match &outcome.result {
                Ok(metrics) => {
                    let bytes = encode_metrics(metrics);
                    println!(
                        "point {i} period {period}: crc {:08x} mean_error {:?}",
                        crc32(&bytes),
                        metrics.mean_error_over_time()
                    );
                }
                Err(failure) => {
                    println!("point {i} period {period}: FAILED {}", failure.kind());
                }
            }
        }
    }

    eprintln!(
        "sweep: {} points, {} completed, {} failed \
         (retries {}, timeouts {}, panics {}, checkpoints {}, skipped-on-resume {})",
        sweep.outcomes.len(),
        sweep.completed(),
        sweep.failed(),
        sweep.counters.retries,
        sweep.counters.timeouts,
        sweep.counters.panics_caught,
        sweep.counters.checkpoints_written,
        sweep.counters.points_skipped_on_resume,
    );
    for (index, failure) in sweep.failures() {
        eprintln!("point {index}: {failure}");
    }

    let elapsed = watch.started.elapsed();
    // The last event already stored the settled state; writing again
    // here guarantees the file exists even for an empty sweep and
    // reflects the final elapsed time.
    if let Some(path) = &args.status_out {
        let fleet = watch.fleet.lock().expect("fleet");
        match fleet.store(path, elapsed) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.metrics_out {
        // The sweep bus: supervisor counters plus the per-point
        // wall-time histogram, exported in exposition format.
        let mut t = Telemetry::new(TelemetryLevel::Counters);
        sweep.counters.absorb_into(&mut t);
        let wall_hist = t.hist_wall("sweep.point_wall_ms");
        for &ms in watch.point_wall_ms.lock().expect("wall").iter() {
            t.hist_record(wall_hist, ms);
        }
        let mut snap = MetricsSnapshot::from_telemetry(&t);
        snap.push_gauge("sweep.points_total", sweep.outcomes.len() as f64);
        snap.push_gauge("sweep.points_done", sweep.completed() as f64);
        snap.push_gauge("sweep.points_failed", sweep.failed() as f64);
        let tmp = path.with_extension("tmp");
        let result =
            std::fs::write(&tmp, snap.to_exposition()).and_then(|()| std::fs::rename(&tmp, path));
        match result {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    if let Some(prefix) = &args.report_prefix {
        let write = |path: String, body: String| match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        };
        write(
            format!("{prefix}-failures.csv"),
            report::sweep_failures_csv(&sweep),
        );
        write(format!("{prefix}-sweep.md"), report::sweep_markdown(&sweep));
    }

    if sweep.is_clean() {
        0
    } else {
        EXIT_FAILURES
    }
}
