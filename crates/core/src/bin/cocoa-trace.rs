//! `cocoa-trace` — inspect a JSONL telemetry trace offline.
//!
//! ```sh
//! cargo run -p cocoa-core --bin cocoa-run -- --telemetry full --trace-out run.jsonl
//! cargo run -p cocoa-core --bin cocoa-trace -- run.jsonl counters
//! cargo run -p cocoa-core --bin cocoa-trace -- run.jsonl timeline 7
//! ```
//!
//! Every command first parses and validates the whole file (schema
//! version, known event kinds, monotone sequence numbers), so a zero exit
//! status doubles as a trace-integrity check for CI. One damage shape is
//! tolerated with a warning instead of a hard error: a torn final line,
//! the signature of a run killed mid-write — the valid prefix is used,
//! which is exactly what `bisect` needs to analyze traces from crashed
//! or interrupted runs.

use cocoa_core::tracefile::{TraceError, TraceFile, TraceSpan};
use cocoa_sim::snapshot::Snapshot;
use cocoa_sim::telemetry::export::{fold_spans, render_folded};
use cocoa_sim::telemetry::hist::{bucket_bounds, HistSnapshot, Histogram};

const USAGE: &str = "\
cocoa-trace — query a CoCoA telemetry trace (JSONL)

USAGE:
    cocoa-trace <FILE> <COMMAND> [OPTIONS]
    cocoa-trace bisect <A.jsonl> <B.jsonl>
    cocoa-trace snapdiff <A.csnp> <B.csnp>

COMMANDS:
    summary                 meta line, event/counter totals, drop count
    counters                every end-of-run counter, sorted by name
    spans [--top N]         wall-clock span report, hottest first
    flamegraph              collapsed-stack span profile on stdout
                            (the folded format inferno/speedscope read)
    hist [NAME]             histogram bucket table and percentiles;
                            without NAME, lists recorded histograms
    timeline <ROBOT>        every event touching one robot, in time order
    windows                 per-window fixes / SYNC deliveries / starvation
    replay [--from SECS] [--limit N]
                            print events from a point in time onwards
    curves                  reconstructed team error + energy curves
    bisect <A> <B>          localize the first diverging event between two
                            traces of the same scenario (exit 1 if found)
    snapdiff <A> <B>        section-level delta report between two binary
                            snapshots (exit 1 if they differ)

    -h, --help              print this help
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Two-file commands lead with the command name instead of a file.
    match args.first().map(String::as_str) {
        Some("bisect") => return two_files(&args[1..], "bisect", bisect),
        Some("snapdiff") => return two_files(&args[1..], "snapdiff", snapdiff),
        _ => {}
    }
    let [file, command, rest @ ..] = args else {
        return Err("expected <FILE> <COMMAND>".into());
    };
    let trace = load_trace(file)?;
    match command.as_str() {
        "summary" => summary(&trace),
        "counters" => counters(&trace),
        "spans" => spans(&trace, parse_opt(rest, "--top")?.unwrap_or(10)),
        "flamegraph" => flamegraph(&trace),
        "hist" => hist(&trace, rest.first().map(String::as_str))?,
        "timeline" => {
            let robot: u64 = rest
                .first()
                .ok_or("timeline needs a robot id")?
                .parse()
                .map_err(|e| format!("robot id: {e}"))?;
            timeline(&trace, robot)
        }
        "windows" => windows(&trace),
        "curves" => curves(&trace),
        "replay" => replay(
            &trace,
            parse_opt(rest, "--from")?.unwrap_or(0.0),
            parse_opt(rest, "--limit")?,
        ),
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

/// Reads and parses one trace file, tolerating a torn final line (the
/// signature of a killed run) with a stderr warning.
fn load_trace(path: &str) -> Result<TraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    match TraceFile::parse_partial(&text) {
        Ok(trace) => Ok(trace),
        Err(TraceError::TruncatedTail {
            prefix,
            line,
            detail,
        }) => {
            eprintln!(
                "warning: {path}: line {line} is torn ({detail}); \
                 continuing with the {}-event valid prefix",
                prefix.events.len()
            );
            Ok(*prefix)
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

/// Looks up `--flag VALUE` in `rest` and parses the value.
fn parse_opt<T: std::str::FromStr>(rest: &[String], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => rest
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{flag}: {e}")),
    }
}

fn summary(trace: &TraceFile) {
    let m = &trace.meta;
    println!("schema          {}", m.schema);
    println!("level           {}", m.level);
    println!("events emitted  {}", m.events_emitted);
    println!("events retained {}", trace.events.len());
    println!("events dropped  {}", m.dropped);
    println!("counters        {}", trace.counters.len());
    println!("spans           {}", trace.spans.len());
    println!("histograms      {}", trace.hists.len());
    // One-line grid-kernel digest: which inner loop ran and what it cost.
    let grid = |name: &str| {
        trace
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let variants: Vec<String> = [
        ("scalar", "grid.kernel.scalar"),
        ("simd", "grid.kernel.simd"),
        ("simd_f32", "grid.kernel.simd_f32"),
        ("fused", "grid.kernel.fused"),
        ("adaptive", "grid.kernel.adaptive"),
    ]
    .iter()
    .filter_map(|(short, name)| {
        let v = grid(name);
        (v > 0).then(|| format!("{short}={v}"))
    })
    .collect();
    if !variants.is_empty() {
        println!("grid kernels    {}", variants.join(" "));
        println!("grid cells      {}", grid("grid.cells_touched"));
        let (fused, refined) = (grid("grid.fused_windows"), grid("grid.cells_refined"));
        if fused > 0 {
            println!("grid fused wins {fused}");
        }
        if refined > 0 {
            println!("grid refined    {refined}");
        }
    }
    // One-line estimator digest: which RF backend ran and how its windows
    // resolved (`estimator.<backend>.*` is emitted by every counter run).
    for backend in ["bayes", "multilateration", "ekf"] {
        let est = |short: &str| grid(&format!("estimator.{backend}.{short}"));
        if est("windows") == 0 && est("beacons_seen") == 0 {
            continue;
        }
        let mut parts = vec![
            format!("windows={}", est("windows")),
            format!("fixes={}", est("fixes")),
            format!("flat={}", est("flat_windows")),
            format!("beacons={}/{}", est("beacons_applied"), est("beacons_seen")),
        ];
        let rejected = est("beacons_rejected_outlier");
        if rejected > 0 {
            parts.push(format!("outliers={rejected}"));
        }
        if backend == "ekf" {
            parts.push(format!(
                "updates={}/{}",
                est("updates_applied"),
                est("updates_applied") + est("updates_gated")
            ));
        }
        println!("estimator {backend:<5} {}", parts.join(" "));
    }
    // One-line supervisor digest when a sweep bus absorbed its counters.
    let supervisor: Vec<String> = trace
        .counters
        .iter()
        .filter_map(|(n, v)| {
            n.strip_prefix("supervisor.")
                .map(|short| format!("{short}={v}"))
        })
        .collect();
    if !supervisor.is_empty() {
        println!("supervisor      {}", supervisor.join(" "));
    }
    if let (Some(first), Some(last)) = (trace.events.first(), trace.events.last()) {
        println!(
            "time range      {:.3} s .. {:.3} s",
            first.t_s(),
            last.t_s()
        );
    }
}

fn counters(trace: &TraceFile) {
    if trace.counters.is_empty() {
        println!("(no counters — was the run recorded at --telemetry off?)");
        return;
    }
    let width = trace
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    for (name, value) in &trace.counters {
        println!("{name:<width$}  {value}");
    }
}

fn spans(trace: &TraceFile, top: usize) {
    if trace.spans.is_empty() {
        println!("(no spans — record with --telemetry full and keep the span trailer)");
        return;
    }
    let mut sorted: Vec<&TraceSpan> = trace.spans.iter().collect();
    sorted.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    let root = sorted
        .iter()
        .find(|s| s.name == "run.total")
        .map(|s| s.total_ns)
        .unwrap_or_else(|| sorted.iter().map(|s| s.total_ns).sum());
    println!(
        "{:<24} {:>12} {:>10} {:>7}",
        "span", "total_ms", "count", "share"
    );
    for s in sorted.iter().take(top) {
        let share = if root > 0 {
            s.total_ns as f64 / root as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<24} {:>12.3} {:>10} {:>6.1}%",
            s.name,
            s.total_ns as f64 / 1e6,
            s.count,
            share
        );
    }
}

/// Prints the collapsed-stack span profile: one `stack;frames value`
/// line per span, value = self time in nanoseconds. Feed the output to
/// inferno or speedscope to render an actual flamegraph.
fn flamegraph(trace: &TraceFile) {
    if trace.spans.is_empty() {
        println!("(no spans — record with --telemetry full and keep the span trailer)");
        return;
    }
    let totals: Vec<(&str, u128)> = trace
        .spans
        .iter()
        .map(|s| (s.name.as_str(), u128::from(s.total_ns)))
        .collect();
    print!("{}", render_folded(&fold_spans(&totals)));
}

/// Prints one histogram's bucket table and percentiles, or lists the
/// recorded histograms when no name is given.
fn hist(trace: &TraceFile, name: Option<&str>) -> Result<(), String> {
    if trace.hists.is_empty() {
        println!("(no histograms — record with --telemetry counters or above)");
        return Ok(());
    }
    let Some(name) = name else {
        let width = trace.hists.iter().map(|h| h.name.len()).max().unwrap_or(0);
        for h in &trace.hists {
            let kind = if h.wall { "wall" } else { "sim" };
            println!("{:<width$}  {:>10} samples  ({kind})", h.name, h.count);
        }
        return Ok(());
    };
    let h = trace
        .hists
        .iter()
        .find(|h| h.name == name)
        .ok_or_else(|| format!("no histogram named '{name}' (try `hist` with no name)"))?;
    let full = Histogram::from_snapshot(&HistSnapshot {
        buckets: h.buckets.clone(),
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
    });
    println!("{name}: {} samples, sum {}", h.count, h.sum);
    let ps = [0.0, 0.5, 0.9, 0.99, 1.0];
    let qs = full.percentiles(&ps);
    let labels = ["min", "p50", "p90", "p99", "max"];
    for (label, q) in labels.iter().zip(&qs) {
        println!("  {label:<4} {q}");
    }
    println!("{:>16} {:>16} {:>10}  histogram", "low", "high", "count");
    let peak = h.buckets.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for &(idx, count) in &h.buckets {
        let (lo, hi) = bucket_bounds(idx as usize);
        let bar = "#".repeat(((count as f64 / peak as f64) * 40.0).ceil() as usize);
        println!("{lo:>16.6} {hi:>16.6} {count:>10}  {bar}");
    }
    Ok(())
}

fn timeline(trace: &TraceFile, robot: u64) {
    let events = trace.robot_events(robot);
    if events.is_empty() {
        println!("(no events for robot {robot} — timelines need --telemetry timeline or full)");
        return;
    }
    for e in events {
        println!("{}", TraceFile::format_event(e));
    }
}

fn windows(trace: &TraceFile) {
    let rows = trace.window_summary();
    if rows.is_empty() {
        println!("(no per-window events in this trace)");
        return;
    }
    println!(
        "{:>7} {:>6} {:>10} {:>8} {:>8}",
        "window", "fixes", "delivered", "missed", "starved"
    );
    for (w, fixes, delivered, missed, starved) in rows {
        println!("{w:>7} {fixes:>6} {delivered:>10} {missed:>8} {starved:>8}");
    }
}

fn curves(trace: &TraceFile) {
    let errors = trace.team_error_curve();
    let energy = trace.team_energy_curve();
    if errors.is_empty() && energy.is_empty() {
        println!("(no team_sample events — record with --telemetry timeline or full)");
        return;
    }
    println!("t_s,mean_error_m,robots,energy_j");
    for (i, (t_s, err, robots)) in errors.iter().enumerate() {
        let e_j = energy.get(i).map(|(_, e)| *e).unwrap_or(f64::NAN);
        println!("{t_s},{err},{robots},{e_j}");
    }
}

fn replay(trace: &TraceFile, from_s: f64, limit: Option<usize>) {
    let events = trace.replay_from(from_s, limit);
    for e in &events {
        println!("{}", TraceFile::format_event(e));
    }
    eprintln!("({} events)", events.len());
}

/// Dispatches a command that takes exactly two file paths.
fn two_files(
    rest: &[String],
    name: &str,
    f: fn(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    let [a, b] = rest else {
        return Err(format!("{name} needs exactly two files"));
    };
    f(a, b)
}

/// Localizes the first diverging event between two traces of the same
/// scenario. Prints the shared-prefix length, the diverging pair with
/// surrounding context, and any end-of-run counter deltas; exits 1 when
/// a divergence is found so CI can assert determinism.
fn bisect(path_a: &str, path_b: &str) -> Result<(), String> {
    let a = load_trace(path_a)?;
    let b = load_trace(path_b)?;
    if a.meta.level != b.meta.level {
        eprintln!(
            "warning: telemetry levels differ ({} vs {}) — event streams are \
             only comparable at equal levels",
            a.meta.level, b.meta.level
        );
    }
    let counter_diffs = a.counter_diffs(&b);
    let Some(idx) = a.first_divergence(&b) else {
        println!(
            "event streams identical ({} events in lockstep)",
            a.events.len()
        );
        if counter_diffs.is_empty() {
            println!("counters identical");
        } else {
            print_counter_diffs(&counter_diffs);
            std::process::exit(1);
        }
        return Ok(());
    };

    println!(
        "traces diverge after {idx} shared events (A has {}, B has {})",
        a.events.len(),
        b.events.len()
    );
    if let Some(last) = idx.checked_sub(1).and_then(|i| a.events.get(i)) {
        println!(
            "last common event: seq={} {}",
            last.seq,
            TraceFile::format_event(last)
        );
    }
    for (label, trace) in [("A", &a), ("B", &b)] {
        match trace.events.get(idx) {
            Some(e) => println!(
                "first divergent {label}: seq={} {}",
                e.seq,
                TraceFile::format_event(e)
            ),
            None => println!("first divergent {label}: <stream ends>"),
        }
    }
    const CONTEXT: usize = 3;
    let from = idx.saturating_sub(CONTEXT);
    if from < idx {
        println!("context (shared prefix):");
        for e in &a.events[from..idx] {
            println!("  seq={} {}", e.seq, TraceFile::format_event(e));
        }
    }
    for (label, trace) in [("A", &a), ("B", &b)] {
        let tail: Vec<_> = trace.events.iter().skip(idx).take(CONTEXT).collect();
        if !tail.is_empty() {
            println!("{label} continues:");
            for e in tail {
                println!("  seq={} {}", e.seq, TraceFile::format_event(e));
            }
        }
    }
    print_counter_diffs(&counter_diffs);
    std::process::exit(1);
}

fn print_counter_diffs(diffs: &[(String, Option<u64>, Option<u64>)]) {
    if diffs.is_empty() {
        return;
    }
    println!("counters differing ({}):", diffs.len());
    let fmt = |v: Option<u64>| v.map_or("absent".to_string(), |v| v.to_string());
    for (name, va, vb) in diffs {
        println!("  {name}: A={} B={}", fmt(*va), fmt(*vb));
    }
}

/// Prints the section-level [`Snapshot::diff`] report between two binary
/// snapshot files; exits 1 when they differ.
fn snapdiff(path_a: &str, path_b: &str) -> Result<(), String> {
    let read = |p: &str| -> Result<Snapshot, String> {
        let bytes = std::fs::read(p).map_err(|e| format!("reading {p}: {e}"))?;
        Snapshot::parse(&bytes).map_err(|e| format!("{p}: {e}"))
    };
    let a = read(path_a)?;
    let b = read(path_b)?;
    let diff = a.diff(&b);
    print!("{diff}");
    if !diff.is_empty() {
        std::process::exit(1);
    }
    Ok(())
}
