//! `cocoa-run` — run one CoCoA scenario from the command line.
//!
//! ```sh
//! cargo run --release -p cocoa-core --bin cocoa-run -- \
//!     --robots 50 --equipped 25 --duration 1800 --period 100 --mode cocoa
//! ```
//!
//! Prints a markdown summary; `--csv PREFIX` additionally writes
//! `PREFIX-errors.csv`, `PREFIX-energy.csv` and `PREFIX-snapshots.csv`
//! for plotting.
//!
//! Failures exit with distinct codes (see the EXIT CODES section of
//! `--help`) so scripts and CI can react to *why* a run died, not just
//! that it died.

use std::sync::mpsc;
use std::time::Duration;

use cocoa_core::executor::supervisor::{run_guarded, CaughtPanic};
use cocoa_core::prelude::*;
use cocoa_core::report;
use cocoa_core::runner::SimRun;
use cocoa_localization::estimator::RfAlgorithm;
use cocoa_localization::kernel::{GridKernel, GridPrecision};
use cocoa_sim::snapshot::SnapshotError;
use cocoa_sim::time::{SimDuration, SimTime};

use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};

const USAGE: &str = "\
cocoa-run — simulate one CoCoA deployment

USAGE:
    cocoa-run [OPTIONS]

OPTIONS:
    --seed N            master seed                       [default: 42]
    --robots N          team size                         [default: 50]
    --equipped N        robots with localization devices  [default: 25]
    --duration SECS     simulated seconds                 [default: 1800]
    --period SECS       beacon period T                   [default: 100]
    --window SECS       transmit window t                 [default: 3]
    --beacons K         beacons per robot per window      [default: 3]
    --vmax M_PER_S      maximum robot speed               [default: 2.0]
    --vmin M_PER_S      minimum robot speed               [default: 0.1]
    --static            pin every robot in place (vmin = vmax = 0);
                        requires --multicast flood or odmrp
    --mode MODE         cocoa | rf-only | odometry        [default: cocoa]
    --multicast PROTO   SYNC transport: flood | odmrp | mrmm
                                                          [default: mrmm]
    --estimator ALGO    bayes | multilateration | ekf     [default: bayes]
    --algorithm ALGO    alias of --estimator
    --grid METRES       Bayesian grid resolution          [default: 2.0]
    --grid-kernel K     grid inner loop: simd | scalar    [default: simd]
    --grid-precision P  lane arithmetic: f64 | f32        [default: f64]
    --grid-fused        commit each transmit window's beacons as one
                        fused grid pass (one renormalize per window)
    --grid-adaptive     coarse-to-fine adaptive posterior (incompatible
                        with --grid-fused)
    --snapshot SECS     record a per-robot CDF snapshot (repeatable)
    --no-coordination   radios idle instead of sleeping
    --no-sync           disable the MRMM SYNC service
    --relay             localized robots also beacon (Section 6 extension)
    --faults NAME       inject a canned fault schedule:
                        none | sync-crash | burst30 | corrupt | chaos
    --snapshot-at SECS  serialize the full run state at this instant
                        (the run then continues to completion)
    --snapshot-out PATH where to write the --snapshot-at bytes
                        [default: cocoa-run.csnp]
    --resume PATH       restore a --snapshot-out file and run it to the
                        horizon; scenario flags are ignored (the snapshot
                        carries its own scenario)
    --deadline SECS     wall-clock limit for the simulation itself; a
                        hung run exits 6 instead of blocking forever
    --csv PREFIX        write PREFIX-{errors,energy,mesh,snapshots,robustness,health}.csv
    --telemetry LEVEL   off | counters | timeline | full    [default: off]
    --trace-out PATH    write a JSONL trace (implies --telemetry full);
                        inspect it with cocoa-trace
    --metrics-out PATH  write the final counters, histograms and span
                        totals in Prometheus text exposition format
                        (implies at least --telemetry counters)
    --sample-interval S per-robot timeline sample interval, seconds
                        [default: the metrics interval]
    -h, --help          print this help

With --telemetry at counters or above, --csv also writes
PREFIX-counters.csv and PREFIX-spans.csv; at timeline or above,
PREFIX-timeline.csv.

EXIT CODES:
    0   success
    2   usage error (unknown flag, missing or unparsable value)
    3   scenario validation failure (flags parsed, but the scenario
        they describe is inconsistent)
    4   runtime failure (simulation panic, unreadable input file,
        unwritable output file)
    5   snapshot corruption (--resume file failed CRC/schema checks)
    6   wall-clock deadline exceeded (--deadline)
";

/// Usage error (bad flags).
const EXIT_USAGE: i32 = 2;
/// The flags parsed but describe an invalid scenario.
const EXIT_VALIDATION: i32 = 3;
/// The run itself failed: panic, unreadable input, unwritable output.
const EXIT_RUNTIME: i32 = 4;
/// A snapshot failed its integrity checks.
const EXIT_SNAPSHOT: i32 = 5;
/// The wall-clock deadline fired.
const EXIT_DEADLINE: i32 = 6;

struct Args {
    scenario: Scenario,
    csv_prefix: Option<String>,
    telemetry_level: TelemetryLevel,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    sample_interval: Option<SimDuration>,
    snapshot_at: Option<SimTime>,
    snapshot_out: String,
    resume: Option<String>,
    deadline: Option<Duration>,
}

/// Why argument handling failed — bad flags exit differently from a
/// well-formed command line describing an impossible scenario.
enum ArgError {
    Usage(String),
    Validation(String),
}

fn parse_args() -> Result<Args, ArgError> {
    use ArgError::Usage;
    let mut b = Scenario::builder();
    let mut csv_prefix = None;
    let mut snapshots: Vec<SimTime> = Vec::new();
    let mut faults_preset: Option<String> = None;
    let mut telemetry_level = TelemetryLevel::Off;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut sample_interval = None;
    let mut snapshot_at = None;
    let mut snapshot_out = String::from("cocoa-run.csnp");
    let mut resume = None;
    let mut deadline = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, ArgError> {
            it.next()
                .ok_or_else(|| Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seed" => {
                b.seed(
                    value("--seed")?
                        .parse()
                        .map_err(|e| Usage(format!("--seed: {e}")))?,
                );
            }
            "--robots" => {
                b.robots(
                    value("--robots")?
                        .parse()
                        .map_err(|e| Usage(format!("--robots: {e}")))?,
                );
            }
            "--equipped" => {
                b.equipped(
                    value("--equipped")?
                        .parse()
                        .map_err(|e| Usage(format!("--equipped: {e}")))?,
                );
            }
            "--duration" => {
                let s: u64 = value("--duration")?
                    .parse()
                    .map_err(|e| Usage(format!("--duration: {e}")))?;
                b.duration(SimDuration::from_secs(s));
            }
            "--period" => {
                let s: u64 = value("--period")?
                    .parse()
                    .map_err(|e| Usage(format!("--period: {e}")))?;
                b.beacon_period(SimDuration::from_secs(s));
            }
            "--window" => {
                let s: u64 = value("--window")?
                    .parse()
                    .map_err(|e| Usage(format!("--window: {e}")))?;
                b.transmit_window(SimDuration::from_secs(s));
            }
            "--beacons" => {
                b.beacons_per_window(
                    value("--beacons")?
                        .parse()
                        .map_err(|e| Usage(format!("--beacons: {e}")))?,
                );
            }
            "--vmax" => {
                b.v_max(
                    value("--vmax")?
                        .parse()
                        .map_err(|e| Usage(format!("--vmax: {e}")))?,
                );
            }
            "--vmin" => {
                b.v_min(
                    value("--vmin")?
                        .parse()
                        .map_err(|e| Usage(format!("--vmin: {e}")))?,
                );
            }
            "--static" => {
                b.static_team();
            }
            "--multicast" => {
                let v = value("--multicast")?;
                let protocol = MulticastProtocol::parse(&v)
                    .ok_or_else(|| Usage(format!("unknown multicast protocol '{v}'")))?;
                b.multicast(protocol);
            }
            "--mode" => match value("--mode")?.as_str() {
                "cocoa" => {
                    b.mode(EstimatorMode::Cocoa);
                }
                "rf-only" => {
                    b.mode(EstimatorMode::RfOnly);
                }
                "odometry" => {
                    b.mode(EstimatorMode::OdometryOnly);
                }
                other => return Err(Usage(format!("unknown mode '{other}'"))),
            },
            "--estimator" | "--algorithm" => match value(&flag)?.as_str() {
                "bayes" => {
                    b.rf_algorithm(RfAlgorithm::Bayes);
                }
                "multilateration" => {
                    b.rf_algorithm(RfAlgorithm::Multilateration);
                }
                "ekf" => {
                    b.rf_algorithm(RfAlgorithm::Ekf);
                }
                other => return Err(Usage(format!("unknown estimator '{other}'"))),
            },
            "--grid" => {
                b.grid_resolution(
                    value("--grid")?
                        .parse()
                        .map_err(|e| Usage(format!("--grid: {e}")))?,
                );
            }
            "--grid-kernel" => match value("--grid-kernel")?.as_str() {
                "simd" => {
                    b.grid_kernel(GridKernel::Simd);
                }
                "scalar" => {
                    b.grid_kernel(GridKernel::Scalar);
                }
                v => return Err(Usage(format!("--grid-kernel: unknown kernel '{v}'"))),
            },
            "--grid-precision" => match value("--grid-precision")?.as_str() {
                "f64" => {
                    b.grid_precision(GridPrecision::F64);
                }
                "f32" => {
                    b.grid_precision(GridPrecision::F32);
                }
                v => return Err(Usage(format!("--grid-precision: unknown precision '{v}'"))),
            },
            "--grid-fused" => {
                b.grid_fused(true);
            }
            "--grid-adaptive" => {
                b.grid_adaptive(true);
            }
            "--snapshot" => {
                let s: f64 = value("--snapshot")?
                    .parse()
                    .map_err(|e| Usage(format!("--snapshot: {e}")))?;
                snapshots.push(SimTime::from_secs_f64(s));
            }
            "--no-coordination" => {
                b.coordination(false);
            }
            "--no-sync" => {
                b.sync_enabled(false);
            }
            "--relay" => {
                b.relay_beaconing(true);
            }
            "--faults" => faults_preset = Some(value("--faults")?),
            "--snapshot-at" => {
                let s: f64 = value("--snapshot-at")?
                    .parse()
                    .map_err(|e| Usage(format!("--snapshot-at: {e}")))?;
                if !s.is_finite() || s < 0.0 {
                    return Err(Usage("--snapshot-at must be non-negative".into()));
                }
                snapshot_at = Some(SimTime::from_secs_f64(s));
            }
            "--snapshot-out" => snapshot_out = value("--snapshot-out")?,
            "--resume" => resume = Some(value("--resume")?),
            "--deadline" => {
                let s: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| Usage(format!("--deadline: {e}")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(Usage("--deadline must be positive".into()));
                }
                deadline = Some(Duration::from_secs_f64(s));
            }
            "--csv" => csv_prefix = Some(value("--csv")?),
            "--telemetry" => {
                let v = value("--telemetry")?;
                telemetry_level = TelemetryLevel::parse(&v)
                    .ok_or_else(|| Usage(format!("unknown telemetry level '{v}'")))?;
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--sample-interval" => {
                let s: f64 = value("--sample-interval")?
                    .parse()
                    .map_err(|e| Usage(format!("--sample-interval: {e}")))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(Usage("--sample-interval must be positive".into()));
                }
                sample_interval = Some(SimDuration::from_secs_f64(s));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(Usage(format!("unknown flag '{other}' (try --help)"))),
        }
    }
    if !snapshots.is_empty() {
        b.snapshots(snapshots);
    }
    let mut scenario = b.try_build().map_err(ArgError::Validation)?;
    if let Some(name) = faults_preset {
        // The preset needs the final duration/team size, so it is resolved
        // after every other flag has been applied.
        let plan =
            FaultPlan::preset(&name, scenario.duration, scenario.num_robots).ok_or_else(|| {
                Usage(format!(
                    "unknown fault schedule '{name}' (available: {})",
                    cocoa_sim::faults::PRESET_NAMES.join(", ")
                ))
            })?;
        scenario.faults = plan;
        scenario.validate().map_err(ArgError::Validation)?;
    }
    if trace_out.is_some() {
        // A trace file is only useful with the complete event stream.
        telemetry_level = TelemetryLevel::Full;
    }
    if metrics_out.is_some() && telemetry_level < TelemetryLevel::Counters {
        // Exposition output needs at least the counter registry.
        telemetry_level = TelemetryLevel::Counters;
    }
    Ok(Args {
        scenario,
        csv_prefix,
        telemetry_level,
        trace_out,
        metrics_out,
        sample_interval,
        snapshot_at,
        snapshot_out,
        resume,
        deadline,
    })
}

/// What the simulation job produces: the effective scenario, the run
/// outputs, and the captured `--snapshot-at` bytes (written by the
/// caller, outside the panic/deadline boundary).
type JobOutput = Result<(Scenario, RunMetrics, Telemetry, Option<Vec<u8>>), SnapshotError>;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(ArgError::Usage(e)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return EXIT_USAGE;
        }
        Err(ArgError::Validation(e)) => {
            eprintln!("error: invalid scenario: {e}");
            return EXIT_VALIDATION;
        }
    };
    let start = std::time::Instant::now();
    let mut telemetry = Telemetry::new(args.telemetry_level);
    if let Some(interval) = args.sample_interval {
        telemetry.set_sample_interval(interval);
    }

    // File reads happen before the supervised section so io failures are
    // classified as runtime errors, not snapshot corruption.
    let resume_input = match &args.resume {
        Some(path) => match std::fs::read(path) {
            Ok(bytes) => Some((path.clone(), bytes)),
            Err(e) => {
                eprintln!("error: cannot read snapshot {path}: {e}");
                return EXIT_RUNTIME;
            }
        },
        None => None,
    };

    // The simulation itself runs inside the hardened panic boundary —
    // and, under --deadline, on a watchdog-guarded thread.
    let resume_path = resume_input.as_ref().map(|(p, _)| p.clone());
    let scenario_in = args.scenario.clone();
    let snapshot_at = args.snapshot_at;
    let job = move || -> JobOutput {
        if let Some((path, bytes)) = resume_input {
            // The snapshot carries the scenario and telemetry bus; CLI
            // scenario/telemetry flags only describe *new* runs.
            let run = SimRun::resume_marked(&bytes)?;
            eprintln!("resumed {path} at t = {}", run.now());
            let scenario = run.scenario().clone();
            let (metrics, telemetry) = run.finish();
            Ok((scenario, metrics, telemetry, None))
        } else {
            let mut run = SimRun::new(&scenario_in, telemetry);
            let snapshot = snapshot_at.map(|at| {
                run.run_until(at);
                let bytes = run.capture();
                eprintln!("captured {} bytes at t = {}", bytes.len(), run.now());
                bytes
            });
            let (metrics, telemetry) = run.finish();
            Ok((scenario_in, metrics, telemetry, snapshot))
        }
    };
    let outcome: Result<JobOutput, CaughtPanic> = match args.deadline {
        None => run_guarded(job),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let spawned = std::thread::Builder::new()
                .name("cocoa-run-job".into())
                .spawn(move || {
                    let _ = tx.send(run_guarded(job));
                });
            if let Err(e) = spawned {
                eprintln!("error: cannot spawn the run thread: {e}");
                return EXIT_RUNTIME;
            }
            match rx.recv_timeout(limit) {
                Ok(out) => out,
                Err(_) => {
                    eprintln!(
                        "error: run exceeded the {:.1} s wall-clock deadline",
                        limit.as_secs_f64()
                    );
                    return EXIT_DEADLINE;
                }
            }
        }
    };
    let (scenario, metrics, telemetry, snapshot_bytes) = match outcome {
        Ok(Ok(v)) => v,
        Ok(Err(e)) => {
            let path = resume_path.as_deref().unwrap_or("<snapshot>");
            eprintln!("error: cannot restore snapshot {path}: {e}");
            return EXIT_SNAPSHOT;
        }
        Err(p) => {
            eprintln!("error: run panicked: {}", p.payload);
            if let Some(bt) = p.backtrace {
                eprintln!("{bt}");
            }
            return EXIT_RUNTIME;
        }
    };
    if let Some(bytes) = snapshot_bytes {
        match std::fs::write(&args.snapshot_out, &bytes) {
            Ok(()) => eprintln!("wrote {} ({} bytes)", args.snapshot_out, bytes.len()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", args.snapshot_out);
                return EXIT_RUNTIME;
            }
        }
    }
    print!("{}", report::markdown_summary(&scenario, &metrics));
    eprintln!("\n(wall time {:.1} s)", start.elapsed().as_secs_f64());
    if let Some(path) = &args.trace_out {
        match std::fs::write(path, telemetry.to_jsonl(true)) {
            Ok(()) => eprintln!(
                "wrote {path} ({} events, {} dropped)",
                telemetry.events_emitted(),
                telemetry.dropped_events()
            ),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        use cocoa_sim::telemetry::export::MetricsSnapshot;
        let text = MetricsSnapshot::from_telemetry(&telemetry).to_exposition();
        // Atomic tmp+rename so a reader never observes a half-written file.
        let tmp = format!("{path}.tmp");
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
        match result {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return EXIT_RUNTIME;
            }
        }
    }
    if let Some(prefix) = args.csv_prefix {
        let write = |suffix: &str, body: String| {
            let path = format!("{prefix}-{suffix}.csv");
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        };
        write("errors", report::error_series_csv(&metrics));
        write("energy", report::energy_csv(&metrics));
        write("mesh", report::mesh_csv(&scenario, &metrics));
        if !metrics.snapshots.is_empty() {
            write("snapshots", report::snapshots_csv(&metrics));
        }
        if !scenario.faults.is_empty() {
            write("robustness", report::robustness_csv(&metrics));
            write("health", report::health_csv(&metrics));
        }
        if telemetry.level() >= cocoa_sim::telemetry::TelemetryLevel::Counters {
            write("counters", report::telemetry_counters_csv(&telemetry));
            write("spans", report::telemetry_spans_csv(&telemetry));
        }
        if telemetry.level() >= cocoa_sim::telemetry::TelemetryLevel::Timeline {
            write("timeline", report::timeline_csv(&telemetry));
        }
    }
    0
}
