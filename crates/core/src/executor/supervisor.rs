//! Supervised job execution: panic isolation, wall-clock deadlines,
//! retry with deterministic backoff, and typed failure classification.
//!
//! The plain executor ([`super::map_bounded`]) propagates the first
//! panic and a hung job blocks its worker forever — acceptable for
//! interactive figure regeneration, fatal for long unattended sweeps.
//! The [`Supervisor`] wraps each job in a hardened boundary instead:
//!
//! - **Panic isolation** — every attempt runs under
//!   [`std::panic::catch_unwind`]; the payload is stringified, the
//!   panicking thread's backtrace captured, and the other jobs keep
//!   running ([`run_guarded`] is the boundary).
//! - **Deadlines** — with [`SupervisorConfig::deadline`] set, each
//!   attempt runs on its own watchdog-guarded thread; the worker waits
//!   with a timeout and classifies an overrun as
//!   [`JobFailure::DeadlineExceeded`]. The runaway thread itself cannot
//!   be killed safely, so it is abandoned: it keeps running detached
//!   and its eventual result is discarded. That trades bounded memory
//!   for forward progress — the documented cost of supervising jobs
//!   that cannot be cancelled cooperatively.
//! - **Retry with seeded backoff** — failed and timed-out attempts are
//!   retried up to [`SupervisorConfig::max_attempts`] times with
//!   exponential backoff whose jitter is drawn from the job's own
//!   deterministic RNG stream ([`SeedSplitter`]), so a rerun of the
//!   same sweep sleeps the same schedule and — the jobs themselves
//!   being deterministic — produces byte-identical results.
//! - **Structured reporting** — terminal failures are classified into
//!   [`JobFailure`] and collected into a [`SweepReport`] alongside the
//!   successful results; nothing aborts the process.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

use cocoa_sim::rng::SeedSplitter;
use cocoa_sim::telemetry::Telemetry;

// ---------------------------------------------------------------------------
// The hardened panic boundary.

thread_local! {
    static SUPERVISED_DEPTH: Cell<u32> = const { Cell::new(0) };
    static LAST_BACKTRACE: RefCell<Option<String>> = const { RefCell::new(None) };
}

static CAPTURE_HOOK: OnceLock<()> = OnceLock::new();

/// Installs the process-wide panic hook that captures backtraces for
/// supervised frames and silences their default stderr report, while
/// delegating unsupervised panics to the previously installed hook.
fn install_capture_hook() {
    CAPTURE_HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPERVISED_DEPTH.with(Cell::get) > 0 {
                let bt = std::backtrace::Backtrace::force_capture().to_string();
                LAST_BACKTRACE.with(|b| *b.borrow_mut() = Some(bt));
            } else {
                previous(info);
            }
        }));
    });
}

/// A panic caught at the supervision boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    /// The panic payload rendered to a string (`&str` and `String`
    /// payloads verbatim; anything else becomes a placeholder).
    pub payload: String,
    /// The backtrace of the panicking thread, captured at the panic
    /// site regardless of `RUST_BACKTRACE`.
    pub backtrace: Option<String>,
}

impl CaughtPanic {
    /// Re-raises the panic with the stringified payload.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(Box::new(self.payload))
    }
}

impl fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panic: {}", self.payload)
    }
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` inside the hardened panic boundary.
///
/// A panic in `f` is caught, its payload stringified, its backtrace
/// captured at the panic site, and the default "thread panicked"
/// stderr noise suppressed. Jobs own their inputs and a failed attempt
/// discards all of its partial state — only values returned by a
/// *successful* attempt are ever consumed — which is what makes the
/// `AssertUnwindSafe` below sound.
pub fn run_guarded<R>(f: impl FnOnce() -> R) -> Result<R, CaughtPanic> {
    install_capture_hook();
    // Balance the depth counter even if `f` panics (we are about to
    // catch that panic, so the decrement must sit in a drop guard).
    struct DepthGuard;
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            SUPERVISED_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SUPERVISED_DEPTH.with(|d| d.set(d.get() + 1));
    let guard = DepthGuard;
    let result = catch_unwind(AssertUnwindSafe(f));
    drop(guard);
    result.map_err(|payload| CaughtPanic {
        payload: payload_string(payload.as_ref()),
        backtrace: LAST_BACKTRACE.with(|b| b.borrow_mut().take()),
    })
}

// ---------------------------------------------------------------------------
// Failure taxonomy.

/// Why a job terminally failed, after retries were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked on its final attempt.
    Panic(CaughtPanic),
    /// The job exceeded its per-attempt wall-clock deadline on its
    /// final attempt.
    DeadlineExceeded {
        /// The configured per-attempt limit.
        limit: Duration,
    },
    /// A checkpoint or snapshot the job depended on failed to decode.
    SnapshotCorrupt {
        /// The underlying decode error.
        detail: String,
    },
    /// The job's input failed validation. Never retried: validation is
    /// deterministic, so a second attempt cannot succeed.
    Validation {
        /// The validation error.
        detail: String,
    },
}

impl JobFailure {
    /// A stable short tag for reports and CSV rows.
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::Panic(_) => "panic",
            JobFailure::DeadlineExceeded { .. } => "deadline",
            JobFailure::SnapshotCorrupt { .. } => "snapshot-corrupt",
            JobFailure::Validation { .. } => "validation",
        }
    }

    /// Whether another attempt could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, JobFailure::Validation { .. })
    }

    /// The human-readable detail line (panic payload, error message…).
    pub fn detail(&self) -> String {
        match self {
            JobFailure::Panic(p) => p.payload.clone(),
            JobFailure::DeadlineExceeded { limit } => {
                format!(
                    "exceeded the {:.3} s wall-clock deadline",
                    limit.as_secs_f64()
                )
            }
            JobFailure::SnapshotCorrupt { detail } | JobFailure::Validation { detail } => {
                detail.clone()
            }
        }
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

// ---------------------------------------------------------------------------
// Policy and report types.

/// Supervision policy for one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Total attempts per job (1 = no retries). Clamped to at least 1.
    pub max_attempts: u32,
    /// Per-attempt wall-clock deadline. `None` disables the watchdog
    /// and runs attempts inline on the worker.
    pub deadline: Option<Duration>,
    /// Base delay before the first retry; doubles per retry. Zero (the
    /// default) disables backoff sleeping entirely.
    pub backoff_base: Duration,
    /// Upper bound on the exponential part of the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_attempts: 3,
            deadline: None,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// What happened to one job: how many attempts it took and either its
/// result or the classified terminal failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<R> {
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// The job's value, or why it terminally failed.
    pub result: Result<R, JobFailure>,
}

/// Aggregate supervision counters, exported as `supervisor.*`
/// telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorCounters {
    /// Attempts re-run after a retryable failure.
    pub retries: u64,
    /// Attempts that exceeded the wall-clock deadline.
    pub timeouts: u64,
    /// Panics caught at the supervision boundary.
    pub panics_caught: u64,
    /// Sweep-manifest checkpoints persisted to disk.
    pub checkpoints_written: u64,
    /// Points skipped on resume because the manifest already carried
    /// their metrics.
    pub points_skipped_on_resume: u64,
    /// In-flight snapshots that failed to decode (the point restarted
    /// cold instead).
    pub snapshots_corrupt: u64,
}

impl SupervisorCounters {
    /// Every counter as a stable `(name, value)` list, in declaration
    /// order, under the `supervisor.` prefix.
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("supervisor.retries", self.retries),
            ("supervisor.timeouts", self.timeouts),
            ("supervisor.panics_caught", self.panics_caught),
            ("supervisor.checkpoints_written", self.checkpoints_written),
            (
                "supervisor.points_skipped_on_resume",
                self.points_skipped_on_resume,
            ),
            ("supervisor.snapshots_corrupt", self.snapshots_corrupt),
        ]
    }

    /// Accumulates another report's counters into this one. The serve
    /// layer runs many single-job supervisions and keeps one
    /// process-lifetime aggregate for its stats endpoint.
    pub fn merge(&mut self, other: &SupervisorCounters) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.panics_caught += other.panics_caught;
        self.checkpoints_written += other.checkpoints_written;
        self.points_skipped_on_resume += other.points_skipped_on_resume;
        self.snapshots_corrupt += other.snapshots_corrupt;
    }

    /// Publishes the counters onto a telemetry bus.
    pub fn absorb_into(&self, telemetry: &mut Telemetry) {
        for (name, value) in self.as_pairs() {
            telemetry.absorb(name, value);
        }
    }
}

/// A live observation from the supervised fleet: one attempt-level
/// state change of one job. Emitted synchronously from worker threads,
/// so observers must be cheap and thread-safe; they exist to drive
/// progress displays and status files, never control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// An attempt is starting (`attempt` is 1-based).
    Started {
        /// Job index in input order.
        index: usize,
        /// Attempt number, starting at 1.
        attempt: u32,
    },
    /// The job produced a value.
    Completed {
        /// Job index in input order.
        index: usize,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The attempt failed retryably; another attempt will follow.
    Retrying {
        /// Job index in input order.
        index: usize,
        /// The attempt that just failed.
        attempt: u32,
        /// Failure tag ([`JobFailure::kind`]).
        kind: &'static str,
    },
    /// The job terminally failed.
    Failed {
        /// Job index in input order.
        index: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Failure tag ([`JobFailure::kind`]).
        kind: &'static str,
    },
}

/// Shared callback receiving [`JobEvent`]s as a fleet progresses.
pub type JobObserver = Arc<dyn Fn(JobEvent) + Send + Sync>;

/// The structured result of a supervised sweep: one outcome per job in
/// input order, plus the aggregate counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<R> {
    /// Per-job outcomes, in input order.
    pub outcomes: Vec<JobOutcome<R>>,
    /// Aggregate supervision counters.
    pub counters: SupervisorCounters,
}

impl<R> SweepReport<R> {
    /// Number of jobs that produced a value.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Number of jobs that terminally failed.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }

    /// Whether every job completed.
    pub fn is_clean(&self) -> bool {
        self.failed() == 0
    }

    /// The terminal failures, as `(job index, failure)` in input order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &JobFailure)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.result.as_ref().err().map(|f| (i, f)))
    }

    /// Per-job results in input order, `None` where the job failed.
    pub fn results(&self) -> Vec<Option<&R>> {
        self.outcomes
            .iter()
            .map(|o| o.result.as_ref().ok())
            .collect()
    }

    /// Consumes the report into per-job results, in input order.
    pub fn into_results(self) -> Vec<Result<R, JobFailure>> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }

    /// Unwraps every result, panicking with a failure summary if any
    /// job failed — the strict entry for callers that cannot degrade.
    pub fn expect_all(self, context: &str) -> Vec<R> {
        let failed: Vec<String> = self
            .failures()
            .map(|(i, f)| format!("job {i}: {f}"))
            .collect();
        assert!(failed.is_empty(), "{context}: {}", failed.join("; "));
        self.into_results()
            .into_iter()
            .map(|r| r.expect("checked above"))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The supervisor.

#[derive(Default)]
struct AtomicCounters {
    retries: AtomicU64,
    timeouts: AtomicU64,
    panics_caught: AtomicU64,
}

/// Runs jobs under the supervision policy of a [`SupervisorConfig`]:
/// panic-isolated, deadline-bounded, retried with deterministic
/// backoff, reported as a [`SweepReport`].
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    cfg: SupervisorConfig,
}

impl Supervisor {
    /// A supervisor with the given policy.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Supervisor { cfg }
    }

    /// The policy this supervisor runs.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Supervised map over `items` with backoff jitter keyed by job
    /// index. See [`Supervisor::map_seeded`].
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> SweepReport<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> Result<R, JobFailure> + Send + Sync + 'static,
    {
        self.map_seeded(items, |_| 0, f)
    }

    /// Applies `f` to every item on the bounded worker pool, each call
    /// supervised: panics are caught and classified, attempts are
    /// deadline-bounded when configured, and retryable failures re-run
    /// with exponential backoff whose jitter comes from the stream
    /// `SeedSplitter::new(seed_of(item)).seed_for("supervisor.backoff", …)`
    /// — the job's own RNG universe, so reruns sleep identically.
    ///
    /// Results come back in input order. The `'static` bounds exist
    /// because a deadline-exceeding attempt is abandoned on a detached
    /// thread that may outlive this call; inputs are therefore shared
    /// via `Arc` rather than borrowed.
    pub fn map_seeded<T, R, F, S>(&self, items: Vec<T>, seed_of: S, f: F) -> SweepReport<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> Result<R, JobFailure> + Send + Sync + 'static,
        S: Fn(&T) -> u64 + Sync,
    {
        self.map_seeded_observed(items, seed_of, f, None)
    }

    /// Like [`Supervisor::map_seeded`], but every attempt-level state
    /// change is reported to `observer` as it happens — the seam behind
    /// live fleet displays (see [`super::fleet::FleetStatus`]).
    pub fn map_seeded_observed<T, R, F, S>(
        &self,
        items: Vec<T>,
        seed_of: S,
        f: F,
        observer: Option<JobObserver>,
    ) -> SweepReport<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> Result<R, JobFailure> + Send + Sync + 'static,
        S: Fn(&T) -> u64 + Sync,
    {
        let n = items.len();
        if n == 0 {
            return SweepReport {
                outcomes: Vec::new(),
                counters: SupervisorCounters::default(),
            };
        }
        let items = Arc::new(items);
        let f = Arc::new(f);
        let next = AtomicUsize::new(0);
        let counters = AtomicCounters::default();
        let slots: Vec<Mutex<Option<JobOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = super::max_workers().min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let seed = seed_of(&items[i]);
                    let outcome = self.run_job(&counters, &items, &f, i, seed, observer.as_deref());
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });
        SweepReport {
            outcomes: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("every index was claimed exactly once")
                })
                .collect(),
            counters: SupervisorCounters {
                retries: counters.retries.load(Ordering::Relaxed),
                timeouts: counters.timeouts.load(Ordering::Relaxed),
                panics_caught: counters.panics_caught.load(Ordering::Relaxed),
                ..SupervisorCounters::default()
            },
        }
    }

    /// The retry loop around one job.
    fn run_job<T, R, F>(
        &self,
        counters: &AtomicCounters,
        items: &Arc<Vec<T>>,
        f: &Arc<F>,
        index: usize,
        seed: u64,
        observer: Option<&(dyn Fn(JobEvent) + Send + Sync)>,
    ) -> JobOutcome<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> Result<R, JobFailure> + Send + Sync + 'static,
    {
        let notify = |event: JobEvent| {
            if let Some(obs) = observer {
                obs(event);
            }
        };
        let splitter = SeedSplitter::new(seed);
        let max_attempts = self.cfg.max_attempts.max(1);
        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            notify(JobEvent::Started {
                index,
                attempt: attempts,
            });
            let attempt = run_attempt(self.cfg.deadline, items, f, index);
            let failure = match attempt {
                Ok(Ok(value)) => break Ok(value),
                Ok(Err(failure)) => failure,
                Err(panic) => {
                    counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                    JobFailure::Panic(panic)
                }
            };
            if matches!(failure, JobFailure::DeadlineExceeded { .. }) {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            if !failure.is_retryable() || attempts >= max_attempts {
                break Err(failure);
            }
            counters.retries.fetch_add(1, Ordering::Relaxed);
            notify(JobEvent::Retrying {
                index,
                attempt: attempts,
                kind: failure.kind(),
            });
            let delay = backoff_delay(&self.cfg, &splitter, index, attempts);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        };
        match &result {
            Ok(_) => notify(JobEvent::Completed { index, attempts }),
            Err(failure) => notify(JobEvent::Failed {
                index,
                attempts,
                kind: failure.kind(),
            }),
        }
        JobOutcome { attempts, result }
    }
}

/// Runs one attempt inside the panic boundary — inline when no
/// deadline is set, on a watchdog-guarded thread otherwise.
///
/// On an overrun the attempt thread is *abandoned*, not killed: it
/// keeps running detached and its eventual send lands in a
/// disconnected channel. The alternative — killing a thread mid-run —
/// is unsound in Rust, and the jobs here (whole simulations) have no
/// cooperative cancellation point cheap enough to be worth threading
/// through every model.
fn run_attempt<T, R, F>(
    deadline: Option<Duration>,
    items: &Arc<Vec<T>>,
    f: &Arc<F>,
    index: usize,
) -> Result<Result<R, JobFailure>, CaughtPanic>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> Result<R, JobFailure> + Send + Sync + 'static,
{
    let Some(limit) = deadline else {
        return run_guarded(|| f(index, &items[index]));
    };
    let (tx, rx) = mpsc::channel();
    let items = Arc::clone(items);
    let f = Arc::clone(f);
    let spawned = std::thread::Builder::new()
        .name(format!("cocoa-supervised-{index}"))
        .spawn(move || {
            let out = run_guarded(|| f(index, &items[index]));
            let _ = tx.send(out);
        });
    match spawned {
        Err(e) => Err(CaughtPanic {
            payload: format!("failed to spawn supervised job thread: {e}"),
            backtrace: None,
        }),
        Ok(_detached) => match rx.recv_timeout(limit) {
            Ok(out) => out,
            Err(_) => Ok(Err(JobFailure::DeadlineExceeded { limit })),
        },
    }
}

/// The delay before retry number `attempt` of job `index`:
/// exponential in the attempt count, capped, plus jitter drawn from
/// the job's own deterministic stream (up to half the exponential
/// part). Zero when backoff is disabled.
fn backoff_delay(
    cfg: &SupervisorConfig,
    splitter: &SeedSplitter,
    index: usize,
    attempt: u32,
) -> Duration {
    if cfg.backoff_base.is_zero() {
        return Duration::ZERO;
    }
    let exp = cfg
        .backoff_base
        .saturating_mul(2u32.saturating_pow(attempt.saturating_sub(1)))
        .min(cfg.backoff_cap);
    let stream = ((index as u64) << 16) | u64::from(attempt);
    let seed = splitter.seed_for("supervisor.backoff", stream);
    let word = u64::from_le_bytes(seed[..8].try_into().expect("8 bytes"));
    let span_ms = (exp.as_millis() as u64 / 2).max(1);
    exp + Duration::from_millis(word % span_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn all_jobs_succeed_first_try() {
        let sup = Supervisor::new(SupervisorConfig::default());
        let report = sup.map((0..10u64).collect(), |_, &x| Ok(x * 2));
        assert!(report.is_clean());
        assert_eq!(report.completed(), 10);
        assert_eq!(
            report.clone().expect_all("test"),
            (0..10).map(|x| x * 2).collect::<Vec<u64>>()
        );
        assert!(report.outcomes.iter().all(|o| o.attempts == 1));
        assert_eq!(report.counters, SupervisorCounters::default());
    }

    #[test]
    fn panicking_job_is_isolated_and_classified() {
        let sup = Supervisor::new(SupervisorConfig {
            max_attempts: 2,
            ..SupervisorConfig::default()
        });
        let report = sup.map((0..8usize).collect(), |_, &x| {
            assert!(x != 5, "boom {x}");
            Ok(x)
        });
        assert_eq!(report.completed(), 7);
        assert_eq!(report.failed(), 1);
        let (idx, failure) = report.failures().next().expect("one failure");
        assert_eq!(idx, 5);
        assert_eq!(failure.kind(), "panic");
        assert!(failure.detail().contains("boom 5"), "{failure}");
        assert_eq!(report.outcomes[5].attempts, 2);
        assert_eq!(report.counters.panics_caught, 2);
        assert_eq!(report.counters.retries, 1);
        // The surviving results are intact and ordered.
        let results = report.results();
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(&i));
            }
        }
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        let failures_left = AtomicU32::new(2);
        let failures_left = std::sync::Arc::new(failures_left);
        let fl = std::sync::Arc::clone(&failures_left);
        let sup = Supervisor::new(SupervisorConfig {
            max_attempts: 3,
            ..SupervisorConfig::default()
        });
        let report = sup.map(vec![7u64], move |_, &x| {
            if fl
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("flaky");
            }
            Ok(x)
        });
        assert!(report.is_clean());
        assert_eq!(report.outcomes[0].attempts, 3);
        assert_eq!(report.counters.retries, 2);
        assert_eq!(report.counters.panics_caught, 2);
    }

    #[test]
    fn validation_failures_are_terminal_without_retry() {
        let sup = Supervisor::new(SupervisorConfig {
            max_attempts: 5,
            ..SupervisorConfig::default()
        });
        let report = sup.map(vec![1u64], |_, _| -> Result<u64, JobFailure> {
            Err(JobFailure::Validation {
                detail: "bad input".into(),
            })
        });
        assert_eq!(report.failed(), 1);
        assert_eq!(report.outcomes[0].attempts, 1, "validation must not retry");
        assert_eq!(report.counters.retries, 0);
    }

    #[test]
    fn deadline_classifies_hung_jobs() {
        let sup = Supervisor::new(SupervisorConfig {
            max_attempts: 2,
            deadline: Some(Duration::from_millis(50)),
            ..SupervisorConfig::default()
        });
        let report = sup.map(vec![0u64, 1], |i, &x| {
            if i == 0 {
                // Far past the deadline; the attempt thread is abandoned.
                std::thread::sleep(Duration::from_secs(5));
            }
            Ok(x)
        });
        assert_eq!(report.completed(), 1);
        let (idx, failure) = report.failures().next().expect("one failure");
        assert_eq!(idx, 0);
        assert_eq!(failure.kind(), "deadline");
        assert_eq!(report.outcomes[0].attempts, 2);
        assert_eq!(report.counters.timeouts, 2);
        assert_eq!(report.counters.retries, 1);
        assert_eq!(report.outcomes[1].result, Ok(1));
    }

    #[test]
    fn guarded_panic_captures_payload_and_backtrace() {
        let caught = run_guarded(|| -> u32 { panic!("captured {}", 41 + 1) }).unwrap_err();
        assert_eq!(caught.payload, "captured 42");
        let bt = caught.backtrace.expect("backtrace captured at panic site");
        assert!(!bt.is_empty());
        // A clean call returns the value and leaves no stale backtrace.
        assert_eq!(run_guarded(|| 7).unwrap(), 7);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(8),
            backoff_cap: Duration::from_millis(100),
            ..SupervisorConfig::default()
        };
        let s = SeedSplitter::new(42);
        let a = backoff_delay(&cfg, &s, 3, 1);
        let b = backoff_delay(&cfg, &s, 3, 1);
        assert_eq!(a, b, "same job + attempt => same delay");
        assert_ne!(
            backoff_delay(&cfg, &s, 3, 1),
            backoff_delay(&cfg, &s, 4, 1),
            "different jobs jitter independently"
        );
        for attempt in 1..=10 {
            let d = backoff_delay(&cfg, &s, 0, attempt);
            assert!(d >= cfg.backoff_base);
            assert!(d <= cfg.backoff_cap + cfg.backoff_cap / 2);
        }
        let off = SupervisorConfig::default();
        assert_eq!(backoff_delay(&off, &s, 0, 1), Duration::ZERO);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let sup = Supervisor::default();
        let report = sup.map(Vec::<u64>::new(), |_, &x| Ok(x));
        assert!(report.outcomes.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn observer_sees_the_full_job_lifecycle() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let sup = Supervisor::new(SupervisorConfig {
            max_attempts: 2,
            ..SupervisorConfig::default()
        });
        let report = sup.map_seeded_observed(
            vec![0u64, 1],
            |_| 0,
            |i, &x| {
                assert!(i != 1, "boom");
                Ok(x)
            },
            Some(Arc::new(move |e| {
                sink.lock().expect("sink").push(e);
            })),
        );
        assert_eq!(report.completed(), 1);
        let events = events.lock().expect("sink");
        let of = |index: usize| -> Vec<JobEvent> {
            events
                .iter()
                .copied()
                .filter(|e| match e {
                    JobEvent::Started { index: i, .. }
                    | JobEvent::Completed { index: i, .. }
                    | JobEvent::Retrying { index: i, .. }
                    | JobEvent::Failed { index: i, .. } => *i == index,
                })
                .collect()
        };
        assert_eq!(
            of(0),
            vec![
                JobEvent::Started {
                    index: 0,
                    attempt: 1
                },
                JobEvent::Completed {
                    index: 0,
                    attempts: 1
                },
            ]
        );
        assert_eq!(
            of(1),
            vec![
                JobEvent::Started {
                    index: 1,
                    attempt: 1
                },
                JobEvent::Retrying {
                    index: 1,
                    attempt: 1,
                    kind: "panic"
                },
                JobEvent::Started {
                    index: 1,
                    attempt: 2
                },
                JobEvent::Failed {
                    index: 1,
                    attempts: 2,
                    kind: "panic"
                },
            ]
        );
    }

    #[test]
    fn counters_export_under_supervisor_prefix() {
        let c = SupervisorCounters {
            retries: 1,
            timeouts: 2,
            panics_caught: 3,
            checkpoints_written: 4,
            points_skipped_on_resume: 5,
            snapshots_corrupt: 6,
        };
        let pairs = c.as_pairs();
        assert!(pairs.iter().all(|(n, _)| n.starts_with("supervisor.")));
        let mut t = Telemetry::new(cocoa_sim::telemetry::TelemetryLevel::Counters);
        c.absorb_into(&mut t);
        assert_eq!(t.counters().get("supervisor.retries"), Some(1));
        assert_eq!(t.counters().get("supervisor.snapshots_corrupt"), Some(6));
    }
}
