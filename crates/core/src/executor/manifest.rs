//! The sweep manifest: a versioned, CRC-guarded progress ledger that
//! makes long sweeps resumable.
//!
//! A supervised sweep periodically persists one manifest file through
//! the snapshot container codec (`CSNP` magic, per-section CRC-32).
//! The manifest records, per sweep point:
//!
//! - a **fingerprint** of the scenario (so a manifest is never replayed
//!   against a different sweep),
//! - its **state**: still pending, in flight (carrying the latest
//!   [`SimRun::capture`](crate::runner::SimRun::capture) snapshot so a
//!   restart warm-forks mid-run instead of starting cold), or
//!   completed (carrying the full [`RunMetrics`], byte-exact).
//!
//! Writes are atomic (temp file + rename), so a `SIGKILL` mid-write
//! leaves the previous good manifest on disk rather than a torn one.

use std::fmt;
use std::path::Path;

use cocoa_multicast::mesh::MeshStats;
use cocoa_net::energy::EnergyLedger;
use cocoa_net::geometry::Point;
use cocoa_sim::jsonfmt::ObjectWriter;
use cocoa_sim::snapshot::{
    put_bytes, put_f64, put_u64, put_u8, put_usize, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter,
};
use cocoa_sim::time::SimTime;

use crate::health::HealthLedger;
use crate::metrics::{
    EnergyReport, ErrorPoint, ErrorSnapshot, RobotFinalState, RobustnessStats, RunMetrics,
    TrafficStats,
};

/// The `kind` tag stamped into every manifest's meta line.
pub const MANIFEST_KIND: &str = "cocoa-sweep-manifest";

/// Guard against absurd element counts from corrupt length prefixes.
const CAP_GUARD: usize = 1 << 20;

/// Why a manifest could not be loaded or stored.
#[derive(Debug)]
pub enum ManifestError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The bytes are not a valid manifest (truncation, CRC mismatch,
    /// schema drift…).
    Corrupt(SnapshotError),
    /// The file is a valid snapshot container but not a sweep manifest.
    WrongKind(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::Corrupt(e) => write!(f, "corrupt manifest: {e}"),
            ManifestError::WrongKind(meta) => {
                write!(f, "not a sweep manifest (meta: {meta})")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<SnapshotError> for ManifestError {
    fn from(e: SnapshotError) -> Self {
        ManifestError::Corrupt(e)
    }
}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// Where one sweep point stands.
#[derive(Debug, Clone, PartialEq)]
pub enum PointState {
    /// Not started (or restarted after a terminal failure).
    Pending,
    /// Mid-run: the latest engine snapshot, resumable via
    /// [`SimRun::resume`](crate::runner::SimRun::resume).
    InFlight(Vec<u8>),
    /// Finished: the point's metrics, byte-exact.
    Completed(Box<RunMetrics>),
}

impl PointState {
    /// Short tag for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            PointState::Pending => "pending",
            PointState::InFlight(_) => "in-flight",
            PointState::Completed(_) => "completed",
        }
    }
}

/// Progress ledger for one sweep: per-point fingerprints and states.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepManifest {
    /// Scenario fingerprints, one per sweep point, in sweep order.
    pub fingerprints: Vec<u64>,
    /// Per-point progress, parallel to `fingerprints`.
    pub states: Vec<PointState>,
}

impl SweepManifest {
    /// A fresh manifest with every point pending.
    pub fn new(fingerprints: Vec<u64>) -> Self {
        let states = fingerprints.iter().map(|_| PointState::Pending).collect();
        SweepManifest {
            fingerprints,
            states,
        }
    }

    /// Whether this manifest describes exactly the given sweep.
    pub fn matches(&self, fingerprints: &[u64]) -> bool {
        self.fingerprints == fingerprints
    }

    /// Number of points already completed.
    pub fn completed_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, PointState::Completed(_)))
            .count()
    }

    /// Serializes the manifest through the snapshot container codec.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = ObjectWriter::new();
        meta.str_field("kind", MANIFEST_KIND)
            .u64_field("points", self.fingerprints.len() as u64);
        let meta = meta.finish();
        let mut body = Vec::new();
        put_usize(&mut body, self.fingerprints.len());
        for (fp, state) in self.fingerprints.iter().zip(&self.states) {
            put_u64(&mut body, *fp);
            match state {
                PointState::Pending => put_u8(&mut body, 0),
                PointState::InFlight(snap) => {
                    put_u8(&mut body, 1);
                    put_bytes(&mut body, snap);
                }
                PointState::Completed(metrics) => {
                    put_u8(&mut body, 2);
                    put_bytes(&mut body, &encode_metrics(metrics));
                }
            }
        }
        let mut w = SnapshotWriter::new(meta);
        w.push_section("sweep", body);
        w.finish()
    }

    /// Decodes a manifest, verifying the container CRC and the meta
    /// `kind` tag.
    pub fn decode(bytes: &[u8]) -> Result<SweepManifest, ManifestError> {
        let snap = Snapshot::parse(bytes)?;
        let wanted = format!("\"kind\":\"{MANIFEST_KIND}\"");
        if !snap.meta().contains(&wanted) {
            return Err(ManifestError::WrongKind(snap.meta().to_string()));
        }
        let mut r = snap.section("sweep")?;
        let n = r.usize_()?;
        if n > CAP_GUARD {
            return Err(SnapshotError::Malformed {
                context: format!("manifest declares {n} points"),
            }
            .into());
        }
        let mut fingerprints = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            fingerprints.push(r.u64()?);
            let tag = r.u8()?;
            states.push(match tag {
                0 => PointState::Pending,
                1 => PointState::InFlight(r.bytes()?.to_vec()),
                2 => {
                    let payload = r.bytes()?;
                    PointState::Completed(Box::new(decode_metrics(payload)?))
                }
                other => {
                    return Err(SnapshotError::Malformed {
                        context: format!("point {i}: unknown state tag {other}"),
                    }
                    .into())
                }
            });
        }
        r.finish()?;
        Ok(SweepManifest {
            fingerprints,
            states,
        })
    }

    /// Atomically persists the manifest: the bytes land in a sibling
    /// temp file first and replace `path` via rename, so a crash
    /// mid-write cannot corrupt the previous good manifest.
    pub fn store(&self, path: &Path) -> Result<(), ManifestError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a manifest from disk. A missing file is `Ok(None)` (a
    /// fresh sweep); anything unreadable or undecodable is an error.
    pub fn load(path: &Path) -> Result<Option<SweepManifest>, ManifestError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ManifestError::Io(e)),
        };
        Ok(Some(SweepManifest::decode(&bytes)?))
    }
}

// ---------------------------------------------------------------------------
// RunMetrics wire codec.
//
// serde in this tree is a vendored stub (no real serialization), so the
// manifest carries metrics through the same hand-rolled little-endian
// style as the engine snapshot codec. f64 fields travel as raw bit
// patterns — byte-exact round-trips are the whole point.

fn put_vec<T>(buf: &mut Vec<u8>, items: &[T], mut put: impl FnMut(&mut Vec<u8>, &T)) {
    put_usize(buf, items.len());
    for item in items {
        put(buf, item);
    }
}

fn read_vec<T>(
    r: &mut SnapshotReader<'_>,
    what: &str,
    mut read: impl FnMut(&mut SnapshotReader<'_>) -> Result<T, SnapshotError>,
) -> Result<Vec<T>, SnapshotError> {
    let n = r.usize_()?;
    if n > CAP_GUARD {
        return Err(SnapshotError::Malformed {
            context: format!("{what}: impossible length {n}"),
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read(r)?);
    }
    Ok(out)
}

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    put_u64(buf, t.as_micros());
}

fn read_time(r: &mut SnapshotReader<'_>) -> Result<SimTime, SnapshotError> {
    Ok(SimTime::from_micros(r.u64()?))
}

fn put_point(buf: &mut Vec<u8>, p: &Point) {
    put_f64(buf, p.x);
    put_f64(buf, p.y);
}

fn read_point(r: &mut SnapshotReader<'_>) -> Result<Point, SnapshotError> {
    Ok(Point {
        x: r.f64()?,
        y: r.f64()?,
    })
}

fn put_final_state(buf: &mut Vec<u8>, s: &RobotFinalState) {
    put_point(buf, &s.true_position);
    put_point(buf, &s.estimate);
    cocoa_sim::snapshot::put_bool(buf, s.equipped);
}

fn read_final_state(r: &mut SnapshotReader<'_>) -> Result<RobotFinalState, SnapshotError> {
    Ok(RobotFinalState {
        true_position: read_point(r)?,
        estimate: read_point(r)?,
        equipped: r.bool()?,
    })
}

/// Serializes metrics to the manifest wire form (f64s as raw bits, so
/// decode → encode is the identity on bytes).
pub fn encode_metrics(m: &RunMetrics) -> Vec<u8> {
    let mut b = Vec::new();
    put_vec(&mut b, &m.error_series, |b, p| {
        put_f64(b, p.t_s);
        put_f64(b, p.mean_error_m);
        put_usize(b, p.robots);
    });
    put_vec(&mut b, &m.snapshots, |b, s| {
        put_time(b, s.time);
        put_vec(b, &s.errors_m, |b, &e| put_f64(b, e));
    });
    put_vec(&mut b, &m.energy.per_robot, |b, l| {
        put_f64(b, l.tx_uj);
        put_f64(b, l.rx_uj);
        put_f64(b, l.idle_uj);
        put_f64(b, l.sleep_uj);
        put_f64(b, l.wake_uj);
    });
    for v in [
        m.mesh.queries_originated,
        m.mesh.queries_rebroadcast,
        m.mesh.queries_suppressed,
        m.mesh.replies_sent,
        m.mesh.fg_activations,
        m.mesh.data_originated,
        m.mesh.data_forwarded,
        m.mesh.data_delivered,
        m.mesh.data_duplicates,
        m.mesh.data_undecodable,
    ] {
        put_u64(&mut b, v);
    }
    for v in [
        m.traffic.beacons_sent,
        m.traffic.beacons_received,
        m.traffic.collisions,
        m.traffic.syncs_delivered,
        m.traffic.syncs_missed,
        m.traffic.fixes,
        m.traffic.starved_windows,
    ] {
        put_u64(&mut b, v);
    }
    put_vec(&mut b, &m.final_states, put_final_state);
    put_vec(&mut b, &m.position_snapshots, |b, (t, states)| {
        put_time(b, *t);
        put_vec(b, states, put_final_state);
    });
    for v in [
        m.robustness.crashes,
        m.robustness.reboots,
        m.robustness.failovers,
        m.robustness.burst_losses,
        m.robustness.corrupt_frames_dropped,
        m.robustness.garbled_frames_delivered,
        m.robustness.outlier_beacons_rejected,
        m.robustness.flat_posteriors,
        m.robustness.stale_syncs_ignored,
        m.robustness.malformed_sync_bodies,
    ] {
        put_u64(&mut b, v);
    }
    put_vec(&mut b, &m.health, |b, h| {
        put_f64(b, h.healthy_s);
        put_f64(b, h.degraded_s);
        put_f64(b, h.dead_reckoning_s);
        put_f64(b, h.down_s);
    });
    put_u64(&mut b, m.events_processed);
    b
}

/// Deserializes metrics from the manifest wire form.
pub fn decode_metrics(bytes: &[u8]) -> Result<RunMetrics, SnapshotError> {
    let mut r = SnapshotReader::new(bytes, "run metrics");
    let error_series = read_vec(&mut r, "error series", |r| {
        Ok(ErrorPoint {
            t_s: r.f64()?,
            mean_error_m: r.f64()?,
            robots: r.usize_()?,
        })
    })?;
    let snapshots = read_vec(&mut r, "error snapshots", |r| {
        let time = read_time(r)?;
        // Construct directly: the stored order is already sorted and
        // `ErrorSnapshot::new` would re-sort (and so could perturb a
        // byte-exact round-trip if NaNs are ever present).
        let errors_m = read_vec(r, "snapshot errors", |r| r.f64())?;
        Ok(ErrorSnapshot { time, errors_m })
    })?;
    let per_robot = read_vec(&mut r, "energy ledgers", |r| {
        let mut l = EnergyLedger::new();
        l.tx_uj = r.f64()?;
        l.rx_uj = r.f64()?;
        l.idle_uj = r.f64()?;
        l.sleep_uj = r.f64()?;
        l.wake_uj = r.f64()?;
        Ok(l)
    })?;
    let mesh = MeshStats {
        queries_originated: r.u64()?,
        queries_rebroadcast: r.u64()?,
        queries_suppressed: r.u64()?,
        replies_sent: r.u64()?,
        fg_activations: r.u64()?,
        data_originated: r.u64()?,
        data_forwarded: r.u64()?,
        data_delivered: r.u64()?,
        data_duplicates: r.u64()?,
        data_undecodable: r.u64()?,
    };
    let traffic = TrafficStats {
        beacons_sent: r.u64()?,
        beacons_received: r.u64()?,
        collisions: r.u64()?,
        syncs_delivered: r.u64()?,
        syncs_missed: r.u64()?,
        fixes: r.u64()?,
        starved_windows: r.u64()?,
    };
    let final_states = read_vec(&mut r, "final states", read_final_state)?;
    let position_snapshots = read_vec(&mut r, "position snapshots", |r| {
        let t = read_time(r)?;
        let states = read_vec(r, "snapshot states", read_final_state)?;
        Ok((t, states))
    })?;
    let robustness = RobustnessStats {
        crashes: r.u64()?,
        reboots: r.u64()?,
        failovers: r.u64()?,
        burst_losses: r.u64()?,
        corrupt_frames_dropped: r.u64()?,
        garbled_frames_delivered: r.u64()?,
        outlier_beacons_rejected: r.u64()?,
        flat_posteriors: r.u64()?,
        stale_syncs_ignored: r.u64()?,
        malformed_sync_bodies: r.u64()?,
    };
    let health = read_vec(&mut r, "health ledgers", |r| {
        Ok(HealthLedger {
            healthy_s: r.f64()?,
            degraded_s: r.f64()?,
            dead_reckoning_s: r.f64()?,
            down_s: r.f64()?,
        })
    })?;
    let events_processed = r.u64()?;
    r.finish()?;
    Ok(RunMetrics {
        error_series,
        snapshots,
        energy: EnergyReport { per_robot },
        mesh,
        traffic,
        final_states,
        position_snapshots,
        robustness,
        health,
        events_processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics(salt: u64) -> RunMetrics {
        let f = salt as f64;
        RunMetrics {
            error_series: vec![
                ErrorPoint {
                    t_s: 1.0 + f,
                    mean_error_m: 2.5 * (f + 1.0),
                    robots: 7,
                },
                ErrorPoint {
                    t_s: 2.0 + f,
                    mean_error_m: 1.25,
                    robots: 8,
                },
            ],
            snapshots: vec![ErrorSnapshot {
                time: SimTime::from_secs(804 + salt),
                errors_m: vec![0.5, 1.5, f + 2.0],
            }],
            energy: EnergyReport {
                per_robot: vec![EnergyLedger {
                    tx_uj: 1.0,
                    rx_uj: 2.0,
                    idle_uj: 3.0,
                    sleep_uj: 4.0,
                    wake_uj: f,
                }],
            },
            mesh: MeshStats {
                queries_originated: salt,
                data_delivered: 99,
                ..MeshStats::default()
            },
            traffic: TrafficStats {
                beacons_sent: 1000 + salt,
                fixes: 42,
                ..TrafficStats::default()
            },
            final_states: vec![RobotFinalState {
                true_position: Point { x: 10.0, y: 20.0 },
                estimate: Point {
                    x: 10.5,
                    y: 19.5 + f,
                },
                equipped: salt.is_multiple_of(2),
            }],
            position_snapshots: vec![(
                SimTime::from_secs(300),
                vec![RobotFinalState {
                    true_position: Point { x: 1.0, y: 2.0 },
                    estimate: Point { x: 1.1, y: 2.2 },
                    equipped: true,
                }],
            )],
            robustness: RobustnessStats {
                crashes: salt,
                flat_posteriors: 3,
                ..RobustnessStats::default()
            },
            health: vec![HealthLedger {
                healthy_s: 100.0,
                degraded_s: 5.0,
                dead_reckoning_s: 2.0,
                down_s: f,
            }],
            events_processed: 123_456 + salt,
        }
    }

    #[test]
    fn metrics_round_trip_byte_exact() {
        let m = sample_metrics(3);
        let bytes = encode_metrics(&m);
        let back = decode_metrics(&bytes).expect("decodes");
        assert_eq!(back, m);
        assert_eq!(encode_metrics(&back), bytes, "re-encode is the identity");
    }

    #[test]
    fn manifest_round_trip() {
        let manifest = SweepManifest {
            fingerprints: vec![11, 22, 33],
            states: vec![
                PointState::Completed(Box::new(sample_metrics(0))),
                PointState::InFlight(vec![1, 2, 3, 4]),
                PointState::Pending,
            ],
        };
        let bytes = manifest.encode();
        let back = SweepManifest::decode(&bytes).expect("decodes");
        assert_eq!(back, manifest);
        assert_eq!(back.completed_count(), 1);
        assert!(back.matches(&[11, 22, 33]));
        assert!(!back.matches(&[11, 22, 34]));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let w = SnapshotWriter::new("{\"kind\":\"something-else\"}".to_string());
        let bytes = w.finish();
        match SweepManifest::decode(&bytes) {
            Err(ManifestError::WrongKind(_)) => {}
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn payload_bit_flip_is_rejected() {
        let manifest = SweepManifest::new(vec![5, 6]);
        let mut bytes = manifest.encode();
        // Flip a bit in the tail, inside the CRC-guarded section payload.
        let idx = bytes.len() - 6;
        bytes[idx] ^= 0x10;
        assert!(SweepManifest::decode(&bytes).is_err());
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cocoa-manifest-test-{}.csnp", std::process::id()));
        let manifest = SweepManifest::new(vec![1, 2, 3]);
        manifest.store(&path).expect("store");
        let back = SweepManifest::load(&path).expect("load").expect("present");
        assert_eq!(back, manifest);
        std::fs::remove_file(&path).ok();
        assert!(SweepManifest::load(&path).expect("missing is ok").is_none());
    }
}
