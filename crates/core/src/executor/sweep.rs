//! Checkpointed, supervised scenario sweeps.
//!
//! [`run_supervised`] is the resilient counterpart of the plain sweep
//! entry points in [`crate::experiment`]: every point runs under the
//! [`Supervisor`] (panic isolation, deadlines, deterministic retry) and
//! — when a manifest path is configured — the sweep's progress is
//! persisted through the [`manifest`](super::manifest) codec so an
//! interrupted or killed sweep auto-resumes:
//!
//! - **completed** points are skipped outright, their stored
//!   [`RunMetrics`] returned byte-exact;
//! - **in-flight** points warm-resume from their last
//!   [`SimRun::capture`](crate::runner::SimRun::capture) snapshot
//!   instead of starting cold — and
//!   because PR 5's codec guarantees bit-identical resume, the metrics
//!   of an interrupted-then-resumed point equal an uninterrupted run's
//!   bit for bit;
//! - **pending** points start fresh.
//!
//! The manifest is fingerprint-guarded: if the file on disk describes a
//! different sweep (any scenario field changed), it is ignored and the
//! sweep starts from scratch rather than mixing incompatible results.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cocoa_sim::telemetry::Telemetry;
use cocoa_sim::time::{SimDuration, SimTime};

use crate::metrics::RunMetrics;
use crate::runner::SimRun;
use crate::scenario::Scenario;
use crate::world::checkpoint::scenario_fingerprint;

use super::manifest::{ManifestError, PointState, SweepManifest};
use super::supervisor::{JobFailure, JobObserver, Supervisor, SupervisorConfig, SweepReport};

/// A hook invoked at the start of every job attempt with the point
/// index — the chaos-injection seam used by tests and the
/// `cocoa-sweep` CLI to provoke panics and hangs on demand.
pub type AttemptHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Configuration for a supervised sweep.
#[derive(Clone, Default)]
pub struct SweepConfig {
    /// Supervision policy (attempts, deadline, backoff).
    pub supervisor: SupervisorConfig,
    /// Where to persist the sweep manifest. `None` disables
    /// checkpointing and resume.
    pub manifest_path: Option<PathBuf>,
    /// How much simulated time runs between in-flight checkpoints of
    /// each point. `None` (or zero) checkpoints only on completion.
    pub inflight_interval: Option<SimDuration>,
    /// Chaos-injection hook, called at the start of every attempt.
    pub attempt_hook: Option<AttemptHook>,
    /// Live fleet observer, receiving every attempt-level state change
    /// (see [`super::fleet::FleetStatus`]).
    pub observer: Option<JobObserver>,
}

impl std::fmt::Debug for SweepConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepConfig")
            .field("supervisor", &self.supervisor)
            .field("manifest_path", &self.manifest_path)
            .field("inflight_interval", &self.inflight_interval)
            .field("attempt_hook", &self.attempt_hook.as_ref().map(|_| "…"))
            .field("observer", &self.observer.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Shared write-through view of the sweep manifest.
///
/// Persistence is best-effort: a failed write warns on stderr and the
/// sweep carries on (losing checkpoint granularity, never results).
struct Checkpointer {
    manifest: Mutex<SweepManifest>,
    path: Option<PathBuf>,
    checkpoints_written: AtomicU64,
    points_skipped: AtomicU64,
    snapshots_corrupt: AtomicU64,
}

impl Checkpointer {
    fn state_of(&self, index: usize) -> PointState {
        self.manifest.lock().expect("manifest lock poisoned").states[index].clone()
    }

    fn inflight(&self, index: usize, snapshot: Vec<u8>) {
        let mut m = self.manifest.lock().expect("manifest lock poisoned");
        // A zombie attempt (abandoned after its deadline) may still be
        // capturing; never let it downgrade a completed point.
        if matches!(m.states[index], PointState::Completed(_)) {
            return;
        }
        m.states[index] = PointState::InFlight(snapshot);
        self.persist(&m);
    }

    fn completed(&self, index: usize, metrics: &RunMetrics) {
        let mut m = self.manifest.lock().expect("manifest lock poisoned");
        if matches!(m.states[index], PointState::Completed(_)) {
            return;
        }
        m.states[index] = PointState::Completed(Box::new(metrics.clone()));
        self.persist(&m);
    }

    fn persist(&self, m: &SweepManifest) {
        let Some(path) = &self.path else { return };
        match m.store(path) {
            Ok(()) => {
                self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("warning: sweep manifest write failed: {e}"),
        }
    }
}

/// Runs every scenario under supervision, checkpointing progress and
/// auto-resuming from a prior manifest when one matches.
///
/// Returns the structured [`SweepReport`]: per-point outcomes in input
/// order plus the `supervisor.*` counters (including
/// `checkpoints_written`, `points_skipped_on_resume` and
/// `snapshots_corrupt` merged from the checkpoint layer).
///
/// # Errors
///
/// Fails only on an unreadable or corrupt manifest file — job failures
/// never surface here; they are classified inside the report. A missing
/// manifest file is a fresh sweep, not an error.
pub fn run_supervised(
    scenarios: Vec<Scenario>,
    cfg: &SweepConfig,
) -> Result<SweepReport<RunMetrics>, ManifestError> {
    let fingerprints: Vec<u64> = scenarios.iter().map(scenario_fingerprint).collect();
    let manifest = match &cfg.manifest_path {
        Some(path) => match SweepManifest::load(path)? {
            Some(m) if m.matches(&fingerprints) => m,
            Some(_) => {
                eprintln!(
                    "warning: manifest at {} describes a different sweep; starting fresh",
                    path.display()
                );
                SweepManifest::new(fingerprints)
            }
            None => SweepManifest::new(fingerprints),
        },
        None => SweepManifest::new(fingerprints),
    };

    let ckpt = Arc::new(Checkpointer {
        manifest: Mutex::new(manifest),
        path: cfg.manifest_path.clone(),
        checkpoints_written: AtomicU64::new(0),
        points_skipped: AtomicU64::new(0),
        snapshots_corrupt: AtomicU64::new(0),
    });

    let supervisor = Supervisor::new(cfg.supervisor.clone());
    let every = cfg.inflight_interval.filter(|e| !e.is_zero());
    let hook = cfg.attempt_hook.clone();
    let job_ckpt = Arc::clone(&ckpt);
    let mut report = supervisor.map_seeded_observed(
        scenarios,
        |s| s.seed,
        move |index, s| run_point(index, s, &job_ckpt, every, hook.as_deref()),
        cfg.observer.clone(),
    );

    report.counters.checkpoints_written = ckpt.checkpoints_written.load(Ordering::Relaxed);
    report.counters.points_skipped_on_resume = ckpt.points_skipped.load(Ordering::Relaxed);
    report.counters.snapshots_corrupt = ckpt.snapshots_corrupt.load(Ordering::Relaxed);
    Ok(report)
}

/// One supervised sweep point: validate, resume-or-start, checkpoint
/// periodically, record completion.
fn run_point(
    index: usize,
    scenario: &Scenario,
    ckpt: &Checkpointer,
    every: Option<SimDuration>,
    hook: Option<&(dyn Fn(usize) + Send + Sync)>,
) -> Result<RunMetrics, JobFailure> {
    if let Some(hook) = hook {
        hook(index);
    }
    if let Err(detail) = scenario.validate() {
        return Err(JobFailure::Validation { detail });
    }
    let mut run = match ckpt.state_of(index) {
        PointState::Completed(metrics) => {
            ckpt.points_skipped.fetch_add(1, Ordering::Relaxed);
            return Ok(*metrics);
        }
        PointState::InFlight(snapshot) => match SimRun::resume(&snapshot) {
            Ok(run) => run,
            Err(e) => {
                // Degrade, don't die: a torn in-flight snapshot costs a
                // cold restart of this one point, not the sweep.
                ckpt.snapshots_corrupt.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: point {index}: in-flight snapshot unusable ({e}); restarting");
                SimRun::new(scenario, Telemetry::off())
            }
        },
        PointState::Pending => SimRun::new(scenario, Telemetry::off()),
    };
    if let Some(every) = every {
        let end = SimTime::ZERO + scenario.duration;
        loop {
            let next = run.now() + every;
            if next >= end {
                break;
            }
            run.run_until(next);
            ckpt.inflight(index, run.capture());
        }
    }
    let (metrics, _telemetry) = run.finish();
    ckpt.completed(index, &metrics);
    Ok(metrics)
}
