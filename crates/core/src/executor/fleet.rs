//! Live fleet status for supervised sweeps.
//!
//! [`FleetStatus`] folds the [`JobEvent`] stream of a supervised sweep
//! into a per-point state machine (pending → in-flight → retrying →
//! done / failed) and renders it two ways: a one-line terminal progress
//! display with throughput and ETA, and a machine-readable
//! `status.json` document written atomically (tmp + rename, like the
//! sweep manifest) so an external watcher never reads a torn file.
//!
//! The struct itself never touches a clock — elapsed wall time is an
//! input, supplied by the CLI edge that owns the `Instant`. That keeps
//! the state machine deterministic and unit-testable.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use super::supervisor::JobEvent;

/// The lifecycle state of one sweep point, as observed from the
/// supervisor's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointProgress {
    /// No attempt has started yet.
    Pending,
    /// An attempt is currently running.
    InFlight {
        /// The running attempt, 1-based.
        attempt: u32,
    },
    /// The last attempt failed retryably; the next has not started.
    Retrying {
        /// The attempt that failed.
        attempt: u32,
        /// Failure tag of that attempt.
        kind: &'static str,
    },
    /// The point produced a value.
    Done {
        /// Attempts consumed.
        attempts: u32,
    },
    /// The point terminally failed.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Terminal failure tag.
        kind: &'static str,
    },
}

impl PointProgress {
    /// The stable state tag used in `status.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            PointProgress::Pending => "pending",
            PointProgress::InFlight { .. } => "in_flight",
            PointProgress::Retrying { .. } => "retrying",
            PointProgress::Done { .. } => "done",
            PointProgress::Failed { .. } => "failed",
        }
    }
}

/// Aggregated live view of a sweep fleet.
#[derive(Debug, Clone)]
pub struct FleetStatus {
    points: Vec<PointProgress>,
}

impl FleetStatus {
    /// A fleet of `total` points, all pending.
    pub fn new(total: usize) -> Self {
        FleetStatus {
            points: vec![PointProgress::Pending; total],
        }
    }

    /// Appends `n` fresh pending points and returns the index of the
    /// first one. A batch sweep knows its size up front, but a server
    /// observes an open-ended job stream — each accepted job grows the
    /// fleet by one and reports events under the returned index.
    pub fn grow(&mut self, n: usize) -> usize {
        let first = self.points.len();
        self.points
            .extend(std::iter::repeat_n(PointProgress::Pending, n));
        first
    }

    /// Folds one supervisor event into the per-point state machine.
    /// Terminal states are sticky: a zombie attempt (abandoned after
    /// its deadline) can never un-finish a point.
    pub fn observe(&mut self, event: JobEvent) {
        let (index, next) = match event {
            JobEvent::Started { index, attempt } => (index, PointProgress::InFlight { attempt }),
            JobEvent::Retrying {
                index,
                attempt,
                kind,
            } => (index, PointProgress::Retrying { attempt, kind }),
            JobEvent::Completed { index, attempts } => (index, PointProgress::Done { attempts }),
            JobEvent::Failed {
                index,
                attempts,
                kind,
            } => (index, PointProgress::Failed { attempts, kind }),
        };
        let Some(slot) = self.points.get_mut(index) else {
            return; // out-of-range index from a foreign stream; ignore
        };
        if matches!(
            slot,
            PointProgress::Done { .. } | PointProgress::Failed { .. }
        ) {
            return;
        }
        *slot = next;
    }

    /// Per-point states in input order.
    pub fn points(&self) -> &[PointProgress] {
        &self.points
    }

    /// Number of points in the fleet.
    pub fn total(&self) -> usize {
        self.points.len()
    }

    fn count(&self, f: impl Fn(&PointProgress) -> bool) -> usize {
        self.points.iter().filter(|p| f(p)).count()
    }

    /// Points that have produced a value.
    pub fn done(&self) -> usize {
        self.count(|p| matches!(p, PointProgress::Done { .. }))
    }

    /// Points that terminally failed.
    pub fn failed(&self) -> usize {
        self.count(|p| matches!(p, PointProgress::Failed { .. }))
    }

    /// Points currently running an attempt.
    pub fn in_flight(&self) -> usize {
        self.count(|p| matches!(p, PointProgress::InFlight { .. }))
    }

    /// Points between a retryable failure and their next attempt.
    pub fn retrying(&self) -> usize {
        self.count(|p| matches!(p, PointProgress::Retrying { .. }))
    }

    /// Points that have not started.
    pub fn pending(&self) -> usize {
        self.count(|p| matches!(p, PointProgress::Pending))
    }

    /// Whether every point reached a terminal state.
    pub fn is_settled(&self) -> bool {
        self.done() + self.failed() == self.total()
    }

    /// Throughput in completed points per second, `None` until the
    /// first completion or while `elapsed` is zero.
    pub fn throughput(&self, elapsed: Duration) -> Option<f64> {
        let done = self.done();
        if done == 0 || elapsed.is_zero() {
            return None;
        }
        Some(done as f64 / elapsed.as_secs_f64())
    }

    /// Estimated seconds until the remaining points complete, from the
    /// observed throughput. `None` before the first completion.
    pub fn eta_seconds(&self, elapsed: Duration) -> Option<f64> {
        let remaining = self.total() - self.done() - self.failed();
        self.throughput(elapsed).map(|tp| remaining as f64 / tp)
    }

    /// The one-line terminal progress display.
    pub fn progress_line(&self, elapsed: Duration) -> String {
        let mut line = format!(
            "sweep {}/{} done, {} in-flight, {} retrying, {} failed",
            self.done(),
            self.total(),
            self.in_flight(),
            self.retrying(),
            self.failed(),
        );
        if let Some(tp) = self.throughput(elapsed) {
            let _ = write!(line, " | {:.2} pts/min", tp * 60.0);
            if !self.is_settled() {
                if let Some(eta) = self.eta_seconds(elapsed) {
                    let _ = write!(line, ", eta {eta:.0} s");
                }
            }
        }
        line
    }

    /// The machine-readable status document: aggregate counts,
    /// throughput/ETA, and the per-point state array.
    pub fn to_status_json(&self, elapsed: Duration) -> String {
        let num = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => format!("{x}"),
            _ => "null".to_owned(),
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":1,\"total\":{},\"pending\":{},\"in_flight\":{},\
             \"retrying\":{},\"done\":{},\"failed\":{},\"settled\":{},\
             \"elapsed_s\":{},\"throughput_per_s\":{},\"eta_s\":{},\"points\":[",
            self.total(),
            self.pending(),
            self.in_flight(),
            self.retrying(),
            self.done(),
            self.failed(),
            self.is_settled(),
            elapsed.as_secs_f64(),
            num(self.throughput(elapsed)),
            num(self.eta_seconds(elapsed)),
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"index\":{i},\"state\":\"{}\"", p.as_str());
            match p {
                PointProgress::Pending => {}
                PointProgress::InFlight { attempt } => {
                    let _ = write!(out, ",\"attempt\":{attempt}");
                }
                PointProgress::Retrying { attempt, kind } => {
                    let _ = write!(out, ",\"attempt\":{attempt},\"kind\":\"{kind}\"");
                }
                PointProgress::Done { attempts } => {
                    let _ = write!(out, ",\"attempts\":{attempts}");
                }
                PointProgress::Failed { attempts, kind } => {
                    let _ = write!(out, ",\"attempts\":{attempts},\"kind\":\"{kind}\"");
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Writes `status.json` atomically: the document lands under a
    /// `.tmp` name first and is renamed into place, so a watcher never
    /// observes a torn file.
    ///
    /// # Errors
    ///
    /// Any io error from the write or the rename.
    pub fn store(&self, path: &Path, elapsed: Duration) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_status_json(elapsed))?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drive_the_state_machine() {
        let mut fleet = FleetStatus::new(3);
        assert_eq!(fleet.pending(), 3);
        fleet.observe(JobEvent::Started {
            index: 0,
            attempt: 1,
        });
        fleet.observe(JobEvent::Started {
            index: 1,
            attempt: 1,
        });
        assert_eq!(fleet.in_flight(), 2);
        assert_eq!(fleet.pending(), 1);
        fleet.observe(JobEvent::Retrying {
            index: 1,
            attempt: 1,
            kind: "panic",
        });
        assert_eq!(fleet.retrying(), 1);
        fleet.observe(JobEvent::Completed {
            index: 0,
            attempts: 1,
        });
        fleet.observe(JobEvent::Started {
            index: 1,
            attempt: 2,
        });
        fleet.observe(JobEvent::Failed {
            index: 1,
            attempts: 2,
            kind: "panic",
        });
        fleet.observe(JobEvent::Completed {
            index: 2,
            attempts: 1,
        });
        assert_eq!(fleet.done(), 2);
        assert_eq!(fleet.failed(), 1);
        assert!(fleet.is_settled());
    }

    #[test]
    fn grow_appends_pending_points() {
        let mut fleet = FleetStatus::new(0);
        assert_eq!(fleet.grow(1), 0);
        assert_eq!(fleet.grow(2), 1);
        assert_eq!(fleet.total(), 3);
        assert_eq!(fleet.pending(), 3);
        fleet.observe(JobEvent::Completed {
            index: 2,
            attempts: 1,
        });
        assert_eq!(fleet.done(), 1);
    }

    #[test]
    fn terminal_states_are_sticky() {
        let mut fleet = FleetStatus::new(1);
        fleet.observe(JobEvent::Completed {
            index: 0,
            attempts: 1,
        });
        // A zombie attempt (abandoned after its deadline) reports late.
        fleet.observe(JobEvent::Started {
            index: 0,
            attempt: 2,
        });
        assert_eq!(fleet.points()[0], PointProgress::Done { attempts: 1 });
        // Out-of-range indices are ignored, not a panic.
        fleet.observe(JobEvent::Started {
            index: 99,
            attempt: 1,
        });
        assert!(fleet.is_settled());
    }

    #[test]
    fn throughput_and_eta_follow_completions() {
        let mut fleet = FleetStatus::new(4);
        let elapsed = Duration::from_secs(10);
        assert_eq!(fleet.throughput(elapsed), None);
        assert_eq!(fleet.eta_seconds(elapsed), None);
        for index in 0..2 {
            fleet.observe(JobEvent::Completed { index, attempts: 1 });
        }
        // 2 points in 10 s -> 0.2 pts/s; 2 remaining -> 10 s eta.
        assert_eq!(fleet.throughput(elapsed), Some(0.2));
        assert_eq!(fleet.eta_seconds(elapsed), Some(10.0));
        assert_eq!(fleet.throughput(Duration::ZERO), None);
    }

    #[test]
    fn progress_line_reads_naturally() {
        let mut fleet = FleetStatus::new(3);
        fleet.observe(JobEvent::Started {
            index: 0,
            attempt: 1,
        });
        let line = fleet.progress_line(Duration::from_secs(5));
        assert_eq!(line, "sweep 0/3 done, 1 in-flight, 0 retrying, 0 failed");
        fleet.observe(JobEvent::Completed {
            index: 0,
            attempts: 1,
        });
        let line = fleet.progress_line(Duration::from_secs(60));
        assert!(line.starts_with("sweep 1/3 done"), "{line}");
        assert!(line.contains("1.00 pts/min"), "{line}");
        assert!(line.contains("eta 120 s"), "{line}");
    }

    #[test]
    fn status_json_is_flat_and_parseable() {
        let mut fleet = FleetStatus::new(2);
        fleet.observe(JobEvent::Started {
            index: 0,
            attempt: 1,
        });
        fleet.observe(JobEvent::Failed {
            index: 1,
            attempts: 3,
            kind: "deadline",
        });
        let json = fleet.to_status_json(Duration::from_secs(2));
        assert!(json.contains("\"total\":2"), "{json}");
        assert!(json.contains("\"in_flight\":1"), "{json}");
        assert!(json.contains("\"failed\":1"), "{json}");
        assert!(json.contains("\"throughput_per_s\":null"), "{json}");
        assert!(
            json.contains(
                "{\"index\":1,\"state\":\"failed\",\"attempts\":3,\"kind\":\"deadline\"}"
            ),
            "{json}"
        );
    }

    #[test]
    fn store_writes_atomically() {
        let dir = std::env::temp_dir().join(format!("cocoa-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        let fleet = FleetStatus::new(1);
        fleet.store(&path, Duration::from_secs(1)).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"total\":1"), "{body}");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
