//! Metric observation and end-of-run finalization: the periodic error
//! series, per-robot timeline samples, error snapshots, and the folding of
//! every accumulator into [`RunMetrics`] plus the telemetry counter
//! registry.

use cocoa_localization::estimator::RfAlgorithm;
use cocoa_multicast::mesh::MeshStats;
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_sim::engine::Engine;
use cocoa_sim::telemetry::TelemetryEvent;
use cocoa_sim::time::SimTime;

use crate::metrics::{EnergyReport, ErrorPoint, ErrorSnapshot, RobotFinalState, RunMetrics};

use super::events::Event;
use super::WorldState;

/// Handles a periodic metrics sample and reschedules the next one.
pub(crate) fn metrics_sample(engine: &mut Engine<Event>, world: &mut WorldState, now: SimTime) {
    let mode = world.mode();
    let area = world.scenario.area;
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in &world.robots {
        if r.alive && r.reports_error(mode) {
            let err = r.localization_error(mode, &area);
            world.telemetry.hist_record(world.hists.robot_error, err);
            sum += err;
            n += 1;
        }
        if r.alive {
            if let Some(frac) = r.rf.as_ref().and_then(|rf| rf.entropy_fraction()) {
                world.telemetry.hist_record(world.hists.entropy_frac, frac);
            }
        }
    }
    world
        .telemetry
        .hist_record(world.hists.queue_depth, engine.pending() as f64);
    if n > 0 {
        world
            .telemetry
            .hist_record(world.hists.team_error, sum / n as f64);
        world.error_series.push(ErrorPoint {
            t_s: now.as_secs_f64(),
            mean_error_m: sum / n as f64,
            robots: n,
        });
        // The team sample mirrors the error point exactly (same
        // expression, same operands) so traces reconstruct the
        // metrics curve bit-for-bit.
        if world.telemetry.wants_events() {
            let energy_j: f64 = world
                .robots
                .iter()
                .map(|r| r.radio.peek_ledger(now).total_j())
                .sum();
            world.telemetry.emit(
                now,
                TelemetryEvent::TeamSample {
                    mean_err_m: sum / n as f64,
                    robots: n as u32,
                    energy_j,
                },
            );
        }
    }
    // Per-robot timelines ride the metrics tick (no extra engine
    // events, so `events_processed` is telemetry-invariant) but
    // thin out to the configured sampling interval.
    if world.telemetry.wants_events() {
        let due = world.next_robot_sample.is_none_or(|t| now >= t);
        if due {
            let interval = world
                .telemetry
                .sample_interval()
                .unwrap_or(world.scenario.metrics_interval);
            world.next_robot_sample = Some(now + interval);
            for (i, r) in world.robots.iter().enumerate() {
                let true_pos = r.motion.true_position();
                let est = r.estimate(mode, &area);
                world.telemetry.emit(
                    now,
                    TelemetryEvent::RobotSample {
                        robot: i as u32,
                        true_x_m: true_pos.x,
                        true_y_m: true_pos.y,
                        est_x_m: est.x,
                        est_y_m: est.y,
                        err_m: r.localization_error(mode, &area),
                        entropy_frac: r.rf.as_ref().and_then(|rf| rf.entropy_fraction()),
                        energy_j: r.radio.peek_ledger(now).total_j(),
                        radio: r.radio.state().as_str(),
                        health: r.health.state().as_str(),
                    },
                );
            }
        }
    }
    engine.schedule_in(world.scenario.metrics_interval, Event::MetricsSample);
}

/// Records the per-robot error snapshot at `index` (Fig. 8 CDFs).
pub(crate) fn snapshot(world: &mut WorldState, index: usize) {
    let mode = world.mode();
    let area = world.scenario.area;
    let errors: Vec<f64> = world
        .robots
        .iter()
        .filter(|r| r.alive && r.reports_error(mode))
        .map(|r| r.localization_error(mode, &area))
        .collect();
    let time = world.snapshots[index].time;
    world.snapshots[index] = ErrorSnapshot::new(time, errors);
    let states: Vec<RobotFinalState> = world
        .robots
        .iter()
        .map(|r| RobotFinalState {
            true_position: r.motion.true_position(),
            estimate: r.estimate(mode, &area),
            equipped: r.equipped,
        })
        .collect();
    world.position_snapshots.push((time, states));
}

/// Per-estimator-backend counter namespaces, in
/// [`cocoa_localization::estimator::WindowStats::counters`] order.
///
/// [`cocoa_sim::telemetry::Telemetry::absorb`] interns `&'static str`
/// names, so the three namespaces are spelled out instead of formatted.
fn estimator_counter_names(algorithm: RfAlgorithm) -> &'static [&'static str; 6] {
    match algorithm {
        RfAlgorithm::Bayes => &[
            "estimator.bayes.windows",
            "estimator.bayes.fixes",
            "estimator.bayes.flat_windows",
            "estimator.bayes.beacons_seen",
            "estimator.bayes.beacons_applied",
            "estimator.bayes.beacons_rejected_outlier",
        ],
        RfAlgorithm::Multilateration => &[
            "estimator.multilateration.windows",
            "estimator.multilateration.fixes",
            "estimator.multilateration.flat_windows",
            "estimator.multilateration.beacons_seen",
            "estimator.multilateration.beacons_applied",
            "estimator.multilateration.beacons_rejected_outlier",
        ],
        RfAlgorithm::Ekf => &[
            "estimator.ekf.windows",
            "estimator.ekf.fixes",
            "estimator.ekf.flat_windows",
            "estimator.ekf.beacons_seen",
            "estimator.ekf.beacons_applied",
            "estimator.ekf.beacons_rejected_outlier",
        ],
    }
}

/// Per-backend counter namespaces, in [`MeshStats::counters`] order.
///
/// [`cocoa_sim::telemetry::Telemetry::absorb`] interns `&'static str`
/// names, so the three namespaces are spelled out instead of formatted.
fn backend_counter_names(protocol: MulticastProtocol) -> &'static [&'static str; 10] {
    match protocol {
        MulticastProtocol::Flood => &[
            "mesh.flood.queries_originated",
            "mesh.flood.queries_rebroadcast",
            "mesh.flood.queries_suppressed",
            "mesh.flood.replies_sent",
            "mesh.flood.fg_activations",
            "mesh.flood.data_originated",
            "mesh.flood.data_forwarded",
            "mesh.flood.data_delivered",
            "mesh.flood.data_duplicates",
            "mesh.flood.data_undecodable",
        ],
        MulticastProtocol::Odmrp => &[
            "mesh.odmrp.queries_originated",
            "mesh.odmrp.queries_rebroadcast",
            "mesh.odmrp.queries_suppressed",
            "mesh.odmrp.replies_sent",
            "mesh.odmrp.fg_activations",
            "mesh.odmrp.data_originated",
            "mesh.odmrp.data_forwarded",
            "mesh.odmrp.data_delivered",
            "mesh.odmrp.data_duplicates",
            "mesh.odmrp.data_undecodable",
        ],
        MulticastProtocol::Mrmm => &[
            "mesh.mrmm.queries_originated",
            "mesh.mrmm.queries_rebroadcast",
            "mesh.mrmm.queries_suppressed",
            "mesh.mrmm.replies_sent",
            "mesh.mrmm.fg_activations",
            "mesh.mrmm.data_originated",
            "mesh.mrmm.data_forwarded",
            "mesh.mrmm.data_delivered",
            "mesh.mrmm.data_duplicates",
            "mesh.mrmm.data_undecodable",
        ],
    }
}

/// Folds every accumulator into the final [`RunMetrics`] and absorbs the
/// lifetime statistics of every subsystem into the unified counter
/// registry (no-op below `Counters`).
pub(crate) fn finalize(
    world: &mut WorldState,
    engine: &Engine<Event>,
    horizon: SimTime,
) -> RunMetrics {
    let mut per_robot = Vec::with_capacity(world.robots.len());
    let mut mesh = MeshStats::default();
    let mut final_states = Vec::with_capacity(world.robots.len());
    for r in &mut world.robots {
        per_robot.push(r.radio.finalize(horizon));
        mesh.merge(&r.mesh.stats());
    }
    for r in &world.robots {
        final_states.push(RobotFinalState {
            true_position: r.motion.true_position(),
            estimate: r.estimate(world.scenario.mode, &world.scenario.area),
            equipped: r.equipped,
        });
    }
    world.traffic.collisions = world.medium.collisions();
    let health = world
        .robots
        .iter()
        .map(|r| r.health.finalize(horizon))
        .collect();

    if world.telemetry.wants_counters() {
        let t = &mut world.telemetry;
        let tr = &world.traffic;
        t.absorb("traffic.beacons_sent", tr.beacons_sent);
        t.absorb("traffic.beacons_received", tr.beacons_received);
        t.absorb("traffic.collisions", tr.collisions);
        t.absorb("traffic.syncs_delivered", tr.syncs_delivered);
        t.absorb("traffic.syncs_missed", tr.syncs_missed);
        t.absorb("traffic.fixes", tr.fixes);
        t.absorb("traffic.starved_windows", tr.starved_windows);
        let ro = &world.robustness;
        t.absorb("robustness.crashes", ro.crashes);
        t.absorb("robustness.reboots", ro.reboots);
        t.absorb("robustness.failovers", ro.failovers);
        t.absorb("robustness.burst_losses", ro.burst_losses);
        t.absorb(
            "robustness.corrupt_frames_dropped",
            ro.corrupt_frames_dropped,
        );
        t.absorb(
            "robustness.garbled_frames_delivered",
            ro.garbled_frames_delivered,
        );
        t.absorb(
            "robustness.outlier_beacons_rejected",
            ro.outlier_beacons_rejected,
        );
        t.absorb("robustness.flat_posteriors", ro.flat_posteriors);
        // Grid kernel accounting: only namespaces that actually fired are
        // emitted, so the default (pure simd/f64) run stays compact.
        let mut gs = cocoa_localization::bayes::GridStats::default();
        for r in &world.robots {
            if let Some(rf) = r.rf.as_ref() {
                gs.absorb(&rf.grid_stats());
            }
        }
        for (name, value) in [
            ("grid.kernel.scalar", gs.kernel_scalar),
            ("grid.kernel.simd", gs.kernel_simd),
            ("grid.kernel.simd_f32", gs.kernel_simd_f32),
            ("grid.kernel.fused", gs.kernel_fused),
            ("grid.kernel.adaptive", gs.kernel_adaptive),
            ("grid.fused_windows", gs.fused_windows),
            ("grid.cells_touched", gs.cells_touched),
            ("grid.cells_refined", gs.cells_refined),
        ] {
            if value > 0 {
                t.absorb(name, value);
            }
        }
        t.absorb("robustness.stale_syncs_ignored", ro.stale_syncs_ignored);
        t.absorb("robustness.malformed_sync_bodies", ro.malformed_sync_bodies);
        // Estimator backend accounting: the `estimator.<backend>.*`
        // namespace names the solver that actually ran, so ablation sweeps
        // over RF backends stay attributable, mirroring `mesh.<backend>.*`.
        let mut ws = cocoa_localization::estimator::WindowStats::default();
        let (mut ekf_applied, mut ekf_gated) = (0u64, 0u64);
        let mut any_ekf = false;
        for r in &world.robots {
            if let Some(rf) = r.rf.as_ref() {
                ws.absorb(&rf.stats());
                if let Some((applied, gated)) = rf.ekf_counters() {
                    any_ekf = true;
                    ekf_applied += applied;
                    ekf_gated += gated;
                }
            }
        }
        let names = estimator_counter_names(world.scenario.rf_algorithm);
        for ((short, value), name) in ws.counters().iter().zip(names) {
            debug_assert!(name.ends_with(short), "{name} out of order vs {short}");
            t.absorb(name, *value);
        }
        if any_ekf {
            t.absorb("estimator.ekf.updates_applied", ekf_applied);
            t.absorb("estimator.ekf.updates_gated", ekf_gated);
        }
        // The flat `mesh.*` namespace stays for backwards compatibility;
        // the `mesh.<backend>.*` namespace names the transport that
        // actually ran, so multi-backend sweeps stay attributable.
        t.absorb("mesh.queries_originated", mesh.queries_originated);
        t.absorb("mesh.queries_rebroadcast", mesh.queries_rebroadcast);
        t.absorb("mesh.queries_suppressed", mesh.queries_suppressed);
        t.absorb("mesh.replies_sent", mesh.replies_sent);
        t.absorb("mesh.fg_activations", mesh.fg_activations);
        t.absorb("mesh.data_originated", mesh.data_originated);
        t.absorb("mesh.data_forwarded", mesh.data_forwarded);
        t.absorb("mesh.data_delivered", mesh.data_delivered);
        t.absorb("mesh.data_duplicates", mesh.data_duplicates);
        t.absorb("mesh.data_undecodable", mesh.data_undecodable);
        let names = backend_counter_names(world.scenario.multicast);
        for ((short, value), name) in mesh.counters().iter().zip(names) {
            debug_assert!(name.ends_with(short), "{name} out of order vs {short}");
            t.absorb(name, *value);
        }
        t.absorb("mac.half_duplex", world.medium.half_duplex());
        t.absorb("engine.events_processed", engine.events_processed());
        t.absorb("engine.peak_pending", engine.peak_pending() as u64);
        let (mut wakes, mut sent, mut received) = (0u64, 0u64, 0u64);
        for r in &world.robots {
            wakes += u64::from(r.radio.wake_count());
            sent += u64::from(r.radio.packets_sent());
            received += u64::from(r.radio.packets_received());
        }
        t.absorb("radio.wakes", wakes);
        t.absorb("radio.packets_sent", sent);
        t.absorb("radio.packets_received", received);
        // The legacy string trace reports its ring-buffer drops here too,
        // so a bounded trace never evicts silently.
        if let Some(trace) = t.legacy_trace() {
            let (emitted, dropped) = (trace.emitted(), trace.dropped());
            t.absorb("trace.emitted", emitted);
            t.absorb("trace.dropped", dropped);
        }
        let (emitted, dropped) = (t.events_emitted(), t.dropped_events());
        t.absorb("telemetry.events_emitted", emitted);
        t.absorb("telemetry.events_dropped", dropped);
    }

    RunMetrics {
        error_series: std::mem::take(&mut world.error_series),
        snapshots: std::mem::take(&mut world.snapshots),
        energy: EnergyReport { per_robot },
        mesh,
        traffic: world.traffic,
        final_states,
        position_snapshots: std::mem::take(&mut world.position_snapshots),
        robustness: world.robustness,
        health,
        events_processed: engine.events_processed(),
    }
}
