//! Applying injected faults to the world: crashes, reboots, clock steps,
//! garbled transmitters, beacon offsets and burst-loss overlays.

use cocoa_localization::estimator::WindowedRfEstimator;
use cocoa_localization::grid::GridConfig;
use cocoa_net::energy::PowerState;
use cocoa_sim::engine::Engine;
use cocoa_sim::faults::{Fault, GilbertElliottLink};
use cocoa_sim::telemetry::TelemetryEvent;
use cocoa_sim::time::SimTime;
use cocoa_sim::trace::TraceLevel;

use crate::health::DegradationState;

use super::events::Event;
use super::WorldState;

/// Stable telemetry name of an injected fault.
pub(crate) fn fault_kind(fault: &Fault) -> &'static str {
    match fault {
        Fault::Crash { .. } => "crash",
        Fault::Reboot { .. } => "reboot",
        Fault::ClockSkewStep { .. } => "clock_skew_step",
        Fault::GarbleTxStart { .. } => "garble_tx_start",
        Fault::GarbleTxEnd { .. } => "garble_tx_end",
        Fault::BeaconOffsetStart { .. } => "beacon_offset_start",
        Fault::BeaconOffsetEnd { .. } => "beacon_offset_end",
        Fault::BurstLossStart { .. } => "burst_loss_start",
        Fault::BurstLossEnd => "burst_loss_end",
    }
}

/// Applies one injected fault to the world at `now`.
pub(crate) fn apply_fault(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    fault: Fault,
    now: SimTime,
) {
    world.telemetry.emit(
        now,
        TelemetryEvent::FaultInjected {
            kind: fault_kind(&fault),
            robot: fault.robot().map(|r| r as u32),
        },
    );
    match fault {
        Fault::Crash { robot } => {
            let r = &mut world.robots[robot];
            if !r.alive {
                return;
            }
            r.alive = false;
            // Orphan the pending wake chain of this life.
            r.epoch = r.epoch.wrapping_add(1);
            r.radio.set_state(now, PowerState::Off);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: PowerState::Off.as_str(),
                },
            );
            if r.health.transition(now, DegradationState::Down) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: DegradationState::Down.as_str(),
                    },
                );
            }
            world.robustness.crashes += 1;
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!("robot {robot} crashed")
            });
        }
        Fault::Reboot { robot } => {
            if world.robots[robot].alive {
                return;
            }
            let uses_rf = world.uses_rf();
            let area = world.scenario.area;
            let res = world.scenario.grid_resolution_m;
            let alg = world.scenario.rf_algorithm;
            let pipeline = world.scenario.grid_pipeline;
            let r = &mut world.robots[robot];
            r.alive = true;
            r.epoch = r.epoch.wrapping_add(1);
            // Volatile state is lost: the posterior, the fix history and
            // the heading anchor all restart from scratch.
            r.has_fix = false;
            r.last_fix_window = None;
            r.fix_anchor = None;
            r.synced_this_window = false;
            if let Some(rf) = r.rf.as_mut() {
                *rf = WindowedRfEstimator::with_pipeline(GridConfig::new(area, res), alg, pipeline);
            }
            let up_state = if uses_rf {
                PowerState::Idle
            } else {
                PowerState::Off
            };
            r.radio.set_state(now, up_state);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: up_state.as_str(),
                },
            );
            let back = if r.equipped && uses_rf {
                DegradationState::Healthy
            } else {
                DegradationState::DeadReckoning
            };
            if r.health.transition(now, back) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: back.as_str(),
                    },
                );
            }
            world.robustness.reboots += 1;
            world.telemetry.legacy(now, TraceLevel::Info, "fault", || {
                format!("robot {robot} rebooted")
            });
            // Rejoin the window cycle at the next period boundary.
            if uses_rf {
                let period = world.scenario.beacon_period;
                let next_window = now.saturating_since(SimTime::ZERO).div_duration(period) + 1;
                let at = world.window_start_time(next_window);
                if at < engine.horizon() {
                    let epoch = world.robots[robot].epoch;
                    engine.schedule_at(
                        at,
                        Event::RobotWake {
                            robot,
                            window: next_window,
                            epoch,
                        },
                    );
                }
            }
        }
        Fault::ClockSkewStep { robot, delta_ppm } => {
            world.robots[robot].clock.apply_skew_step(delta_ppm, now);
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!("robot {robot} clock skew stepped by {delta_ppm} ppm")
            });
        }
        Fault::GarbleTxStart { robot } => world.robots[robot].garbled_tx = true,
        Fault::GarbleTxEnd { robot } => world.robots[robot].garbled_tx = false,
        Fault::BeaconOffsetStart { robot, dx_m, dy_m } => {
            world.robots[robot].beacon_offset = Some((dx_m, dy_m));
        }
        Fault::BeaconOffsetEnd { robot } => world.robots[robot].beacon_offset = None,
        Fault::BurstLossStart { model } => {
            // One independent link per receiver, all starting in the good
            // state.
            world.burst = Some(
                world
                    .robots
                    .iter()
                    .map(|_| GilbertElliottLink::new(model))
                    .collect(),
            );
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!(
                    "burst-loss overlay on (mean loss {:.0}%)",
                    model.mean_loss() * 100.0
                )
            });
        }
        Fault::BurstLossEnd => world.burst = None,
    }
}
