//! The event vocabulary of the world, its span bookkeeping, and the
//! dispatch table that routes each event to the module that owns it.

use cocoa_net::mac::TxId;
use cocoa_net::packet::{NodeId, Packet};
use cocoa_sim::engine::Engine;
use cocoa_sim::faults::Fault;
use cocoa_sim::telemetry::hist::HistId;
use cocoa_sim::telemetry::{SpanId, Telemetry};
use cocoa_sim::time::SimDuration;

use super::WorldState;

/// What a deferred transmission should put on the air.
#[derive(Debug, Clone)]
pub(crate) enum TxIntent {
    /// A localization beacon; the position is read at fire time.
    Beacon,
    /// A mesh packet built earlier (query/reply/data).
    Mesh(Packet),
}

#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// Advance all robots' motion by one tick.
    MoveTick,
    /// Sample the error series.
    MetricsSample,
    /// Global window start (the Sync robot's reference timeline).
    WindowStart { index: u64 },
    /// A robot's local wake-up for a window. `epoch` ties the event to one
    /// life of the robot: a crash bumps the epoch, orphaning the pending
    /// wake chain of the previous life.
    RobotWake {
        robot: usize,
        window: u64,
        epoch: u32,
    },
    /// A robot's local end-of-window processing (then sleep).
    RobotWindowEnd {
        robot: usize,
        window: u64,
        epoch: u32,
    },
    /// A deferred transmission fires.
    Transmit { robot: usize, intent: TxIntent },
    /// A frame's airtime ends; judge receptions.
    TxEnd { tx: TxId, receivers: Vec<usize> },
    /// A member's deferred JOIN REPLY.
    MeshReply { robot: usize, source: NodeId },
    /// A node's deferred JOIN QUERY rebroadcast decision.
    MeshRebroadcast {
        robot: usize,
        source: NodeId,
        seq: u32,
    },
    /// Reclaim old frames from the medium.
    MediumGc,
    /// Record a per-robot error snapshot (Fig. 8 CDFs).
    Snapshot { index: usize },
    /// An injected fault fires (from the scenario's `FaultPlan`).
    Fault(Fault),
}

/// Pre-registered span handles, so hot paths never look a span up by name.
/// `run.*` spans tile the whole run; `event.*` spans tile the event loop by
/// category; the rest are nested subsystem spans.
#[derive(Clone, Copy)]
pub(crate) struct SpanIds {
    pub(crate) run_total: SpanId,
    pub(crate) run_calibrate: SpanId,
    pub(crate) run_setup: SpanId,
    pub(crate) run_event_loop: SpanId,
    pub(crate) run_finalize: SpanId,
    pub(crate) event_move_tick: SpanId,
    pub(crate) event_metrics_sample: SpanId,
    pub(crate) event_snapshot: SpanId,
    pub(crate) event_window_start: SpanId,
    pub(crate) event_robot_wake: SpanId,
    pub(crate) event_robot_window_end: SpanId,
    pub(crate) event_transmit: SpanId,
    pub(crate) event_tx_end: SpanId,
    pub(crate) event_mesh_reply: SpanId,
    pub(crate) event_mesh_rebroadcast: SpanId,
    pub(crate) event_medium_gc: SpanId,
    pub(crate) event_fault: SpanId,
    pub(crate) grid_update: SpanId,
    pub(crate) grid_fix: SpanId,
    pub(crate) channel_sample: SpanId,
    /// Channel scan for mesh JOIN REPLY transmissions. Distinct from
    /// `channel_sample` so each scan attributes to the event category
    /// that actually paid for it — the flamegraph fold relies on every
    /// subsystem span having a single event-span parent.
    pub(crate) channel_sample_reply: SpanId,
    /// Channel scan for mesh rebroadcast transmissions (see
    /// `channel_sample_reply`).
    pub(crate) channel_sample_rebroadcast: SpanId,
    pub(crate) mesh_handle: SpanId,
    pub(crate) mobility_step: SpanId,
}

/// Pre-registered histogram handles, so hot paths never look a histogram
/// up by name. All of these are deterministic (recorded from simulation
/// state only); the one wall-clock histogram, `span.duration_us`, is
/// owned by the bus itself.
#[derive(Clone, Copy)]
pub(crate) struct HistIds {
    /// Per-robot localization error at each metrics tick, metres.
    pub(crate) robot_error: HistId,
    /// Team mean localization error at each metrics tick, metres.
    pub(crate) team_error: HistId,
    /// Posterior entropy fraction of RF robots at each metrics tick.
    pub(crate) entropy_frac: HistId,
    /// Per-fix localization error at window close, metres.
    pub(crate) fix_err: HistId,
    /// RSSI of every delivered beacon, dBm (negative values).
    pub(crate) beacon_rssi: HistId,
    /// Pending event-queue depth at each metrics tick.
    pub(crate) queue_depth: HistId,
}

impl HistIds {
    pub(crate) fn register(t: &mut Telemetry) -> HistIds {
        HistIds {
            robot_error: t.hist("run.robot_error_m"),
            team_error: t.hist("run.team_error_m"),
            entropy_frac: t.hist("run.entropy_frac"),
            fix_err: t.hist("run.fix_err_m"),
            beacon_rssi: t.hist("radio.beacon_rssi_dbm"),
            queue_depth: t.hist("engine.queue_depth"),
        }
    }
}

impl SpanIds {
    pub(crate) fn register(t: &mut Telemetry) -> SpanIds {
        SpanIds {
            run_total: t.span_id("run.total"),
            run_calibrate: t.span_id("run.calibrate"),
            run_setup: t.span_id("run.setup"),
            run_event_loop: t.span_id("run.event_loop"),
            run_finalize: t.span_id("run.finalize"),
            event_move_tick: t.span_id("event.move_tick"),
            event_metrics_sample: t.span_id("event.metrics_sample"),
            event_snapshot: t.span_id("event.snapshot"),
            event_window_start: t.span_id("event.window_start"),
            event_robot_wake: t.span_id("event.robot_wake"),
            event_robot_window_end: t.span_id("event.robot_window_end"),
            event_transmit: t.span_id("event.transmit"),
            event_tx_end: t.span_id("event.tx_end"),
            event_mesh_reply: t.span_id("event.mesh_reply"),
            event_mesh_rebroadcast: t.span_id("event.mesh_rebroadcast"),
            event_medium_gc: t.span_id("event.medium_gc"),
            event_fault: t.span_id("event.fault"),
            grid_update: t.span_id("grid.update"),
            grid_fix: t.span_id("grid.fix"),
            channel_sample: t.span_id("channel.sample"),
            channel_sample_reply: t.span_id("channel.sample_reply"),
            channel_sample_rebroadcast: t.span_id("channel.sample_rebroadcast"),
            mesh_handle: t.span_id("mesh.handle"),
            mobility_step: t.span_id("mobility.step"),
        }
    }

    fn for_event(&self, event: &Event) -> SpanId {
        match event {
            Event::MoveTick => self.event_move_tick,
            Event::MetricsSample => self.event_metrics_sample,
            Event::Snapshot { .. } => self.event_snapshot,
            Event::WindowStart { .. } => self.event_window_start,
            Event::RobotWake { .. } => self.event_robot_wake,
            Event::RobotWindowEnd { .. } => self.event_robot_window_end,
            Event::Transmit { .. } => self.event_transmit,
            Event::TxEnd { .. } => self.event_tx_end,
            Event::MeshReply { .. } => self.event_mesh_reply,
            Event::MeshRebroadcast { .. } => self.event_mesh_rebroadcast,
            Event::MediumGc => self.event_medium_gc,
            Event::Fault(_) => self.event_fault,
        }
    }
}

pub(crate) fn handle_event(engine: &mut Engine<Event>, world: &mut WorldState, event: Event) {
    // Attribute the wall-clock cost of every dispatch to its event
    // category; dispatch_event holds the actual logic so early returns
    // inside the arms cannot skip closing the span.
    let span = world.telemetry.span_start();
    let span_id = world.spans.for_event(&event);
    dispatch_event(engine, world, event);
    world.telemetry.span_end(span_id, span);
}

fn dispatch_event(engine: &mut Engine<Event>, world: &mut WorldState, event: Event) {
    let now = engine.now();
    match event {
        Event::MoveTick => {
            let dt = world.scenario.tick.as_secs_f64();
            let sp = world.telemetry.span_start();
            for i in 0..world.robots.len() {
                let r = &mut world.robots[i];
                if !r.alive {
                    continue; // crashed robots stop where they are
                }
                r.motion
                    .step(dt, &mut world.move_rngs[i], &mut world.odo_rngs[i]);
            }
            world.telemetry.span_end(world.spans.mobility_step, sp);
            engine.schedule_in(world.scenario.tick, Event::MoveTick);
        }

        Event::MetricsSample => {
            super::metrics_hook::metrics_sample(engine, world, now);
        }

        Event::Snapshot { index } => {
            super::metrics_hook::snapshot(world, index);
        }

        Event::WindowStart { index } => {
            super::window::window_start(engine, world, index, now);
        }

        Event::RobotWake {
            robot,
            window,
            epoch,
        } => {
            super::window::robot_wake(engine, world, robot, window, epoch, now);
        }

        Event::RobotWindowEnd {
            robot,
            window,
            epoch,
        } => {
            super::window::robot_window_end(engine, world, robot, window, epoch, now);
        }

        Event::Transmit { robot, intent } => {
            super::beacon::transmit_intent(engine, world, robot, intent, now);
        }

        Event::TxEnd { tx, receivers } => {
            super::beacon::deliver(engine, world, tx, &receivers, now);
        }

        Event::MeshReply { robot, source } => {
            super::mesh::mesh_reply(engine, world, robot, source, now);
        }

        Event::MeshRebroadcast { robot, source, seq } => {
            super::mesh::mesh_rebroadcast(engine, world, robot, source, seq, now);
        }

        Event::MediumGc => {
            world.medium.gc(now);
            engine.schedule_in(SimDuration::from_secs(10), Event::MediumGc);
        }

        Event::Fault(fault) => {
            super::faults_hook::apply_fault(engine, world, fault, now);
        }
    }
}
