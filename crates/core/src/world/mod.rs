//! The CoCoA simulation world: wires robots, radios, the medium, the
//! mesh, the coordination timeline and the metrics into one deterministic
//! discrete-event run.
//!
//! This module tree is the equivalent of the paper's Glomosim experiment
//! scripts: it realizes the timeline of Fig. 2 (beacon periods `T`,
//! transmit windows `t`, `k` beacons, radios sleeping in between) and the
//! SYNC dissemination of Fig. 3, and produces the error/energy metrics of
//! Section 4.
//!
//! The run is decomposed by concern, all sharing one `WorldState`:
//!
//! - [`events`](self): the event vocabulary, span bookkeeping and the
//!   dispatch table;
//! - [`mesh`]: the pluggable [`mesh::MeshBackend`] layer (flood / ODMRP /
//!   MRMM) and the mesh-packet handling that drives it;
//! - `window`: the coordination timeline — window starts, per-robot wakes
//!   and end-of-window fix/sync processing;
//! - `beacon`: the physical layer — deferred transmissions, channel
//!   sampling, reception judgment and beacon dispatch into the estimator;
//! - `faults_hook`: applying injected faults to the world;
//! - `metrics_hook`: metric sampling, snapshots and the end-of-run
//!   finalization into [`RunMetrics`].
//!
//! This file owns setup and teardown: scenario validation, calibration,
//! team construction, the initial schedule, and the public entry points
//! [`run`], [`run_traced`] and [`run_with_telemetry`].

pub(crate) mod beacon;
pub mod checkpoint;
pub(crate) mod events;
pub(crate) mod faults_hook;
pub mod mesh;
pub(crate) mod metrics_hook;
pub(crate) mod window;

use cocoa_localization::bayes::radial_constraints_for_grid;
use cocoa_localization::estimator::EstimatorMode;
use cocoa_localization::estimator::WindowedRfEstimator;
use cocoa_localization::grid::GridConfig;
use cocoa_mobility::motion::RobotMotion;
use cocoa_mobility::waypoint::WaypointConfig;
use cocoa_net::calibration::{calibrate, CalibrationConfig, PdfTable, RadialConstraintTable};
use cocoa_net::channel::RfChannel;
use cocoa_net::energy::PowerState;
use cocoa_net::geometry::Point;
use cocoa_net::mac::{Medium, TxId};
use cocoa_net::packet::{GroupId, NodeId};
use cocoa_net::radio::Radio;
use cocoa_sim::dist::uniform;
use cocoa_sim::engine::Engine;
use cocoa_sim::faults::GilbertElliottLink;
use cocoa_sim::rng::{DetRng, SeedSplitter};
use cocoa_sim::telemetry::Telemetry;
use cocoa_sim::time::{SimDuration, SimTime};
use cocoa_sim::trace::Trace;

use crate::health::{DegradationState, HealthMonitor};
use crate::metrics::{ErrorPoint, ErrorSnapshot, RobustnessStats, RunMetrics, TrafficStats};
use crate::robot::Robot;
use crate::scenario::Scenario;
use crate::sync::DriftingClock;

use events::{Event, HistIds, SpanIds};

/// The multicast group every robot joins for SYNC delivery.
pub(crate) const SYNC_GROUP: GroupId = GroupId(1);

/// Offset of the JOIN QUERY flood from the window start.
pub(crate) const QUERY_OFFSET: SimDuration = SimDuration::from_millis(5);
/// Offset of the SYNC data from the window start (lets the mesh form:
/// query flood + jittered rebroadcasts + aggregated replies take a few
/// hundred milliseconds).
pub(crate) const SYNC_OFFSET: SimDuration = SimDuration::from_millis(600);
/// Beacons start this far into the window, clear of the mesh-control burst.
pub(crate) const BEACON_LEAD_IN: SimDuration = SimDuration::from_millis(700);

/// Everything the event handlers share: the team, the channel, the
/// accumulators and the telemetry bus.
pub(crate) struct WorldState {
    pub(crate) scenario: Scenario,
    pub(crate) channel: RfChannel,
    pub(crate) table: PdfTable,
    /// Pre-sampled radial constraint profiles (one per calibrated RSSI
    /// bin, floor baked in), shared by every robot's Bayesian update.
    pub(crate) radial: RadialConstraintTable,
    pub(crate) medium: Medium,
    pub(crate) robots: Vec<Robot>,
    pub(crate) move_rngs: Vec<DetRng>,
    pub(crate) odo_rngs: Vec<DetRng>,
    pub(crate) channel_rng: DetRng,
    pub(crate) jitter_rng: DetRng,
    // Metric accumulators.
    pub(crate) error_series: Vec<ErrorPoint>,
    pub(crate) snapshots: Vec<ErrorSnapshot>,
    pub(crate) position_snapshots: Vec<(SimTime, Vec<crate::metrics::RobotFinalState>)>,
    pub(crate) traffic: TrafficStats,
    pub(crate) sync_robot: usize,
    pub(crate) max_guard: SimDuration,
    pub(crate) telemetry: Telemetry,
    pub(crate) spans: SpanIds,
    pub(crate) hists: HistIds,
    /// Next sim time at which per-robot timeline samples are due.
    pub(crate) next_robot_sample: Option<SimTime>,
    // Fault-injection state.
    pub(crate) fault_rng: DetRng,
    /// Per-receiver Gilbert–Elliott link state while a burst-loss overlay
    /// is active.
    pub(crate) burst: Option<Vec<GilbertElliottLink>>,
    /// Transmissions whose garbled frame no longer decodes: receivers pay
    /// the reception energy, then drop the frame.
    pub(crate) corrupt_txs: std::collections::HashSet<TxId>,
    pub(crate) robustness: RobustnessStats,
    /// Consecutive beacon periods the Sync timebase has been silent.
    pub(crate) sync_dead_windows: u32,
}

impl WorldState {
    pub(crate) fn mode(&self) -> EstimatorMode {
        self.scenario.mode
    }

    pub(crate) fn uses_rf(&self) -> bool {
        self.scenario.mode.uses_rf()
    }

    pub(crate) fn window_start_time(&self, index: u64) -> SimTime {
        SimTime::ZERO + self.scenario.beacon_period * index
    }

    /// Whether `robot` beacons during window `w` (equipped robots always,
    /// relayers when their fix is fresh enough).
    pub(crate) fn beacons_in_window(&self, robot: usize, window: u64) -> bool {
        let r = &self.robots[robot];
        if r.equipped {
            return true;
        }
        if !self.scenario.relay_beaconing || !r.has_fix {
            return false;
        }
        r.last_fix_window
            .is_some_and(|w| window.saturating_sub(w) <= self.scenario.relay_max_fix_age_windows)
    }
}

/// Runs `scenario` to completion and returns its metrics.
///
/// Deterministic: the same scenario (including seed) always produces the
/// same metrics, bit for bit.
///
/// # Panics
///
/// Panics if the scenario fails validation — construct it through
/// [`Scenario::builder`] to catch that earlier.
///
/// # Examples
///
/// ```no_run
/// use cocoa_core::runner::run;
/// use cocoa_core::scenario::Scenario;
///
/// let metrics = run(&Scenario::builder().build());
/// println!("mean error {:.1} m", metrics.mean_error_over_time());
/// ```
pub fn run(scenario: &Scenario) -> RunMetrics {
    run_with_telemetry(scenario, Telemetry::off()).0
}

/// Like [`run`], but records protocol milestones (window starts, fixes,
/// starved windows, lost syncs) into the supplied [`Trace`] and returns it
/// alongside the metrics. Use [`Trace::with_capacity`] to bound memory on
/// long runs.
///
/// The string trace is the legacy observability surface; it now rides on
/// the typed telemetry bus (see [`run_with_telemetry`]) as its legacy sink,
/// so existing callers keep working unchanged.
///
/// # Panics
///
/// Panics if the scenario fails validation.
pub fn run_traced(scenario: &Scenario, trace: Trace) -> (RunMetrics, Trace) {
    let mut telemetry = Telemetry::off();
    telemetry.attach_legacy(trace);
    let (metrics, mut telemetry) = run_with_telemetry(scenario, telemetry);
    let trace = telemetry
        .take_legacy()
        .expect("legacy trace survives the run");
    (metrics, trace)
}

/// Like [`run`], but records typed events, counters and span timings into
/// the supplied [`Telemetry`] bus and returns it alongside the metrics.
///
/// Telemetry is strictly an observer: for any fixed scenario the returned
/// [`RunMetrics`] are bit-identical whatever the bus level, and the
/// deterministic part of the trace ([`Telemetry::to_jsonl`] without spans)
/// is byte-identical across runs of the same seed.
///
/// # Panics
///
/// Panics if the scenario fails validation.
pub fn run_with_telemetry(scenario: &Scenario, telemetry: Telemetry) -> (RunMetrics, Telemetry) {
    checkpoint::SimRun::new(scenario, telemetry).finish()
}

/// Validates the scenario, runs calibration and constructs the complete
/// [`WorldState`] — team, channel, RNG streams, accumulators — with span
/// ids registered on `telemetry`. Shared by the normal entry points and
/// the checkpoint warm-fork path. Does not schedule any events.
pub(crate) fn setup_world(scenario: &Scenario, mut telemetry: Telemetry) -> WorldState {
    let spans = SpanIds::register(&mut telemetry);
    let hists = HistIds::register(&mut telemetry);
    let t_calibrate = telemetry.span_start();
    scenario
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    let split = SeedSplitter::new(scenario.seed);

    // --- Offline calibration phase (paper Section 2.2). ---
    let channel = RfChannel::new(scenario.channel);
    let table = calibrate(
        &channel,
        &CalibrationConfig::default(),
        &mut split.stream("calibration", 0),
    );
    // One radial constraint cache per run, shared by every robot.
    let radial = radial_constraints_for_grid(
        &table,
        &GridConfig::new(scenario.area, scenario.grid_resolution_m),
    );
    telemetry.span_end(spans.run_calibrate, t_calibrate);
    let t_setup = telemetry.span_start();

    // --- Team construction. ---
    let mut placement_rng = split.stream("placement", 0);
    let mut clock_rng = split.stream("clock", 0);
    let num_equipped = if scenario.mode.uses_rf() {
        scenario.num_equipped
    } else {
        0
    };
    let mut robots = Vec::with_capacity(scenario.num_robots);
    let mut move_rngs = Vec::with_capacity(scenario.num_robots);
    let mut odo_rngs = Vec::with_capacity(scenario.num_robots);
    for i in 0..scenario.num_robots {
        let start = Point::new(
            uniform(scenario.area.x_min, scenario.area.x_max, &mut placement_rng),
            uniform(scenario.area.y_min, scenario.area.y_max, &mut placement_rng),
        );
        let mut move_rng = split.stream("move", i as u64);
        let odo_rng = split.stream("odo", i as u64);
        let equipped = i < num_equipped;
        let skew = if i == 0 {
            0.0 // the Sync robot is the timebase
        } else {
            uniform(
                -scenario.clock_skew_ppm * 1e-6,
                scenario.clock_skew_ppm * 1e-6 + f64::EPSILON,
                &mut clock_rng,
            )
        };
        let motion = RobotMotion::new(
            WaypointConfig {
                area: scenario.area,
                v_min: scenario.v_min,
                v_max: scenario.v_max,
            },
            scenario.odometry,
            start,
            &mut move_rng,
        );
        let mut radio = Radio::new(scenario.energy, SimTime::ZERO);
        if !scenario.mode.uses_rf() {
            radio.set_state(SimTime::ZERO, PowerState::Off);
        }
        let rf = if !equipped && scenario.mode.uses_rf() {
            Some(WindowedRfEstimator::with_pipeline(
                GridConfig::new(scenario.area, scenario.grid_resolution_m),
                scenario.rf_algorithm,
                scenario.grid_pipeline,
            ))
        } else {
            None
        };
        // Equipped robots are healthy by construction; everyone else starts
        // dead-reckoning (no fix yet — the RF estimator has not run, and
        // odometry-only robots never get one).
        let initial_health = if equipped && scenario.mode.uses_rf() {
            DegradationState::Healthy
        } else {
            DegradationState::DeadReckoning
        };
        robots.push(Robot {
            id: NodeId(i as u32),
            index: i,
            equipped,
            motion,
            radio,
            rf,
            mesh: mesh::make_backend(
                scenario.multicast,
                NodeId(i as u32),
                SYNC_GROUP,
                true,
                scenario.mesh,
            ),
            clock: DriftingClock::new(skew),
            has_fix: false,
            last_fix_window: None,
            synced_this_window: false,
            fix_anchor: None,
            alive: true,
            epoch: 0,
            garbled_tx: false,
            beacon_offset: None,
            health: HealthMonitor::new(initial_health, SimTime::ZERO),
        });
        move_rngs.push(move_rng);
        odo_rngs.push(odo_rng);
    }

    let max_guard = (scenario.beacon_period / 4).max(scenario.guard_band);
    let mut world = WorldState {
        scenario: scenario.clone(),
        channel,
        table,
        radial,
        medium: Medium::new(),
        robots,
        move_rngs,
        odo_rngs,
        channel_rng: split.stream("channel", 0),
        jitter_rng: split.stream("jitter", 0),
        error_series: Vec::new(),
        snapshots: Vec::new(),
        position_snapshots: Vec::new(),
        traffic: TrafficStats::default(),
        sync_robot: 0,
        max_guard,
        telemetry,
        spans,
        hists,
        next_robot_sample: None,
        fault_rng: split.stream("faults", 0),
        burst: None,
        corrupt_txs: std::collections::HashSet::new(),
        robustness: RobustnessStats::default(),
        sync_dead_windows: 0,
    };
    world.telemetry.span_end(spans.run_setup, t_setup);
    world
}

/// Builds the initial event schedule for a freshly constructed (or
/// warm-forked) world and returns an engine positioned at time zero.
/// Also sizes `world.snapshots` to match the scheduled snapshot times.
pub(crate) fn build_initial_schedule(world: &mut WorldState) -> Engine<Event> {
    let scenario = &world.scenario;
    let horizon = SimTime::ZERO + scenario.duration;
    let mut engine: Engine<Event> = Engine::new(horizon);
    engine.schedule_at(SimTime::ZERO + scenario.tick, Event::MoveTick);
    engine.schedule_at(
        SimTime::ZERO + scenario.metrics_interval,
        Event::MetricsSample,
    );
    if world.uses_rf() {
        engine.schedule_at(SimTime::ZERO, Event::WindowStart { index: 0 });
        for i in 0..world.robots.len() {
            engine.schedule_at(
                SimTime::ZERO,
                Event::RobotWake {
                    robot: i,
                    window: 0,
                    epoch: 0,
                },
            );
        }
        engine.schedule_at(SimTime::ZERO + SimDuration::from_secs(10), Event::MediumGc);
    }
    for e in scenario.faults.events() {
        if e.at <= horizon {
            engine.schedule_at(e.at, Event::Fault(e.fault.clone()));
        }
    }
    let mut snapshot_times = scenario.snapshot_times.clone();
    snapshot_times.sort();
    for (i, &t) in snapshot_times.iter().enumerate() {
        if t <= horizon {
            engine.schedule_at(t, Event::Snapshot { index: i });
        }
    }
    world.snapshots = snapshot_times
        .iter()
        .map(|&t| ErrorSnapshot::new(t, Vec::new()))
        .collect();
    engine
}
