//! The physical layer of the world: deferred transmissions firing onto
//! the medium, per-receiver channel sampling, reception judgment at the
//! end of each frame's airtime, and dispatch of delivered packets into
//! the localizer or the mesh.

use bytes::Bytes;
use cocoa_localization::bayes::ObservationResult;
use cocoa_net::geometry::Point;
use cocoa_net::mac::{ReceptionOutcome, TxId};
use cocoa_net::packet::{Packet, Payload};
use cocoa_sim::engine::Engine;
use cocoa_sim::faults::garble_bytes;
use cocoa_sim::telemetry::TelemetryEvent;
use cocoa_sim::time::SimTime;

use super::events::{Event, TxIntent};
use super::WorldState;

/// Handles a deferred transmission: materializes the beacon (reading the
/// position at fire time) or releases the prepared mesh packet.
pub(crate) fn transmit_intent(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    intent: TxIntent,
    now: SimTime,
) {
    let packet = match intent {
        TxIntent::Beacon => {
            let r = &world.robots[robot];
            if !r.alive || !r.radio.can_receive() {
                return; // drifted into sleep (or crashed); beacon lost
            }
            let mut pos = r.beacon_position(world.mode(), &world.scenario.area);
            if let Some((dx, dy)) = r.beacon_offset {
                // Faulty localization device: the robot honestly
                // advertises a wrong position.
                pos = Point::new(pos.x + dx, pos.y + dy);
            }
            world.traffic.beacons_sent += 1;
            world.telemetry.emit_full(now, || TelemetryEvent::BeaconTx {
                robot: robot as u32,
                x_m: pos.x,
                y_m: pos.y,
            });
            Packet::new(
                r.id,
                now.as_micros() as u32,
                Payload::Beacon { position: pos },
            )
        }
        TxIntent::Mesh(p) => {
            let r = &world.robots[robot];
            if !r.alive || !r.radio.can_receive() {
                return;
            }
            p
        }
    };
    let scan_span = world.spans.channel_sample;
    transmit(engine, world, robot, packet, now, scan_span);
}

/// Puts `packet` on the air from `robot` and schedules the delivery
/// judgment at the end of its airtime.
pub(crate) fn transmit(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    packet: Packet,
    now: SimTime,
    scan_span: cocoa_sim::telemetry::SpanId,
) {
    // A garbling transmitter corrupts the frame on the air: if the garbled
    // bytes still parse the receivers get a wrong-but-well-formed packet;
    // if not, the frame occupies airtime and reception energy but is
    // dropped at every receiver's decoder.
    let mut packet = packet;
    let mut corrupt = false;
    if world.robots[robot].garbled_tx {
        let mut raw = packet.encode().to_vec();
        garble_bytes(&mut raw, &mut world.fault_rng);
        match Packet::decode(Bytes::from(raw)) {
            Ok(altered) => {
                world.robustness.garbled_frames_delivered += 1;
                packet = altered;
            }
            Err(_) => corrupt = true,
        }
    }
    let bytes = packet.wire_size();
    let src_pos = world.robots[robot].motion.true_position();
    let src_id = world.robots[robot].id;
    world.robots[robot].radio.record_tx(now, bytes);
    let duration = world.robots[robot].radio.tx_duration(bytes);
    let tx = world
        .medium
        .begin_tx(src_id, src_pos, packet, now, duration);
    if corrupt {
        world.corrupt_txs.insert(tx);
    }
    let mut receivers = Vec::new();
    let detect_horizon = world.channel.max_range() * 1.5;
    let sp = world.telemetry.span_start();
    for j in 0..world.robots.len() {
        if j == robot || !world.robots[j].radio.can_receive() {
            continue;
        }
        let d = src_pos.distance_to(world.robots[j].motion.true_position());
        if d <= 0.0 || d > detect_horizon {
            continue;
        }
        let rssi = world.channel.sample_rssi(d, &mut world.channel_rng);
        if !world.channel.is_detectable(rssi) {
            continue;
        }
        // Unmodelled losses (obstructions, interference bursts).
        if world.scenario.packet_loss > 0.0
            && rand::Rng::gen_bool(&mut world.channel_rng, world.scenario.packet_loss)
        {
            continue;
        }
        // Injected Gilbert–Elliott burst loss on this receiver's link.
        if let Some(links) = world.burst.as_mut() {
            if links[j].drops(&mut world.fault_rng) {
                world.robustness.burst_losses += 1;
                continue;
            }
        }
        world.medium.record_rssi(tx, world.robots[j].id, rssi);
        receivers.push(j);
    }
    world.telemetry.span_end(scan_span, sp);
    engine.schedule_at(now + duration, Event::TxEnd { tx, receivers });
}

/// Judges every reception of frame `tx` and dispatches delivered packets.
pub(crate) fn deliver(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    tx: TxId,
    receivers: &[usize],
    now: SimTime,
) {
    let corrupt = world.corrupt_txs.remove(&tx);
    for &j in receivers {
        let id = world.robots[j].id;
        match world.medium.outcome(tx, id) {
            ReceptionOutcome::Delivered { rssi, packet } => {
                if !world.robots[j].radio.can_receive() {
                    continue; // fell asleep mid-frame
                }
                world.robots[j].radio.record_rx(now, packet.wire_size());
                if corrupt {
                    // The frame arrived but its bytes no longer parse: the
                    // receiver paid the energy and drops it at the decoder.
                    world.robustness.corrupt_frames_dropped += 1;
                    continue;
                }
                dispatch(engine, world, j, packet, rssi, now);
            }
            ReceptionOutcome::Collided { .. } | ReceptionOutcome::HalfDuplex => {}
            ReceptionOutcome::NotReceivable => {}
            ReceptionOutcome::Expired => {}
        }
    }
}

/// Routes a delivered packet to the localizer or the mesh node.
fn dispatch(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    packet: Packet,
    rssi: cocoa_net::rssi::Dbm,
    now: SimTime,
) {
    match &packet.payload {
        Payload::Beacon { position } => {
            let gate = world.scenario.outlier_gate_m;
            let mode = world.mode();
            let area = world.scenario.area;
            // The robot's own current estimate anchors the consistency
            // check: a beacon whose claimed range disagrees wildly with
            // the RSSI-implied range is rejected as an outlier.
            let reference = {
                let r = &world.robots[robot];
                r.has_fix.then(|| r.estimate(mode, &area))
            };
            world
                .telemetry
                .hist_record(world.hists.beacon_rssi, rssi.value());
            let r = &mut world.robots[robot];
            if let Some(rf) = r.rf.as_mut() {
                world.traffic.beacons_received += 1;
                let sp = world.telemetry.span_start();
                let result = rf.observe_beacon_checked(
                    &world.table,
                    &world.radial,
                    *position,
                    rssi,
                    reference,
                    gate,
                );
                world.telemetry.span_end(world.spans.grid_update, sp);
                if result == ObservationResult::Outlier {
                    world.robustness.outlier_beacons_rejected += 1;
                }
                let outcome = match result {
                    ObservationResult::Applied => "applied",
                    ObservationResult::Outlier => "outlier",
                    ObservationResult::Rejected => "rejected",
                    ObservationResult::NoPdf => "no_pdf",
                };
                let from = packet.src.0;
                world.telemetry.emit_full(now, || TelemetryEvent::BeaconRx {
                    robot: robot as u32,
                    from,
                    rssi_dbm: rssi.value(),
                    outcome,
                });
                if result == ObservationResult::Applied {
                    world
                        .telemetry
                        .emit_full(now, || TelemetryEvent::GridUpdate {
                            robot: robot as u32,
                        });
                }
            }
        }
        Payload::Sync { .. } => {
            // Direct SYNC payloads are not used by the runner (SYNC rides
            // as mesh data) but remain valid protocol traffic.
        }
        _ => {
            super::mesh::handle_mesh_packet(engine, world, robot, &packet, now);
        }
    }
}
