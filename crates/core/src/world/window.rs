//! The coordination timeline: global window starts on the Sync robot's
//! reference clock, each robot's local wake-up, and the end-of-window
//! fix/sync/sleep processing (paper Fig. 2).

use cocoa_localization::estimator::{EstimatorMode, WindowOutcome};
use cocoa_mobility::pose::{normalize_angle, Pose};
use cocoa_net::energy::PowerState;
use cocoa_sim::dist::uniform;
use cocoa_sim::engine::Engine;
use cocoa_sim::telemetry::TelemetryEvent;
use cocoa_sim::time::{SimDuration, SimTime};
use cocoa_sim::trace::TraceLevel;

use crate::health::DegradationState;
use crate::robot::FixAnchor;
use crate::sync::SyncMessage;

use super::events::{Event, TxIntent};
use super::{WorldState, BEACON_LEAD_IN, QUERY_OFFSET, SYNC_OFFSET};

/// Handles a global window start: schedules the next period and, when
/// synchronization is on, has the Sync robot refresh the mesh and
/// disseminate SYNC (paper Fig. 3).
pub(crate) fn window_start(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    index: u64,
    now: SimTime,
) {
    world
        .telemetry
        .emit(now, TelemetryEvent::WindowStart { window: index });
    world
        .telemetry
        .legacy(now, TraceLevel::Info, "coordinator", || {
            format!("beacon period {index} starts")
        });
    // Schedule the next period on the reference timeline.
    let next = world.window_start_time(index + 1);
    if next < engine.horizon() {
        engine.schedule_at(next, Event::WindowStart { index: index + 1 });
    }
    // The Sync robot refreshes the mesh and disseminates SYNC.
    if world.scenario.sync_enabled {
        // Failover: after K consecutive silent periods the team
        // deterministically elects a new timebase (first alive
        // equipped robot, else first alive robot). The runner
        // models the election centrally; every robot observes the
        // same K missed SYNCs, so a distributed election over the
        // mesh would pick the same winner.
        if world.robots[world.sync_robot].alive {
            world.sync_dead_windows = 0;
        } else {
            world.sync_dead_windows += 1;
            if world.sync_dead_windows >= world.scenario.failover_missed_periods {
                let elected = world
                    .robots
                    .iter()
                    .position(|r| r.alive && r.equipped)
                    .or_else(|| world.robots.iter().position(|r| r.alive));
                if let Some(new_sync) = elected {
                    world.sync_robot = new_sync;
                    world.sync_dead_windows = 0;
                    world.robustness.failovers += 1;
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::Failover {
                            new_sync: new_sync as u32,
                        },
                    );
                    world.telemetry.legacy(now, TraceLevel::Info, "sync", || {
                        format!("failover: robot {new_sync} elected as timebase")
                    });
                }
            }
        }
        if !world.robots[world.sync_robot].alive {
            return; // no live timebase yet; the period goes silent
        }
        let s = world.sync_robot;
        let mode = world.mode();
        let area = world.scenario.area;
        let info = world.robots[s].mobility_info(mode, &area);
        // Backends without a control plane (flooding) skip the refresh.
        if let Some(query) = world.robots[s].mesh.originate_query(now, &info) {
            engine.schedule_in(
                QUERY_OFFSET,
                Event::Transmit {
                    robot: s,
                    intent: TxIntent::Mesh(query),
                },
            );
        }
        let sync = SyncMessage {
            period_us: world.scenario.beacon_period.as_micros(),
            window_us: world.scenario.transmit_window.as_micros(),
            window_index: index,
            window_start_us: now.as_micros(),
        };
        let data = world.robots[s].mesh.originate_data(now, sync.encode());
        engine.schedule_in(
            SYNC_OFFSET,
            Event::Transmit {
                robot: s,
                intent: TxIntent::Mesh(data),
            },
        );
        // The Sync robot trivially hears its own schedule.
        world.robots[s].synced_this_window = true;
    }
}

pub(crate) fn robot_wake(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    window: u64,
    epoch: u32,
    now: SimTime,
) {
    if !world.robots[robot].alive || world.robots[robot].epoch != epoch {
        return; // stale wake from a life that ended in a crash
    }
    let window_start = world.window_start_time(window);
    let scenario_window = world.scenario.transmit_window;
    let beacons = world.beacons_in_window(robot, window);
    {
        let r = &mut world.robots[robot];
        let prev = r.radio.state();
        if world.scenario.coordination || prev != PowerState::Idle {
            r.radio.set_state(now, PowerState::Idle);
            if prev != PowerState::Idle {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::RadioState {
                        robot: robot as u32,
                        state: PowerState::Idle.as_str(),
                    },
                );
            }
        }
        r.synced_this_window = robot == world.sync_robot && world.scenario.sync_enabled;
        let odo = r.motion.odometry_pose().position;
        if let Some(rf) = r.rf.as_mut() {
            // Odometry-integrating backends (the EKF) run their prediction
            // step over the displacement dead-reckoned since the last wake;
            // window-reset backends ignore the report.
            rf.note_odometry(odo);
            rf.begin_window();
        }
    }
    // Schedule this robot's beacons, spread over the window with jitter.
    if beacons {
        let k = world.scenario.beacons_per_window;
        let usable = scenario_window - BEACON_LEAD_IN;
        let slot = usable / u64::from(k);
        for i in 0..k {
            let jitter = uniform(
                0.0,
                (slot.as_secs_f64() * 0.8).max(1e-4),
                &mut world.jitter_rng,
            );
            let intended = window_start
                + BEACON_LEAD_IN
                + slot * u64::from(i)
                + SimDuration::from_secs_f64(jitter);
            let fire = world.robots[robot].clock.actual_fire_time(intended, now);
            if fire < engine.horizon() {
                engine.schedule_at(
                    fire,
                    Event::Transmit {
                        robot,
                        intent: TxIntent::Beacon,
                    },
                );
            }
        }
    }
    // Schedule the end-of-window processing.
    let intended_end = window_start + scenario_window + world.scenario.guard_band;
    let fire = world.robots[robot]
        .clock
        .actual_fire_time(intended_end, now);
    if fire <= engine.horizon() {
        engine.schedule_at(
            fire,
            Event::RobotWindowEnd {
                robot,
                window,
                epoch,
            },
        );
    } else {
        // The run ends mid-window; the finalizer will checkpoint energy.
    }
}

pub(crate) fn robot_window_end(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    window: u64,
    epoch: u32,
    now: SimTime,
) {
    if !world.robots[robot].alive || world.robots[robot].epoch != epoch {
        return; // stale window-end from a life that ended in a crash
    }
    let mode = world.mode();
    let watchdog = world.scenario.entropy_watchdog_frac;
    {
        let r = &mut world.robots[robot];
        // Close the RF window and process the fix.
        if let Some(rf) = r.rf.as_mut() {
            let had_window = rf.in_window();
            let sp = world.telemetry.span_start();
            let outcome = rf.end_window_guarded_with(watchdog, Some(&world.radial));
            world.telemetry.span_end(world.spans.grid_fix, sp);
            match outcome {
                WindowOutcome::Fix(fix) => {
                    r.has_fix = true;
                    r.last_fix_window = Some(window);
                    world.traffic.fixes += 1;
                    world.telemetry.hist_record(
                        world.hists.fix_err,
                        r.motion.true_position().distance_to(fix),
                    );
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::Fix {
                            robot: robot as u32,
                            window,
                            x_m: fix.x,
                            y_m: fix.y,
                            err_m: r.motion.true_position().distance_to(fix),
                        },
                    );
                    world
                        .telemetry
                        .legacy(now, TraceLevel::Debug, "localization", || {
                            format!("robot {} fixed at {} in window {window}", robot, fix)
                        });
                    if mode == EstimatorMode::Cocoa {
                        // RF fixes position; heading is re-anchored from the
                        // displacement observed between consecutive fixes.
                        let odo_pose = r.motion.odometry_pose();
                        let mut heading = odo_pose.heading;
                        if let Some(anchor) = r.fix_anchor {
                            let d_fix = fix - anchor.fix;
                            let d_odo = odo_pose.position - anchor.odo_at_fix;
                            // Short displacements make the bearing comparison
                            // noisier than the heading error it would fix.
                            if d_fix.norm() > 10.0 && d_odo.norm() > 10.0 {
                                heading -= normalize_angle(d_odo.angle() - d_fix.angle());
                            }
                        }
                        r.fix_anchor = Some(FixAnchor {
                            fix,
                            odo_at_fix: odo_pose.position,
                        });
                        r.motion.reset_odometry_to(Pose::new(fix, heading));
                        // The odometry frame just jumped to the fix;
                        // odometry-integrating backends must re-anchor so the
                        // jump is not mistaken for motion.
                        rf.reanchor_odometry(fix);
                    }
                }
                WindowOutcome::FlatPosterior { entropy, threshold } => {
                    // The entropy watchdog vetoed a near-uniform posterior:
                    // the robot keeps dead-reckoning from its previous fix
                    // rather than jumping to an uninformative centroid.
                    world.robustness.flat_posteriors += 1;
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::FlatPosterior {
                            robot: robot as u32,
                            window,
                            entropy,
                            threshold,
                        },
                    );
                    world
                        .telemetry
                        .legacy(now, TraceLevel::Warn, "localization", || {
                            format!(
                                "robot {robot} posterior too flat in window {window} \
                                 (entropy {entropy:.2} > {threshold:.2}); keeping estimate"
                            )
                        });
                }
                WindowOutcome::NoFix => {
                    if had_window {
                        // Fewer than the minimum beacons arrived: the robot
                        // keeps its previous estimate (paper Section 2.3).
                        world.traffic.starved_windows += 1;
                        world.telemetry.emit(
                            now,
                            TelemetryEvent::StarvedWindow {
                                robot: robot as u32,
                                window,
                            },
                        );
                        world
                            .telemetry
                            .legacy(now, TraceLevel::Warn, "localization", || {
                                format!("robot {robot} starved in window {window}")
                            });
                    }
                }
            }
        }
        // Degradation bookkeeping: a fresh fix means healthy; a recent one
        // means degraded (coasting on odometry); anything older is pure
        // dead reckoning. Equipped robots stay healthy.
        if r.rf.is_some() {
            let state = match r.last_fix_window {
                Some(w) if w == window => DegradationState::Healthy,
                Some(w) if window.saturating_sub(w) <= 2 => DegradationState::Degraded,
                _ => DegradationState::DeadReckoning,
            };
            if r.health.transition(now, state) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: state.as_str(),
                    },
                );
            }
        }
        // Synchronization accounting.
        if world.scenario.sync_enabled {
            if r.synced_this_window {
                world.traffic.syncs_delivered += 1;
                world.telemetry.emit(
                    now,
                    TelemetryEvent::SyncDelivered {
                        robot: robot as u32,
                        window,
                    },
                );
            } else {
                r.clock.note_missed_sync();
                world.traffic.syncs_missed += 1;
                world.telemetry.emit(
                    now,
                    TelemetryEvent::SyncMissed {
                        robot: robot as u32,
                        window,
                    },
                );
                world.telemetry.legacy(now, TraceLevel::Warn, "sync", || {
                    format!("robot {robot} missed SYNC in window {window}")
                });
            }
        }
        // Sleep until the next window.
        if world.scenario.coordination {
            r.radio.set_state(now, PowerState::Sleep);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: PowerState::Sleep.as_str(),
                },
            );
        }
    }
    // Schedule the next wake on the robot's local clock.
    let next_window = window + 1;
    let next_start = world.window_start_time(next_window);
    if next_start >= engine.horizon() {
        return;
    }
    let guard = world.robots[robot]
        .clock
        .effective_guard(world.scenario.guard_band, world.max_guard);
    let intended = next_start - guard.min(next_start.saturating_since(SimTime::ZERO));
    let fire = world.robots[robot].clock.actual_fire_time(intended, now);
    engine.schedule_at(
        fire.min(engine.horizon()),
        Event::RobotWake {
            robot,
            window: next_window,
            epoch,
        },
    );
}
