//! Deterministic run snapshots: capture a run at any event boundary,
//! restore it bit-identically, or fork it under a patched scenario.
//!
//! The serialized form is the dependency-free sectioned container of
//! [`cocoa_sim::snapshot`]: a JSON metadata header (human-greppable) plus
//! CRC-guarded binary sections — `"scenario"`, `"engine"`, `"rngs"`,
//! `"medium"`, `"robots"`, `"world"` and `"telemetry"` — that together
//! hold *everything* the event loop reads: the pending event queue, every
//! named RNG stream's position, per-robot pose/estimator/radio/clock/
//! health/mesh state, in-flight transmissions, fault overlays and the
//! telemetry bus itself. Restoring a snapshot and running to the horizon
//! therefore produces metrics and a deterministic trace that are
//! bit-identical to the uninterrupted run — the property the resume tests
//! pin down.
//!
//! Three consumers build on this module:
//!
//! - `cocoa-run --snapshot-at/--resume`: operational save/restore;
//! - [`SimRun::warm_fork`]: sweep acceleration — capture the shared
//!   time-zero state (calibration done, team placed) once per seed, then
//!   fork it under each sweep point's patched scenario;
//! - `cocoa-trace bisect` + [`cocoa_sim::snapshot::Snapshot::diff`]:
//!   divergence localization between two runs.

use bytes::Bytes;

use cocoa_localization::adaptive::Tile;
use cocoa_localization::backend::BackendCheckpoint;
use cocoa_localization::bayes::GridStats;
use cocoa_localization::ekf::EkfSnapshot;
use cocoa_localization::estimator::{
    EstimatorCheckpoint, EstimatorMode, RfAlgorithm, WindowStats, WindowedRfEstimator,
};
use cocoa_localization::grid::GridConfig;
use cocoa_localization::kernel::{GridKernel, GridPipeline, GridPrecision};
use cocoa_localization::multilateration::RangeObservation;
use cocoa_mobility::motion::RobotMotion;
use cocoa_mobility::odometry::{Odometer, OdometerCheckpoint, OdometryConfig};
use cocoa_mobility::pose::Pose;
use cocoa_mobility::waypoint::{WaypointCheckpoint, WaypointConfig, WaypointModel};
use cocoa_multicast::odmrp::{MeshMode, OdmrpConfig};
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_net::calibration::{calibrate, CalibrationConfig, PdfTable, RadialConstraintTable};
use cocoa_net::channel::{ChannelParams, PathLossModel, RfChannel};
use cocoa_net::energy::{EnergyLedger, EnergyParams, PowerState};
use cocoa_net::geometry::{Area, Point};
use cocoa_net::mac::{ActiveTxState, Medium, MediumState, TxId};
use cocoa_net::packet::{NodeId, Packet};
use cocoa_net::radio::{Radio, RadioCheckpoint};
use cocoa_net::rssi::Dbm;
use cocoa_net::rssi::RssiBin;
use cocoa_sim::engine::Engine;
use cocoa_sim::event::EventQueue;
use cocoa_sim::faults::{Fault, FaultPlan, GilbertElliott, GilbertElliottLink};
use cocoa_sim::jsonfmt::ObjectWriter;
use cocoa_sim::rng::{DetRng, SeedSplitter};
use cocoa_sim::snapshot::{
    intern, put_bool, put_bytes, put_f64, put_str, put_u32, put_u64, put_u8, put_usize, Snapshot,
    SnapshotError, SnapshotReader, SnapshotWriter,
};
use cocoa_sim::telemetry::hist::{HistSnapshot, Histogram, NUM_BUCKETS};
use cocoa_sim::telemetry::{
    SpanStart, StampedEvent, Telemetry, TelemetryCheckpoint, TelemetryEvent, TelemetryLevel,
};
use cocoa_sim::time::{SimDuration, SimTime};
use cocoa_sim::trace::TraceLevel;

use crate::health::{DegradationState, HealthLedger, HealthMonitor};
use crate::metrics::{
    ErrorPoint, ErrorSnapshot, RobotFinalState, RobustnessStats, RunMetrics, TrafficStats,
};
use crate::robot::{FixAnchor, Robot};
use crate::scenario::Scenario;
use crate::sync::DriftingClock;
use crate::world::events::{Event, SpanIds, TxIntent};
use crate::world::{self, events, mesh, metrics_hook, WorldState, SYNC_GROUP};

/// Section tags, in the order they are written.
const SECTIONS: [&str; 7] = [
    "scenario",
    "engine",
    "rngs",
    "medium",
    "robots",
    "world",
    "telemetry",
];

/// Upper bound on `Vec::with_capacity` pre-allocation while decoding
/// length-prefixed collections: a corrupt length then costs a bounded
/// allocation plus a clean `Truncated` error instead of an abort.
const CAP_GUARD: usize = 4096;

fn malformed(context: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        context: context.into(),
    }
}

// ---------------------------------------------------------------------------
// Small codec helpers shared by every section.
// ---------------------------------------------------------------------------

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    put_u64(buf, t.as_micros());
}

fn read_time(r: &mut SnapshotReader<'_>) -> Result<SimTime, SnapshotError> {
    Ok(SimTime::from_micros(r.u64()?))
}

fn put_dur(buf: &mut Vec<u8>, d: SimDuration) {
    put_u64(buf, d.as_micros());
}

fn read_dur(r: &mut SnapshotReader<'_>) -> Result<SimDuration, SnapshotError> {
    Ok(SimDuration::from_micros(r.u64()?))
}

fn put_point(buf: &mut Vec<u8>, p: Point) {
    put_f64(buf, p.x);
    put_f64(buf, p.y);
}

fn read_point(r: &mut SnapshotReader<'_>) -> Result<Point, SnapshotError> {
    Ok(Point::new(r.f64()?, r.f64()?))
}

fn put_pose(buf: &mut Vec<u8>, p: Pose) {
    put_point(buf, p.position);
    put_f64(buf, p.heading);
}

fn read_pose(r: &mut SnapshotReader<'_>) -> Result<Pose, SnapshotError> {
    Ok(Pose {
        position: read_point(r)?,
        heading: r.f64()?,
    })
}

fn put_opt<T>(buf: &mut Vec<u8>, v: Option<T>, f: impl FnOnce(&mut Vec<u8>, T)) {
    match v {
        Some(v) => {
            put_bool(buf, true);
            f(buf, v);
        }
        None => put_bool(buf, false),
    }
}

fn read_opt<T>(
    r: &mut SnapshotReader<'_>,
    f: impl FnOnce(&mut SnapshotReader<'_>) -> Result<T, SnapshotError>,
) -> Result<Option<T>, SnapshotError> {
    if r.bool()? {
        Ok(Some(f(r)?))
    } else {
        Ok(None)
    }
}

fn put_vec<T>(buf: &mut Vec<u8>, items: &[T], mut f: impl FnMut(&mut Vec<u8>, &T)) {
    put_usize(buf, items.len());
    for item in items {
        f(buf, item);
    }
}

fn read_vec<T>(
    r: &mut SnapshotReader<'_>,
    mut f: impl FnMut(&mut SnapshotReader<'_>) -> Result<T, SnapshotError>,
) -> Result<Vec<T>, SnapshotError> {
    let n = r.usize_()?;
    let mut v = Vec::with_capacity(n.min(CAP_GUARD));
    for _ in 0..n {
        v.push(f(r)?);
    }
    Ok(v)
}

fn put_rng(buf: &mut Vec<u8>, rng: &DetRng) {
    for word in rng.state() {
        put_u64(buf, word);
    }
}

fn read_rng(r: &mut SnapshotReader<'_>) -> Result<DetRng, SnapshotError> {
    let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    if s == [0u64; 4] {
        return Err(malformed("rng stream has the all-zero state"));
    }
    Ok(DetRng::from_state(s))
}

fn bad_tag(what: &str, tag: u8) -> SnapshotError {
    malformed(format!("unknown {what} tag {tag}"))
}

// ---------------------------------------------------------------------------
// Scenario section.
// ---------------------------------------------------------------------------

fn put_channel(buf: &mut Vec<u8>, c: &ChannelParams) {
    put_f64(buf, c.tx_power_dbm);
    put_f64(buf, c.path_loss_1m_db);
    match c.path_loss {
        PathLossModel::LogDistance { exponent } => {
            put_u8(buf, 0);
            put_f64(buf, exponent);
        }
        PathLossModel::TwoRayGround {
            antenna_height_m,
            wavelength_m,
        } => {
            put_u8(buf, 1);
            put_f64(buf, antenna_height_m);
            put_f64(buf, wavelength_m);
        }
    }
    put_f64(buf, c.shadowing_sigma_db);
    put_f64(buf, c.shadowing_sigma_slope_db_per_m);
    put_f64(buf, c.multipath_onset_m);
    put_f64(buf, c.multipath_fade_prob);
    put_f64(buf, c.multipath_fade_mean_db);
    put_f64(buf, c.sensitivity_dbm);
}

fn read_channel(r: &mut SnapshotReader<'_>) -> Result<ChannelParams, SnapshotError> {
    let tx_power_dbm = r.f64()?;
    let path_loss_1m_db = r.f64()?;
    let path_loss = match r.u8()? {
        0 => PathLossModel::LogDistance { exponent: r.f64()? },
        1 => PathLossModel::TwoRayGround {
            antenna_height_m: r.f64()?,
            wavelength_m: r.f64()?,
        },
        t => return Err(bad_tag("path-loss model", t)),
    };
    Ok(ChannelParams {
        tx_power_dbm,
        path_loss_1m_db,
        path_loss,
        shadowing_sigma_db: r.f64()?,
        shadowing_sigma_slope_db_per_m: r.f64()?,
        multipath_onset_m: r.f64()?,
        multipath_fade_prob: r.f64()?,
        multipath_fade_mean_db: r.f64()?,
        sensitivity_dbm: r.f64()?,
    })
}

fn put_energy(buf: &mut Vec<u8>, e: &EnergyParams) {
    put_f64(buf, e.idle_mw);
    put_f64(buf, e.sleep_mw);
    put_f64(buf, e.tx_uj_per_byte);
    put_f64(buf, e.tx_uj_fixed);
    put_f64(buf, e.rx_uj_per_byte);
    put_f64(buf, e.rx_uj_fixed);
    put_f64(buf, e.wake_uj);
}

fn read_energy(r: &mut SnapshotReader<'_>) -> Result<EnergyParams, SnapshotError> {
    Ok(EnergyParams {
        idle_mw: r.f64()?,
        sleep_mw: r.f64()?,
        tx_uj_per_byte: r.f64()?,
        tx_uj_fixed: r.f64()?,
        rx_uj_per_byte: r.f64()?,
        rx_uj_fixed: r.f64()?,
        wake_uj: r.f64()?,
    })
}

fn put_fault(buf: &mut Vec<u8>, f: &Fault) {
    match f {
        Fault::Crash { robot } => {
            put_u8(buf, 0);
            put_usize(buf, *robot);
        }
        Fault::Reboot { robot } => {
            put_u8(buf, 1);
            put_usize(buf, *robot);
        }
        Fault::ClockSkewStep { robot, delta_ppm } => {
            put_u8(buf, 2);
            put_usize(buf, *robot);
            put_f64(buf, *delta_ppm);
        }
        Fault::GarbleTxStart { robot } => {
            put_u8(buf, 3);
            put_usize(buf, *robot);
        }
        Fault::GarbleTxEnd { robot } => {
            put_u8(buf, 4);
            put_usize(buf, *robot);
        }
        Fault::BeaconOffsetStart { robot, dx_m, dy_m } => {
            put_u8(buf, 5);
            put_usize(buf, *robot);
            put_f64(buf, *dx_m);
            put_f64(buf, *dy_m);
        }
        Fault::BeaconOffsetEnd { robot } => {
            put_u8(buf, 6);
            put_usize(buf, *robot);
        }
        Fault::BurstLossStart { model } => {
            put_u8(buf, 7);
            put_gilbert(buf, model);
        }
        Fault::BurstLossEnd => put_u8(buf, 8),
    }
}

fn read_fault(r: &mut SnapshotReader<'_>) -> Result<Fault, SnapshotError> {
    Ok(match r.u8()? {
        0 => Fault::Crash { robot: r.usize_()? },
        1 => Fault::Reboot { robot: r.usize_()? },
        2 => Fault::ClockSkewStep {
            robot: r.usize_()?,
            delta_ppm: r.f64()?,
        },
        3 => Fault::GarbleTxStart { robot: r.usize_()? },
        4 => Fault::GarbleTxEnd { robot: r.usize_()? },
        5 => Fault::BeaconOffsetStart {
            robot: r.usize_()?,
            dx_m: r.f64()?,
            dy_m: r.f64()?,
        },
        6 => Fault::BeaconOffsetEnd { robot: r.usize_()? },
        7 => Fault::BurstLossStart {
            model: read_gilbert(r)?,
        },
        8 => Fault::BurstLossEnd,
        t => return Err(bad_tag("fault", t)),
    })
}

fn put_gilbert(buf: &mut Vec<u8>, m: &GilbertElliott) {
    put_f64(buf, m.p_enter_bad);
    put_f64(buf, m.p_exit_bad);
    put_f64(buf, m.loss_good);
    put_f64(buf, m.loss_bad);
}

fn read_gilbert(r: &mut SnapshotReader<'_>) -> Result<GilbertElliott, SnapshotError> {
    Ok(GilbertElliott {
        p_enter_bad: r.f64()?,
        p_exit_bad: r.f64()?,
        loss_good: r.f64()?,
        loss_bad: r.f64()?,
    })
}

fn encode_scenario(s: &Scenario) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.seed);
    put_f64(&mut buf, s.area.x_min);
    put_f64(&mut buf, s.area.x_max);
    put_f64(&mut buf, s.area.y_min);
    put_f64(&mut buf, s.area.y_max);
    put_usize(&mut buf, s.num_robots);
    put_usize(&mut buf, s.num_equipped);
    put_dur(&mut buf, s.duration);
    put_dur(&mut buf, s.beacon_period);
    put_dur(&mut buf, s.transmit_window);
    put_u32(&mut buf, s.beacons_per_window);
    put_f64(&mut buf, s.v_min);
    put_f64(&mut buf, s.v_max);
    put_u8(
        &mut buf,
        match s.mode {
            EstimatorMode::OdometryOnly => 0,
            EstimatorMode::RfOnly => 1,
            EstimatorMode::Cocoa => 2,
        },
    );
    put_u8(
        &mut buf,
        match s.rf_algorithm {
            RfAlgorithm::Bayes => 0,
            RfAlgorithm::Multilateration => 1,
            RfAlgorithm::Ekf => 2,
        },
    );
    put_bool(&mut buf, s.coordination);
    put_f64(&mut buf, s.grid_resolution_m);
    put_channel(&mut buf, &s.channel);
    put_energy(&mut buf, &s.energy);
    put_f64(&mut buf, s.odometry.displacement_sigma);
    put_f64(&mut buf, s.odometry.angular_sigma);
    put_f64(&mut buf, s.odometry.heading_drift_sigma);
    put_u8(
        &mut buf,
        match s.mesh.mode {
            MeshMode::Odmrp => 0,
            MeshMode::Mrmm => 1,
        },
    );
    put_u8(&mut buf, s.mesh.max_hops);
    put_dur(&mut buf, s.mesh.fg_timeout);
    put_dur(&mut buf, s.mesh.reply_delay);
    put_dur(&mut buf, s.mesh.rebroadcast_jitter);
    put_f64(&mut buf, s.mesh.range_m);
    put_f64(&mut buf, s.mesh.lifetime_horizon_s);
    put_f64(&mut buf, s.mesh.prune.min_lifetime_s);
    put_u32(&mut buf, s.mesh.prune.redundancy_threshold);
    put_dur(&mut buf, s.mesh.dedup_retention);
    put_u8(
        &mut buf,
        match s.multicast {
            MulticastProtocol::Flood => 0,
            MulticastProtocol::Odmrp => 1,
            MulticastProtocol::Mrmm => 2,
        },
    );
    put_bool(&mut buf, s.sync_enabled);
    put_f64(&mut buf, s.clock_skew_ppm);
    put_dur(&mut buf, s.guard_band);
    put_dur(&mut buf, s.tick);
    put_dur(&mut buf, s.metrics_interval);
    put_vec(&mut buf, &s.snapshot_times, |b, &t| put_time(b, t));
    put_f64(&mut buf, s.packet_loss);
    put_bool(&mut buf, s.relay_beaconing);
    put_u64(&mut buf, s.relay_max_fix_age_windows);
    put_vec(&mut buf, s.faults.events(), |b, e| {
        put_time(b, e.at);
        put_fault(b, &e.fault);
    });
    put_u32(&mut buf, s.failover_missed_periods);
    put_f64(&mut buf, s.entropy_watchdog_frac);
    put_f64(&mut buf, s.outlier_gate_m);
    put_u8(
        &mut buf,
        match s.grid_pipeline.kernel {
            GridKernel::Scalar => 0,
            GridKernel::Simd => 1,
        },
    );
    put_u8(
        &mut buf,
        match s.grid_pipeline.precision {
            GridPrecision::F64 => 0,
            GridPrecision::F32 => 1,
        },
    );
    put_bool(&mut buf, s.grid_pipeline.fused);
    put_bool(&mut buf, s.grid_pipeline.adaptive);
    put_u32(&mut buf, s.grid_pipeline.adaptive_coarse_factor);
    put_f64(&mut buf, s.grid_pipeline.adaptive_refine_factor);
    buf
}

/// The setup-feeding subset of the scenario encoding: exactly the
/// fields whose effects are baked into a time-zero snapshot during
/// [`world::setup_world`] (seed, arena, team size and composition,
/// speed range, estimator, grid resolution, channel, energy, odometry,
/// mesh, multicast, clock skew). Two scenarios with identical immutable
/// encodings are warm-fork compatible; everything else is schedule-side
/// and may differ between a snapshot and its forks.
///
/// [`SimRun::warm_fork`] compares these bytes directly, so the
/// compatibility check and the [`warm_fingerprint`] cache key can never
/// drift apart.
fn encode_scenario_immutable(s: &Scenario) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.seed);
    put_f64(&mut buf, s.area.x_min);
    put_f64(&mut buf, s.area.x_max);
    put_f64(&mut buf, s.area.y_min);
    put_f64(&mut buf, s.area.y_max);
    put_usize(&mut buf, s.num_robots);
    put_usize(&mut buf, s.num_equipped);
    put_f64(&mut buf, s.v_min);
    put_f64(&mut buf, s.v_max);
    put_u8(
        &mut buf,
        match s.mode {
            EstimatorMode::OdometryOnly => 0,
            EstimatorMode::RfOnly => 1,
            EstimatorMode::Cocoa => 2,
        },
    );
    put_u8(
        &mut buf,
        match s.rf_algorithm {
            RfAlgorithm::Bayes => 0,
            RfAlgorithm::Multilateration => 1,
            RfAlgorithm::Ekf => 2,
        },
    );
    put_f64(&mut buf, s.grid_resolution_m);
    put_channel(&mut buf, &s.channel);
    put_energy(&mut buf, &s.energy);
    put_f64(&mut buf, s.odometry.displacement_sigma);
    put_f64(&mut buf, s.odometry.angular_sigma);
    put_f64(&mut buf, s.odometry.heading_drift_sigma);
    put_u8(
        &mut buf,
        match s.mesh.mode {
            MeshMode::Odmrp => 0,
            MeshMode::Mrmm => 1,
        },
    );
    put_u8(&mut buf, s.mesh.max_hops);
    put_dur(&mut buf, s.mesh.fg_timeout);
    put_dur(&mut buf, s.mesh.reply_delay);
    put_dur(&mut buf, s.mesh.rebroadcast_jitter);
    put_f64(&mut buf, s.mesh.range_m);
    put_f64(&mut buf, s.mesh.lifetime_horizon_s);
    put_f64(&mut buf, s.mesh.prune.min_lifetime_s);
    put_u32(&mut buf, s.mesh.prune.redundancy_threshold);
    put_dur(&mut buf, s.mesh.dedup_retention);
    put_u8(
        &mut buf,
        match s.multicast {
            MulticastProtocol::Flood => 0,
            MulticastProtocol::Odmrp => 1,
            MulticastProtocol::Mrmm => 2,
        },
    );
    put_f64(&mut buf, s.clock_skew_ppm);
    buf
}

/// CRC-fingerprints `payload` under the given codec version: the high
/// 32 bits are the CRC-32 of the version-prefixed payload, the low 32
/// bits its length. Prefixing the version means fingerprints computed
/// by different snapshot schemas never collide, so caches keyed by a
/// fingerprint (serve results, warm artifacts, sweep manifests) cannot
/// cross-serve stale state after a codec bump.
fn versioned_fingerprint(payload: &[u8], version: u32) -> u64 {
    let mut buf = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut buf, version);
    buf.extend_from_slice(payload);
    (u64::from(cocoa_sim::snapshot::crc32(&buf)) << 32) | buf.len() as u64
}

/// A 64-bit fingerprint of a scenario's full configuration, derived
/// from the same canonical encoding the snapshot codec persists,
/// prefixed with [`cocoa_sim::snapshot::SNAPSHOT_SCHEMA_VERSION`].
///
/// Sweep manifests store one fingerprint per point so a manifest is
/// never replayed against a different sweep: any scenario field that
/// affects the simulation changes the encoding, hence the fingerprint,
/// and a snapshot-codec version bump changes every fingerprint, so
/// artifacts produced by one schema are never served against another.
/// Cheap, stable across runs, and collision-resistant enough for
/// sweep-shaped point counts.
pub fn scenario_fingerprint(s: &Scenario) -> u64 {
    versioned_fingerprint(
        &encode_scenario(s),
        cocoa_sim::snapshot::SNAPSHOT_SCHEMA_VERSION,
    )
}

/// A 64-bit fingerprint of only the scenario's *setup-feeding* fields
/// (see [`SimRun::warm_fork`] for the list), version-prefixed like
/// [`scenario_fingerprint`].
///
/// Two scenarios with equal warm fingerprints share calibration tables,
/// radial constraint tables and the time-zero snapshot: any of them can
/// be served by forking the same [`WarmArtifacts`]. Schedule-side
/// fields (beacon period, windowing, faults, duration…) deliberately do
/// not participate.
pub fn warm_fingerprint(s: &Scenario) -> u64 {
    versioned_fingerprint(
        &encode_scenario_immutable(s),
        cocoa_sim::snapshot::SNAPSHOT_SCHEMA_VERSION,
    )
}

fn decode_scenario(r: &mut SnapshotReader<'_>) -> Result<Scenario, SnapshotError> {
    let seed = r.u64()?;
    let area = Area {
        x_min: r.f64()?,
        x_max: r.f64()?,
        y_min: r.f64()?,
        y_max: r.f64()?,
    };
    let num_robots = r.usize_()?;
    let num_equipped = r.usize_()?;
    let duration = read_dur(r)?;
    let beacon_period = read_dur(r)?;
    let transmit_window = read_dur(r)?;
    let beacons_per_window = r.u32()?;
    let v_min = r.f64()?;
    let v_max = r.f64()?;
    let mode = match r.u8()? {
        0 => EstimatorMode::OdometryOnly,
        1 => EstimatorMode::RfOnly,
        2 => EstimatorMode::Cocoa,
        t => return Err(bad_tag("estimator mode", t)),
    };
    let rf_algorithm = match r.u8()? {
        0 => RfAlgorithm::Bayes,
        1 => RfAlgorithm::Multilateration,
        2 => RfAlgorithm::Ekf,
        t => return Err(bad_tag("rf algorithm", t)),
    };
    let coordination = r.bool()?;
    let grid_resolution_m = r.f64()?;
    let channel = read_channel(r)?;
    let energy = read_energy(r)?;
    let odometry = OdometryConfig {
        displacement_sigma: r.f64()?,
        angular_sigma: r.f64()?,
        heading_drift_sigma: r.f64()?,
    };
    let mesh_mode = match r.u8()? {
        0 => MeshMode::Odmrp,
        1 => MeshMode::Mrmm,
        t => return Err(bad_tag("mesh mode", t)),
    };
    let mesh = OdmrpConfig {
        mode: mesh_mode,
        max_hops: r.u8()?,
        fg_timeout: read_dur(r)?,
        reply_delay: read_dur(r)?,
        rebroadcast_jitter: read_dur(r)?,
        range_m: r.f64()?,
        lifetime_horizon_s: r.f64()?,
        prune: cocoa_multicast::mrmm::PruneConfig {
            min_lifetime_s: r.f64()?,
            redundancy_threshold: r.u32()?,
        },
        dedup_retention: read_dur(r)?,
    };
    let multicast = match r.u8()? {
        0 => MulticastProtocol::Flood,
        1 => MulticastProtocol::Odmrp,
        2 => MulticastProtocol::Mrmm,
        t => return Err(bad_tag("multicast protocol", t)),
    };
    let sync_enabled = r.bool()?;
    let clock_skew_ppm = r.f64()?;
    let guard_band = read_dur(r)?;
    let tick = read_dur(r)?;
    let metrics_interval = read_dur(r)?;
    let snapshot_times = read_vec(r, read_time)?;
    let packet_loss = r.f64()?;
    let relay_beaconing = r.bool()?;
    let relay_max_fix_age_windows = r.u64()?;
    let fault_events = read_vec(r, |r| Ok((read_time(r)?, read_fault(r)?)))?;
    let mut faults = FaultPlan::new();
    for (at, fault) in fault_events {
        faults.schedule(at, fault);
    }
    let failover_missed_periods = r.u32()?;
    let entropy_watchdog_frac = r.f64()?;
    let outlier_gate_m = r.f64()?;
    let grid_pipeline = GridPipeline {
        kernel: match r.u8()? {
            0 => GridKernel::Scalar,
            1 => GridKernel::Simd,
            t => return Err(bad_tag("grid kernel", t)),
        },
        precision: match r.u8()? {
            0 => GridPrecision::F64,
            1 => GridPrecision::F32,
            t => return Err(bad_tag("grid precision", t)),
        },
        fused: r.bool()?,
        adaptive: r.bool()?,
        adaptive_coarse_factor: r.u32()?,
        adaptive_refine_factor: r.f64()?,
    };
    Ok(Scenario {
        seed,
        area,
        num_robots,
        num_equipped,
        duration,
        beacon_period,
        transmit_window,
        beacons_per_window,
        v_min,
        v_max,
        mode,
        rf_algorithm,
        coordination,
        grid_resolution_m,
        channel,
        energy,
        odometry,
        mesh,
        multicast,
        sync_enabled,
        clock_skew_ppm,
        guard_band,
        tick,
        metrics_interval,
        snapshot_times,
        packet_loss,
        relay_beaconing,
        relay_max_fix_age_windows,
        faults,
        failover_missed_periods,
        entropy_watchdog_frac,
        outlier_gate_m,
        grid_pipeline,
    })
}

// ---------------------------------------------------------------------------
// Engine section (clock + pending event queue).
// ---------------------------------------------------------------------------

fn put_packet(buf: &mut Vec<u8>, p: &Packet) {
    put_bytes(buf, &p.encode());
}

fn read_packet(r: &mut SnapshotReader<'_>) -> Result<Packet, SnapshotError> {
    let raw = r.bytes()?;
    Packet::decode(Bytes::from(raw))
        .map_err(|e| malformed(format!("undecodable packet in snapshot: {e:?}")))
}

fn put_event(buf: &mut Vec<u8>, e: &Event) {
    match e {
        Event::MoveTick => put_u8(buf, 0),
        Event::MetricsSample => put_u8(buf, 1),
        Event::WindowStart { index } => {
            put_u8(buf, 2);
            put_u64(buf, *index);
        }
        Event::RobotWake {
            robot,
            window,
            epoch,
        } => {
            put_u8(buf, 3);
            put_usize(buf, *robot);
            put_u64(buf, *window);
            put_u32(buf, *epoch);
        }
        Event::RobotWindowEnd {
            robot,
            window,
            epoch,
        } => {
            put_u8(buf, 4);
            put_usize(buf, *robot);
            put_u64(buf, *window);
            put_u32(buf, *epoch);
        }
        Event::Transmit { robot, intent } => {
            put_u8(buf, 5);
            put_usize(buf, *robot);
            match intent {
                TxIntent::Beacon => put_u8(buf, 0),
                TxIntent::Mesh(packet) => {
                    put_u8(buf, 1);
                    put_packet(buf, packet);
                }
            }
        }
        Event::TxEnd { tx, receivers } => {
            put_u8(buf, 6);
            put_u64(buf, tx.raw());
            put_vec(buf, receivers, |b, &i| put_usize(b, i));
        }
        Event::MeshReply { robot, source } => {
            put_u8(buf, 7);
            put_usize(buf, *robot);
            put_u32(buf, source.0);
        }
        Event::MeshRebroadcast { robot, source, seq } => {
            put_u8(buf, 8);
            put_usize(buf, *robot);
            put_u32(buf, source.0);
            put_u32(buf, *seq);
        }
        Event::MediumGc => put_u8(buf, 9),
        Event::Snapshot { index } => {
            put_u8(buf, 10);
            put_usize(buf, *index);
        }
        Event::Fault(f) => {
            put_u8(buf, 11);
            put_fault(buf, f);
        }
    }
}

fn read_event(r: &mut SnapshotReader<'_>) -> Result<Event, SnapshotError> {
    Ok(match r.u8()? {
        0 => Event::MoveTick,
        1 => Event::MetricsSample,
        2 => Event::WindowStart { index: r.u64()? },
        3 => Event::RobotWake {
            robot: r.usize_()?,
            window: r.u64()?,
            epoch: r.u32()?,
        },
        4 => Event::RobotWindowEnd {
            robot: r.usize_()?,
            window: r.u64()?,
            epoch: r.u32()?,
        },
        5 => {
            let robot = r.usize_()?;
            let intent = match r.u8()? {
                0 => TxIntent::Beacon,
                1 => TxIntent::Mesh(read_packet(r)?),
                t => return Err(bad_tag("tx intent", t)),
            };
            Event::Transmit { robot, intent }
        }
        6 => Event::TxEnd {
            tx: TxId::from_raw(r.u64()?),
            receivers: read_vec(r, |r| r.usize_())?,
        },
        7 => Event::MeshReply {
            robot: r.usize_()?,
            source: NodeId(r.u32()?),
        },
        8 => Event::MeshRebroadcast {
            robot: r.usize_()?,
            source: NodeId(r.u32()?),
            seq: r.u32()?,
        },
        9 => Event::MediumGc,
        10 => Event::Snapshot { index: r.usize_()? },
        11 => Event::Fault(read_fault(r)?),
        t => return Err(bad_tag("event", t)),
    })
}

struct EngineParts {
    now: SimTime,
    horizon: SimTime,
    stopped: bool,
    processed: u64,
    next_seq: u64,
    peak_len: usize,
    events: Vec<(SimTime, u64, Event)>,
}

fn encode_engine(parts: &EngineParts) -> Vec<u8> {
    let mut buf = Vec::new();
    put_time(&mut buf, parts.now);
    put_time(&mut buf, parts.horizon);
    put_bool(&mut buf, parts.stopped);
    put_u64(&mut buf, parts.processed);
    put_u64(&mut buf, parts.next_seq);
    put_usize(&mut buf, parts.peak_len);
    put_vec(&mut buf, &parts.events, |b, (t, seq, e)| {
        put_time(b, *t);
        put_u64(b, *seq);
        put_event(b, e);
    });
    buf
}

fn decode_engine(r: &mut SnapshotReader<'_>) -> Result<EngineParts, SnapshotError> {
    let now = read_time(r)?;
    let horizon = read_time(r)?;
    let stopped = r.bool()?;
    let processed = r.u64()?;
    let next_seq = r.u64()?;
    let peak_len = r.usize_()?;
    let events = read_vec(r, |r| Ok((read_time(r)?, r.u64()?, read_event(r)?)))?;
    // Pre-validate what `EventQueue::from_parts` would otherwise assert,
    // so a corrupt section surfaces as a typed error rather than a panic.
    if peak_len < events.len() {
        return Err(malformed(format!(
            "queue peak_len {peak_len} below pending count {}",
            events.len()
        )));
    }
    for &(t, seq, _) in &events {
        if seq >= next_seq {
            return Err(malformed(format!(
                "queued event seq {seq} not below next_seq {next_seq}"
            )));
        }
        if t < now {
            return Err(malformed(format!(
                "queued event at {t} is before the engine clock {now}"
            )));
        }
    }
    Ok(EngineParts {
        now,
        horizon,
        stopped,
        processed,
        next_seq,
        peak_len,
        events,
    })
}

// ---------------------------------------------------------------------------
// Medium section.
// ---------------------------------------------------------------------------

fn encode_medium(state: &MediumState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_f64(&mut buf, state.capture_margin_db);
    put_dur(&mut buf, state.retention);
    put_u64(&mut buf, state.next_id);
    put_u64(&mut buf, state.total_tx);
    put_u64(&mut buf, state.total_collisions);
    put_u64(&mut buf, state.total_half_duplex);
    put_vec(&mut buf, &state.active, |b, tx| {
        put_u64(b, tx.id.raw());
        put_u32(b, tx.src.0);
        put_point(b, tx.src_pos);
        put_time(b, tx.start);
        put_time(b, tx.end);
        put_packet(b, &tx.packet);
    });
    put_vec(&mut buf, &state.rssi, |b, &(tx, rx, dbm)| {
        put_u64(b, tx.raw());
        put_u32(b, rx.0);
        put_f64(b, dbm.0);
    });
    buf
}

fn decode_medium(r: &mut SnapshotReader<'_>) -> Result<MediumState, SnapshotError> {
    Ok(MediumState {
        capture_margin_db: r.f64()?,
        retention: read_dur(r)?,
        next_id: r.u64()?,
        total_tx: r.u64()?,
        total_collisions: r.u64()?,
        total_half_duplex: r.u64()?,
        active: read_vec(r, |r| {
            Ok(ActiveTxState {
                id: TxId::from_raw(r.u64()?),
                src: NodeId(r.u32()?),
                src_pos: read_point(r)?,
                start: read_time(r)?,
                end: read_time(r)?,
                packet: read_packet(r)?,
            })
        })?,
        rssi: read_vec(r, |r| {
            Ok((TxId::from_raw(r.u64()?), NodeId(r.u32()?), Dbm(r.f64()?)))
        })?,
    })
}

// ---------------------------------------------------------------------------
// Robots section.
// ---------------------------------------------------------------------------

/// Writes the v4 estimator section: the lifecycle header shared by every
/// backend, then a backend tag and the tagged solver payload (mirroring
/// [`BackendCheckpoint`]).
fn put_estimator(buf: &mut Vec<u8>, c: &EstimatorCheckpoint) {
    put_u8(
        buf,
        match c.algorithm() {
            RfAlgorithm::Bayes => 0,
            RfAlgorithm::Multilateration => 1,
            RfAlgorithm::Ekf => 2,
        },
    );
    put_opt(buf, c.last_fix, put_point);
    put_bool(buf, c.in_window);
    put_u32(buf, c.stats.windows);
    put_u32(buf, c.stats.fixes);
    put_u32(buf, c.stats.flat_windows);
    put_u64(buf, c.stats.beacons_seen);
    put_u64(buf, c.stats.beacons_applied);
    put_u64(buf, c.stats.beacons_rejected_outlier);
    match &c.backend {
        BackendCheckpoint::Bayes {
            posterior_cells,
            adaptive_tiles,
            pending,
            grid_stats,
            beacons_applied,
            beacons_seen,
        } => {
            put_vec(buf, posterior_cells, |b, &p| put_f64(b, p));
            put_u32(buf, *beacons_applied);
            put_u32(buf, *beacons_seen);
            put_vec(buf, adaptive_tiles, |b, tile| match tile {
                Tile::Coarse(mass) => {
                    put_u8(b, 0);
                    put_f64(b, *mass);
                }
                Tile::Refined(cells) => {
                    put_u8(b, 1);
                    put_vec(b, cells, |b, &m| put_f64(b, m));
                }
            });
            put_vec(buf, pending, |b, &(anchor, bin)| {
                put_point(b, anchor);
                put_u32(b, bin.0 as u16 as u32);
            });
            put_u64(buf, grid_stats.kernel_scalar);
            put_u64(buf, grid_stats.kernel_simd);
            put_u64(buf, grid_stats.kernel_simd_f32);
            put_u64(buf, grid_stats.kernel_fused);
            put_u64(buf, grid_stats.kernel_adaptive);
            put_u64(buf, grid_stats.fused_windows);
            put_u64(buf, grid_stats.cells_touched);
            put_u64(buf, grid_stats.cells_refined);
        }
        BackendCheckpoint::Lateration { ranges } => {
            put_vec(buf, ranges, |b, obs| {
                put_point(b, obs.anchor);
                put_f64(b, obs.range);
                put_f64(b, obs.weight);
            });
        }
        BackendCheckpoint::Ekf {
            filter,
            window_applied,
            last_odo,
        } => {
            put_f64(buf, filter.x);
            put_f64(buf, filter.y);
            put_f64(buf, filter.p11);
            put_f64(buf, filter.p12);
            put_f64(buf, filter.p22);
            put_u64(buf, filter.updates_applied);
            put_u64(buf, filter.updates_gated);
            put_u32(buf, filter.consecutive_gated);
            put_u32(buf, *window_applied);
            put_opt(buf, *last_odo, put_point);
        }
    }
}

fn read_estimator(r: &mut SnapshotReader<'_>) -> Result<EstimatorCheckpoint, SnapshotError> {
    let algorithm = match r.u8()? {
        0 => RfAlgorithm::Bayes,
        1 => RfAlgorithm::Multilateration,
        2 => RfAlgorithm::Ekf,
        t => return Err(bad_tag("rf algorithm", t)),
    };
    let last_fix = read_opt(r, read_point)?;
    let in_window = r.bool()?;
    let stats = WindowStats {
        windows: r.u32()?,
        fixes: r.u32()?,
        flat_windows: r.u32()?,
        beacons_seen: r.u64()?,
        beacons_applied: r.u64()?,
        beacons_rejected_outlier: r.u64()?,
    };
    let backend = match algorithm {
        RfAlgorithm::Bayes => {
            let posterior_cells = read_vec(r, |r| r.f64())?;
            let beacons_applied = r.u32()?;
            let beacons_seen = r.u32()?;
            let adaptive_tiles = read_vec(r, |r| match r.u8()? {
                0 => Ok(Tile::Coarse(r.f64()?)),
                1 => Ok(Tile::Refined(read_vec(r, |r| r.f64())?)),
                t => Err(bad_tag("adaptive tile", t)),
            })?;
            let pending = read_vec(r, |r| {
                let anchor = read_point(r)?;
                let bin = RssiBin(r.u32()? as u16 as i16);
                Ok((anchor, bin))
            })?;
            let grid_stats = GridStats {
                kernel_scalar: r.u64()?,
                kernel_simd: r.u64()?,
                kernel_simd_f32: r.u64()?,
                kernel_fused: r.u64()?,
                kernel_adaptive: r.u64()?,
                fused_windows: r.u64()?,
                cells_touched: r.u64()?,
                cells_refined: r.u64()?,
            };
            BackendCheckpoint::Bayes {
                posterior_cells,
                adaptive_tiles,
                pending,
                grid_stats,
                beacons_applied,
                beacons_seen,
            }
        }
        RfAlgorithm::Multilateration => BackendCheckpoint::Lateration {
            ranges: read_vec(r, |r| {
                Ok(RangeObservation {
                    anchor: read_point(r)?,
                    range: r.f64()?,
                    weight: r.f64()?,
                })
            })?,
        },
        RfAlgorithm::Ekf => BackendCheckpoint::Ekf {
            filter: EkfSnapshot {
                x: r.f64()?,
                y: r.f64()?,
                p11: r.f64()?,
                p12: r.f64()?,
                p22: r.f64()?,
                updates_applied: r.u64()?,
                updates_gated: r.u64()?,
                consecutive_gated: r.u32()?,
            },
            window_applied: r.u32()?,
            last_odo: read_opt(r, read_point)?,
        },
    };
    Ok(EstimatorCheckpoint {
        last_fix,
        in_window,
        stats,
        backend,
    })
}

fn put_radio(buf: &mut Vec<u8>, c: &RadioCheckpoint) {
    put_energy(buf, &c.params);
    put_u64(buf, c.bitrate_bps);
    put_u8(
        buf,
        match c.state {
            PowerState::Off => 0,
            PowerState::Sleep => 1,
            PowerState::Idle => 2,
        },
    );
    put_time(buf, c.since);
    put_f64(buf, c.ledger.tx_uj);
    put_f64(buf, c.ledger.rx_uj);
    put_f64(buf, c.ledger.idle_uj);
    put_f64(buf, c.ledger.sleep_uj);
    put_f64(buf, c.ledger.wake_uj);
    put_u32(buf, c.wakes);
    put_u32(buf, c.packets_sent);
    put_u32(buf, c.packets_received);
}

fn read_radio(r: &mut SnapshotReader<'_>) -> Result<RadioCheckpoint, SnapshotError> {
    Ok(RadioCheckpoint {
        params: read_energy(r)?,
        bitrate_bps: r.u64()?,
        state: match r.u8()? {
            0 => PowerState::Off,
            1 => PowerState::Sleep,
            2 => PowerState::Idle,
            t => return Err(bad_tag("power state", t)),
        },
        since: read_time(r)?,
        ledger: EnergyLedger {
            tx_uj: r.f64()?,
            rx_uj: r.f64()?,
            idle_uj: r.f64()?,
            sleep_uj: r.f64()?,
            wake_uj: r.f64()?,
        },
        wakes: r.u32()?,
        packets_sent: r.u32()?,
        packets_received: r.u32()?,
    })
}

fn put_health_state(buf: &mut Vec<u8>, s: DegradationState) {
    put_u8(
        buf,
        match s {
            DegradationState::Healthy => 0,
            DegradationState::Degraded => 1,
            DegradationState::DeadReckoning => 2,
            DegradationState::Down => 3,
        },
    );
}

fn read_health_state(r: &mut SnapshotReader<'_>) -> Result<DegradationState, SnapshotError> {
    Ok(match r.u8()? {
        0 => DegradationState::Healthy,
        1 => DegradationState::Degraded,
        2 => DegradationState::DeadReckoning,
        3 => DegradationState::Down,
        t => return Err(bad_tag("degradation state", t)),
    })
}

fn encode_robots(robots: &[Robot]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_usize(&mut buf, robots.len());
    for robot in robots {
        put_bool(&mut buf, robot.alive);
        put_bool(&mut buf, robot.equipped);
        put_u32(&mut buf, robot.epoch);
        put_bool(&mut buf, robot.has_fix);
        put_opt(&mut buf, robot.last_fix_window, put_u64);
        put_bool(&mut buf, robot.synced_this_window);
        put_bool(&mut buf, robot.garbled_tx);
        put_opt(&mut buf, robot.beacon_offset, |b, (dx, dy)| {
            put_f64(b, dx);
            put_f64(b, dy);
        });
        put_opt(&mut buf, robot.fix_anchor, |b, a| {
            put_point(b, a.fix);
            put_point(b, a.odo_at_fix);
        });
        let wc = robot.motion.waypoints().checkpoint();
        put_f64(&mut buf, wc.config.area.x_min);
        put_f64(&mut buf, wc.config.area.x_max);
        put_f64(&mut buf, wc.config.area.y_min);
        put_f64(&mut buf, wc.config.area.y_max);
        put_f64(&mut buf, wc.config.v_min);
        put_f64(&mut buf, wc.config.v_max);
        put_pose(&mut buf, wc.pose);
        put_point(&mut buf, wc.destination);
        put_f64(&mut buf, wc.speed);
        put_u64(&mut buf, wc.legs_completed);
        let oc = robot.motion.odometer().checkpoint();
        put_f64(&mut buf, oc.config.displacement_sigma);
        put_f64(&mut buf, oc.config.angular_sigma);
        put_f64(&mut buf, oc.config.heading_drift_sigma);
        put_pose(&mut buf, oc.estimate);
        put_f64(&mut buf, oc.distance_integrated);
        put_u64(&mut buf, oc.observations);
        put_radio(&mut buf, &robot.radio.checkpoint());
        let (skew, error_s, anchor, missed, stale) = robot.clock.checkpoint();
        put_f64(&mut buf, skew);
        put_f64(&mut buf, error_s);
        put_time(&mut buf, anchor);
        put_u32(&mut buf, missed);
        put_u32(&mut buf, stale);
        let (hstate, hsince, hledger) = robot.health.checkpoint();
        put_health_state(&mut buf, hstate);
        put_time(&mut buf, hsince);
        put_f64(&mut buf, hledger.healthy_s);
        put_f64(&mut buf, hledger.degraded_s);
        put_f64(&mut buf, hledger.dead_reckoning_s);
        put_f64(&mut buf, hledger.down_s);
        put_opt(
            &mut buf,
            robot.rf.as_ref().map(|rf| rf.checkpoint()),
            |b, c| put_estimator(b, &c),
        );
        put_bytes(&mut buf, &robot.mesh.save_state());
    }
    buf
}

fn decode_robots(
    r: &mut SnapshotReader<'_>,
    scenario: &Scenario,
) -> Result<Vec<Robot>, SnapshotError> {
    let n = r.usize_()?;
    if n != scenario.num_robots {
        return Err(malformed(format!(
            "snapshot holds {n} robots but the scenario declares {}",
            scenario.num_robots
        )));
    }
    let grid = GridConfig::new(scenario.area, scenario.grid_resolution_m);
    let mut robots = Vec::with_capacity(n.min(CAP_GUARD));
    for i in 0..n {
        let alive = r.bool()?;
        let equipped = r.bool()?;
        let epoch = r.u32()?;
        let has_fix = r.bool()?;
        let last_fix_window = read_opt(r, |r| r.u64())?;
        let synced_this_window = r.bool()?;
        let garbled_tx = r.bool()?;
        let beacon_offset = read_opt(r, |r| Ok((r.f64()?, r.f64()?)))?;
        let fix_anchor = read_opt(r, |r| {
            Ok(FixAnchor {
                fix: read_point(r)?,
                odo_at_fix: read_point(r)?,
            })
        })?;
        let waypoints = WaypointModel::from_checkpoint(WaypointCheckpoint {
            config: WaypointConfig {
                area: Area {
                    x_min: r.f64()?,
                    x_max: r.f64()?,
                    y_min: r.f64()?,
                    y_max: r.f64()?,
                },
                v_min: r.f64()?,
                v_max: r.f64()?,
            },
            pose: read_pose(r)?,
            destination: read_point(r)?,
            speed: r.f64()?,
            legs_completed: r.u64()?,
        });
        let odometer = Odometer::from_checkpoint(OdometerCheckpoint {
            config: OdometryConfig {
                displacement_sigma: r.f64()?,
                angular_sigma: r.f64()?,
                heading_drift_sigma: r.f64()?,
            },
            estimate: read_pose(r)?,
            distance_integrated: r.f64()?,
            observations: r.u64()?,
        });
        let radio = Radio::from_checkpoint(read_radio(r)?);
        let clock = {
            let skew = r.f64()?;
            let error_s = r.f64()?;
            let anchor = read_time(r)?;
            let missed = r.u32()?;
            let stale = r.u32()?;
            DriftingClock::from_checkpoint(skew, error_s, anchor, missed, stale)
        };
        let health = {
            let state = read_health_state(r)?;
            let since = read_time(r)?;
            let ledger = HealthLedger {
                healthy_s: r.f64()?,
                degraded_s: r.f64()?,
                dead_reckoning_s: r.f64()?,
                down_s: r.f64()?,
            };
            HealthMonitor::from_checkpoint(state, since, ledger)
        };
        let rf = read_opt(r, read_estimator)?
            .map(|c| WindowedRfEstimator::from_checkpoint_with(grid, scenario.grid_pipeline, c));
        let mesh_bytes = r.bytes()?;
        let mut mesh = mesh::make_backend(
            scenario.multicast,
            NodeId(i as u32),
            SYNC_GROUP,
            true,
            scenario.mesh,
        );
        mesh.load_state(mesh_bytes)?;
        robots.push(Robot {
            id: NodeId(i as u32),
            index: i,
            equipped,
            motion: RobotMotion::from_parts(waypoints, odometer),
            radio,
            rf,
            mesh,
            clock,
            has_fix,
            last_fix_window,
            synced_this_window,
            fix_anchor,
            alive,
            epoch,
            garbled_tx,
            beacon_offset,
            health,
        });
    }
    Ok(robots)
}

// ---------------------------------------------------------------------------
// World section (accumulators, fault overlays).
// ---------------------------------------------------------------------------

fn encode_world(world: &WorldState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_usize(&mut buf, world.sync_robot);
    put_u32(&mut buf, world.sync_dead_windows);
    put_dur(&mut buf, world.max_guard);
    put_opt(&mut buf, world.next_robot_sample, put_time);
    let t = &world.traffic;
    for v in [
        t.beacons_sent,
        t.beacons_received,
        t.collisions,
        t.syncs_delivered,
        t.syncs_missed,
        t.fixes,
        t.starved_windows,
    ] {
        put_u64(&mut buf, v);
    }
    let ro = &world.robustness;
    for v in [
        ro.crashes,
        ro.reboots,
        ro.failovers,
        ro.burst_losses,
        ro.corrupt_frames_dropped,
        ro.garbled_frames_delivered,
        ro.outlier_beacons_rejected,
        ro.flat_posteriors,
        ro.stale_syncs_ignored,
        ro.malformed_sync_bodies,
    ] {
        put_u64(&mut buf, v);
    }
    put_vec(&mut buf, &world.error_series, |b, p| {
        put_f64(b, p.t_s);
        put_f64(b, p.mean_error_m);
        put_usize(b, p.robots);
    });
    put_vec(&mut buf, &world.snapshots, |b, s| {
        put_time(b, s.time);
        put_vec(b, &s.errors_m, |b, &e| put_f64(b, e));
    });
    put_vec(&mut buf, &world.position_snapshots, |b, (t, states)| {
        put_time(b, *t);
        put_vec(b, states, |b, s| {
            put_point(b, s.true_position);
            put_point(b, s.estimate);
            put_bool(b, s.equipped);
        });
    });
    put_opt(&mut buf, world.burst.as_deref(), |b, links| {
        put_vec(b, links, |b, link| {
            put_gilbert(b, &link.model());
            put_bool(b, link.in_bad());
        });
    });
    let mut corrupt: Vec<u64> = world.corrupt_txs.iter().map(|tx| tx.raw()).collect();
    corrupt.sort_unstable();
    put_vec(&mut buf, &corrupt, |b, &v| put_u64(b, v));
    buf
}

struct WorldExtras {
    sync_robot: usize,
    sync_dead_windows: u32,
    max_guard: SimDuration,
    next_robot_sample: Option<SimTime>,
    traffic: TrafficStats,
    robustness: RobustnessStats,
    error_series: Vec<ErrorPoint>,
    snapshots: Vec<ErrorSnapshot>,
    position_snapshots: Vec<(SimTime, Vec<RobotFinalState>)>,
    burst: Option<Vec<GilbertElliottLink>>,
    corrupt_txs: std::collections::HashSet<TxId>,
}

fn decode_world(r: &mut SnapshotReader<'_>) -> Result<WorldExtras, SnapshotError> {
    let sync_robot = r.usize_()?;
    let sync_dead_windows = r.u32()?;
    let max_guard = read_dur(r)?;
    let next_robot_sample = read_opt(r, read_time)?;
    let traffic = TrafficStats {
        beacons_sent: r.u64()?,
        beacons_received: r.u64()?,
        collisions: r.u64()?,
        syncs_delivered: r.u64()?,
        syncs_missed: r.u64()?,
        fixes: r.u64()?,
        starved_windows: r.u64()?,
    };
    let robustness = RobustnessStats {
        crashes: r.u64()?,
        reboots: r.u64()?,
        failovers: r.u64()?,
        burst_losses: r.u64()?,
        corrupt_frames_dropped: r.u64()?,
        garbled_frames_delivered: r.u64()?,
        outlier_beacons_rejected: r.u64()?,
        flat_posteriors: r.u64()?,
        stale_syncs_ignored: r.u64()?,
        malformed_sync_bodies: r.u64()?,
    };
    let error_series = read_vec(r, |r| {
        Ok(ErrorPoint {
            t_s: r.f64()?,
            mean_error_m: r.f64()?,
            robots: r.usize_()?,
        })
    })?;
    let snapshots = read_vec(r, |r| {
        Ok(ErrorSnapshot {
            time: read_time(r)?,
            // Written from an `ErrorSnapshot`, so already sorted; the
            // struct literal skips the re-sort of `ErrorSnapshot::new`.
            errors_m: read_vec(r, |r| r.f64())?,
        })
    })?;
    let position_snapshots = read_vec(r, |r| {
        Ok((
            read_time(r)?,
            read_vec(r, |r| {
                Ok(RobotFinalState {
                    true_position: read_point(r)?,
                    estimate: read_point(r)?,
                    equipped: r.bool()?,
                })
            })?,
        ))
    })?;
    let burst = read_opt(r, |r| {
        read_vec(r, |r| {
            let model = read_gilbert(r)?;
            let in_bad = r.bool()?;
            Ok(GilbertElliottLink::with_state(model, in_bad))
        })
    })?;
    let corrupt_txs = read_vec(r, |r| Ok(TxId::from_raw(r.u64()?)))?
        .into_iter()
        .collect();
    Ok(WorldExtras {
        sync_robot,
        sync_dead_windows,
        max_guard,
        next_robot_sample,
        traffic,
        robustness,
        error_series,
        snapshots,
        position_snapshots,
        burst,
        corrupt_txs,
    })
}

// ---------------------------------------------------------------------------
// Telemetry section.
// ---------------------------------------------------------------------------

fn put_telemetry_event(buf: &mut Vec<u8>, e: &TelemetryEvent) {
    match e {
        TelemetryEvent::WindowStart { window } => {
            put_u8(buf, 0);
            put_u64(buf, *window);
        }
        TelemetryEvent::BeaconTx { robot, x_m, y_m } => {
            put_u8(buf, 1);
            put_u32(buf, *robot);
            put_f64(buf, *x_m);
            put_f64(buf, *y_m);
        }
        TelemetryEvent::BeaconRx {
            robot,
            from,
            rssi_dbm,
            outcome,
        } => {
            put_u8(buf, 2);
            put_u32(buf, *robot);
            put_u32(buf, *from);
            put_f64(buf, *rssi_dbm);
            put_str(buf, outcome);
        }
        TelemetryEvent::GridUpdate { robot } => {
            put_u8(buf, 3);
            put_u32(buf, *robot);
        }
        TelemetryEvent::Fix {
            robot,
            window,
            x_m,
            y_m,
            err_m,
        } => {
            put_u8(buf, 4);
            put_u32(buf, *robot);
            put_u64(buf, *window);
            put_f64(buf, *x_m);
            put_f64(buf, *y_m);
            put_f64(buf, *err_m);
        }
        TelemetryEvent::FlatPosterior {
            robot,
            window,
            entropy,
            threshold,
        } => {
            put_u8(buf, 5);
            put_u32(buf, *robot);
            put_u64(buf, *window);
            put_f64(buf, *entropy);
            put_f64(buf, *threshold);
        }
        TelemetryEvent::StarvedWindow { robot, window } => {
            put_u8(buf, 6);
            put_u32(buf, *robot);
            put_u64(buf, *window);
        }
        TelemetryEvent::SyncDelivered { robot, window } => {
            put_u8(buf, 7);
            put_u32(buf, *robot);
            put_u64(buf, *window);
        }
        TelemetryEvent::SyncMissed { robot, window } => {
            put_u8(buf, 8);
            put_u32(buf, *robot);
            put_u64(buf, *window);
        }
        TelemetryEvent::Failover { new_sync } => {
            put_u8(buf, 9);
            put_u32(buf, *new_sync);
        }
        TelemetryEvent::MeshPrune { robot, source, seq } => {
            put_u8(buf, 10);
            put_u32(buf, *robot);
            put_u32(buf, *source);
            put_u32(buf, *seq);
        }
        TelemetryEvent::RadioState { robot, state } => {
            put_u8(buf, 11);
            put_u32(buf, *robot);
            put_str(buf, state);
        }
        TelemetryEvent::FaultInjected { kind, robot } => {
            put_u8(buf, 12);
            put_str(buf, kind);
            put_opt(buf, *robot, put_u32);
        }
        TelemetryEvent::HealthTransition { robot, state } => {
            put_u8(buf, 13);
            put_u32(buf, *robot);
            put_str(buf, state);
        }
        TelemetryEvent::RobotSample {
            robot,
            true_x_m,
            true_y_m,
            est_x_m,
            est_y_m,
            err_m,
            entropy_frac,
            energy_j,
            radio,
            health,
        } => {
            put_u8(buf, 14);
            put_u32(buf, *robot);
            put_f64(buf, *true_x_m);
            put_f64(buf, *true_y_m);
            put_f64(buf, *est_x_m);
            put_f64(buf, *est_y_m);
            put_f64(buf, *err_m);
            put_opt(buf, *entropy_frac, put_f64);
            put_f64(buf, *energy_j);
            put_str(buf, radio);
            put_str(buf, health);
        }
        TelemetryEvent::TeamSample {
            mean_err_m,
            robots,
            energy_j,
        } => {
            put_u8(buf, 15);
            put_f64(buf, *mean_err_m);
            put_u32(buf, *robots);
            put_f64(buf, *energy_j);
        }
        TelemetryEvent::SnapshotTaken { bytes, sections } => {
            put_u8(buf, 16);
            put_u64(buf, *bytes);
            put_u32(buf, *sections);
        }
        TelemetryEvent::SnapshotRestored { bytes } => {
            put_u8(buf, 17);
            put_u64(buf, *bytes);
        }
        TelemetryEvent::Legacy {
            level,
            subsystem,
            message,
        } => {
            put_u8(buf, 18);
            put_u8(
                buf,
                match level {
                    TraceLevel::Debug => 0,
                    TraceLevel::Info => 1,
                    TraceLevel::Warn => 2,
                },
            );
            put_str(buf, subsystem);
            put_str(buf, message);
        }
    }
}

fn read_telemetry_event(r: &mut SnapshotReader<'_>) -> Result<TelemetryEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => TelemetryEvent::WindowStart { window: r.u64()? },
        1 => TelemetryEvent::BeaconTx {
            robot: r.u32()?,
            x_m: r.f64()?,
            y_m: r.f64()?,
        },
        2 => TelemetryEvent::BeaconRx {
            robot: r.u32()?,
            from: r.u32()?,
            rssi_dbm: r.f64()?,
            outcome: intern(r.str_()?),
        },
        3 => TelemetryEvent::GridUpdate { robot: r.u32()? },
        4 => TelemetryEvent::Fix {
            robot: r.u32()?,
            window: r.u64()?,
            x_m: r.f64()?,
            y_m: r.f64()?,
            err_m: r.f64()?,
        },
        5 => TelemetryEvent::FlatPosterior {
            robot: r.u32()?,
            window: r.u64()?,
            entropy: r.f64()?,
            threshold: r.f64()?,
        },
        6 => TelemetryEvent::StarvedWindow {
            robot: r.u32()?,
            window: r.u64()?,
        },
        7 => TelemetryEvent::SyncDelivered {
            robot: r.u32()?,
            window: r.u64()?,
        },
        8 => TelemetryEvent::SyncMissed {
            robot: r.u32()?,
            window: r.u64()?,
        },
        9 => TelemetryEvent::Failover { new_sync: r.u32()? },
        10 => TelemetryEvent::MeshPrune {
            robot: r.u32()?,
            source: r.u32()?,
            seq: r.u32()?,
        },
        11 => TelemetryEvent::RadioState {
            robot: r.u32()?,
            state: intern(r.str_()?),
        },
        12 => TelemetryEvent::FaultInjected {
            kind: intern(r.str_()?),
            robot: read_opt(r, |r| r.u32())?,
        },
        13 => TelemetryEvent::HealthTransition {
            robot: r.u32()?,
            state: intern(r.str_()?),
        },
        14 => TelemetryEvent::RobotSample {
            robot: r.u32()?,
            true_x_m: r.f64()?,
            true_y_m: r.f64()?,
            est_x_m: r.f64()?,
            est_y_m: r.f64()?,
            err_m: r.f64()?,
            entropy_frac: read_opt(r, |r| r.f64())?,
            energy_j: r.f64()?,
            radio: intern(r.str_()?),
            health: intern(r.str_()?),
        },
        15 => TelemetryEvent::TeamSample {
            mean_err_m: r.f64()?,
            robots: r.u32()?,
            energy_j: r.f64()?,
        },
        16 => TelemetryEvent::SnapshotTaken {
            bytes: r.u64()?,
            sections: r.u32()?,
        },
        17 => TelemetryEvent::SnapshotRestored { bytes: r.u64()? },
        18 => TelemetryEvent::Legacy {
            level: match r.u8()? {
                0 => TraceLevel::Debug,
                1 => TraceLevel::Info,
                2 => TraceLevel::Warn,
                t => return Err(bad_tag("trace level", t)),
            },
            subsystem: intern(r.str_()?),
            message: r.str_()?.to_owned(),
        },
        t => return Err(bad_tag("telemetry event", t)),
    })
}

fn encode_telemetry(t: &Telemetry) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(
        &mut buf,
        match t.level() {
            TelemetryLevel::Off => 0,
            TelemetryLevel::Counters => 1,
            TelemetryLevel::Timeline => 2,
            TelemetryLevel::Full => 3,
        },
    );
    put_opt(&mut buf, t.capacity(), put_usize);
    put_u64(&mut buf, t.events_emitted());
    put_u64(&mut buf, t.dropped_events());
    put_opt(&mut buf, t.sample_interval(), put_dur);
    let events: Vec<&StampedEvent> = t.events().collect();
    put_usize(&mut buf, events.len());
    for e in events {
        put_u64(&mut buf, e.t_us);
        put_u64(&mut buf, e.seq);
        put_telemetry_event(&mut buf, &e.event);
    }
    put_vec(&mut buf, &t.counters().sorted(), |b, &(name, value)| {
        put_str(b, name);
        put_u64(b, value);
    });
    // Deterministic histogram state (wall-clock histograms restart at
    // zero on resume, exactly like span timers).
    put_vec(
        &mut buf,
        &t.histograms().deterministic_sorted(),
        |b, &(name, hist)| {
            put_str(b, name);
            put_hist(b, hist);
        },
    );
    buf
}

fn put_hist(buf: &mut Vec<u8>, h: &Histogram) {
    let snap = h.snapshot();
    put_u64(buf, snap.count);
    put_f64(buf, snap.sum);
    put_f64(buf, snap.min);
    put_f64(buf, snap.max);
    put_vec(buf, &snap.buckets, |b, &(idx, c)| {
        put_u32(b, idx);
        put_u64(b, c);
    });
}

fn read_hist(r: &mut SnapshotReader<'_>) -> Result<Histogram, SnapshotError> {
    let count = r.u64()?;
    let sum = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    let buckets = read_vec(r, |r| Ok((r.u32()?, r.u64()?)))?;
    for &(idx, _) in &buckets {
        if idx as usize >= NUM_BUCKETS {
            return Err(malformed(format!("histogram bucket index {idx}")));
        }
    }
    if sum.is_nan() || min.is_nan() || max.is_nan() {
        return Err(malformed("histogram NaN aggregate"));
    }
    Ok(Histogram::from_snapshot(&HistSnapshot {
        buckets,
        count,
        sum,
        min,
        max,
    }))
}

fn decode_telemetry(r: &mut SnapshotReader<'_>) -> Result<Telemetry, SnapshotError> {
    let level = match r.u8()? {
        0 => TelemetryLevel::Off,
        1 => TelemetryLevel::Counters,
        2 => TelemetryLevel::Timeline,
        3 => TelemetryLevel::Full,
        t => return Err(bad_tag("telemetry level", t)),
    };
    let capacity = read_opt(r, |r| r.usize_())?;
    let seq = r.u64()?;
    let dropped = r.u64()?;
    let sample_interval = read_opt(r, read_dur)?;
    let events = read_vec(r, |r| {
        Ok(StampedEvent {
            t_us: r.u64()?,
            seq: r.u64()?,
            event: read_telemetry_event(r)?,
        })
    })?;
    let counters = read_vec(r, |r| Ok((intern(r.str_()?), r.u64()?)))?;
    let hists = read_vec(r, |r| Ok((intern(r.str_()?), read_hist(r)?)))?;
    Ok(Telemetry::from_checkpoint(TelemetryCheckpoint {
        level,
        capacity,
        seq,
        dropped,
        sample_interval,
        events,
        counters,
        hists,
    }))
}

// ---------------------------------------------------------------------------
// Top-level encode / decode.
// ---------------------------------------------------------------------------

fn encode_all(world: &WorldState, parts: &EngineParts) -> Vec<u8> {
    let mut meta = ObjectWriter::new();
    meta.str_field("kind", "cocoa-run-snapshot")
        .u64_field("t_us", parts.now.as_micros())
        .u64_field("seed", world.scenario.seed)
        .u64_field("robots", world.scenario.num_robots as u64)
        .str_field("multicast", world.scenario.multicast.as_str());
    let mut w = SnapshotWriter::new(meta.finish());
    w.push_section("scenario", encode_scenario(&world.scenario));
    w.push_section("engine", encode_engine(parts));
    let mut rngs = Vec::new();
    put_vec(&mut rngs, &world.move_rngs, put_rng);
    put_vec(&mut rngs, &world.odo_rngs, put_rng);
    put_rng(&mut rngs, &world.channel_rng);
    put_rng(&mut rngs, &world.jitter_rng);
    put_rng(&mut rngs, &world.fault_rng);
    w.push_section("rngs", rngs);
    w.push_section("medium", encode_medium(&world.medium.state()));
    w.push_section("robots", encode_robots(&world.robots));
    w.push_section("world", encode_world(world));
    w.push_section("telemetry", encode_telemetry(&world.telemetry));
    debug_assert_eq!(w.section_count(), SECTIONS.len());
    w.finish()
}

/// Decodes snapshot bytes into a world and engine, ready to run.
///
/// When `tables` is `None` the calibration tables are recomputed from the
/// serialized scenario (deterministic: calibration consumes a dedicated
/// RNG stream derived only from the seed). Warm forks pass precomputed
/// tables instead — skipping calibration is where the sweep speedup
/// comes from.
fn decode(
    bytes: &[u8],
    tables: Option<(PdfTable, RadialConstraintTable)>,
) -> Result<(WorldState, Engine<Event>), SnapshotError> {
    let snap = Snapshot::parse(bytes)?;
    let scenario = {
        let mut r = snap.section("scenario")?;
        let s = decode_scenario(&mut r)?;
        r.finish()?;
        s
    };
    scenario
        .validate()
        .map_err(|e| malformed(format!("snapshot scenario fails validation: {e}")))?;

    let channel = RfChannel::new(scenario.channel);
    let (table, radial) = match tables {
        Some(t) => t,
        None => {
            let split = SeedSplitter::new(scenario.seed);
            let table = calibrate(
                &channel,
                &CalibrationConfig::default(),
                &mut split.stream("calibration", 0),
            );
            let radial = cocoa_localization::bayes::radial_constraints_for_grid(
                &table,
                &GridConfig::new(scenario.area, scenario.grid_resolution_m),
            );
            (table, radial)
        }
    };

    let parts = {
        let mut r = snap.section("engine")?;
        let p = decode_engine(&mut r)?;
        r.finish()?;
        p
    };

    let (move_rngs, odo_rngs, channel_rng, jitter_rng, fault_rng) = {
        let mut r = snap.section("rngs")?;
        let move_rngs = read_vec(&mut r, read_rng)?;
        let odo_rngs = read_vec(&mut r, read_rng)?;
        let channel_rng = read_rng(&mut r)?;
        let jitter_rng = read_rng(&mut r)?;
        let fault_rng = read_rng(&mut r)?;
        r.finish()?;
        if move_rngs.len() != scenario.num_robots || odo_rngs.len() != scenario.num_robots {
            return Err(malformed(format!(
                "rng stream counts ({}, {}) do not match the {}-robot scenario",
                move_rngs.len(),
                odo_rngs.len(),
                scenario.num_robots
            )));
        }
        (move_rngs, odo_rngs, channel_rng, jitter_rng, fault_rng)
    };

    let medium = {
        let mut r = snap.section("medium")?;
        let state = decode_medium(&mut r)?;
        r.finish()?;
        Medium::from_state(state)
    };

    let robots = {
        let mut r = snap.section("robots")?;
        let robots = decode_robots(&mut r, &scenario)?;
        r.finish()?;
        robots
    };

    let extras = {
        let mut r = snap.section("world")?;
        let e = decode_world(&mut r)?;
        r.finish()?;
        e
    };
    if extras.sync_robot >= scenario.num_robots {
        return Err(malformed(format!(
            "sync robot {} out of range for {} robots",
            extras.sync_robot, scenario.num_robots
        )));
    }
    if let Some(links) = &extras.burst {
        if links.len() != scenario.num_robots {
            return Err(malformed(format!(
                "burst overlay holds {} links for {} robots",
                links.len(),
                scenario.num_robots
            )));
        }
    }

    let mut telemetry = {
        let mut r = snap.section("telemetry")?;
        let t = decode_telemetry(&mut r)?;
        r.finish()?;
        t
    };
    let spans = SpanIds::register(&mut telemetry);
    let hists = events::HistIds::register(&mut telemetry);

    let world = WorldState {
        scenario,
        channel,
        table,
        radial,
        medium,
        robots,
        move_rngs,
        odo_rngs,
        channel_rng,
        jitter_rng,
        error_series: extras.error_series,
        snapshots: extras.snapshots,
        position_snapshots: extras.position_snapshots,
        traffic: extras.traffic,
        sync_robot: extras.sync_robot,
        max_guard: extras.max_guard,
        telemetry,
        spans,
        hists,
        next_robot_sample: extras.next_robot_sample,
        fault_rng,
        burst: extras.burst,
        corrupt_txs: extras.corrupt_txs,
        robustness: extras.robustness,
        sync_dead_windows: extras.sync_dead_windows,
    };
    let queue = EventQueue::from_parts(parts.events, parts.next_seq, parts.peak_len);
    let engine = Engine::from_parts(
        queue,
        parts.now,
        parts.horizon,
        parts.stopped,
        parts.processed,
    );
    Ok((world, engine))
}

// ---------------------------------------------------------------------------
// SimRun: the resumable run handle.
// ---------------------------------------------------------------------------

/// A simulation run that can be paused, serialized, restored and forked.
///
/// [`crate::runner::run`] is sugar for `SimRun::new(..).finish()`; the
/// extra surface here — [`SimRun::run_until`], [`SimRun::capture`],
/// [`SimRun::resume`], [`SimRun::warm_fork`] — is what the snapshot
/// subsystem adds.
pub struct SimRun {
    world: WorldState,
    engine: Engine<Event>,
    t_total: SpanStart,
}

impl SimRun {
    /// Builds a run positioned at time zero: scenario validated,
    /// calibration done, team placed, initial events scheduled.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails validation.
    pub fn new(scenario: &Scenario, telemetry: Telemetry) -> SimRun {
        let t_total = telemetry.span_start();
        let mut world = world::setup_world(scenario, telemetry);
        let engine = world::build_initial_schedule(&mut world);
        SimRun {
            world,
            engine,
            t_total,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The scenario this run is executing (for a resumed run, the one
    /// serialized in the snapshot).
    pub fn scenario(&self) -> &Scenario {
        &self.world.scenario
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Processes every event scheduled at or before `at`, then stops at
    /// that boundary. Events exactly at `at` are processed, so a
    /// subsequent [`SimRun::capture`] sits on a clean event-queue
    /// boundary. Returns early if the run finishes first.
    pub fn run_until(&mut self, at: SimTime) {
        while self.engine.next_event_time().is_some_and(|t| t <= at) {
            if !self.engine.step(&mut self.world, events::handle_event) {
                break;
            }
        }
    }

    /// Runs to the horizon and finalizes the metrics.
    pub fn finish(mut self) -> (RunMetrics, Telemetry) {
        let spans = self.world.spans;
        let t_loop = self.world.telemetry.span_start();
        self.engine.run(&mut self.world, events::handle_event);
        self.world.telemetry.span_end(spans.run_event_loop, t_loop);

        let t_finalize = self.world.telemetry.span_start();
        let horizon = self.engine.horizon();
        let metrics = metrics_hook::finalize(&mut self.world, &self.engine, horizon);
        self.world
            .telemetry
            .span_end(spans.run_finalize, t_finalize);
        self.world.telemetry.span_end(spans.run_total, self.t_total);
        (metrics, self.world.telemetry)
    }

    /// Serializes the complete run state at the current event boundary.
    ///
    /// The run is untouched and can keep running afterwards. The
    /// `SnapshotTaken` marker and the `snapshot.captures` counter are
    /// recorded on the bus *after* the bytes are serialized, so the
    /// snapshot never contains its own marker and a resumed run stays
    /// bit-identical to an uninterrupted one.
    pub fn capture(&mut self) -> Vec<u8> {
        let queue = self.engine.replace_queue(EventQueue::new());
        let next_seq = queue.next_seq();
        let peak_len = queue.peak_len();
        let events = queue.drain_sorted();
        let parts = EngineParts {
            now: self.engine.now(),
            horizon: self.engine.horizon(),
            stopped: self.engine.is_stopped(),
            processed: self.engine.events_processed(),
            next_seq,
            peak_len,
            events,
        };
        let bytes = encode_all(&self.world, &parts);
        let rebuilt = EventQueue::from_parts(parts.events, next_seq, peak_len);
        let _ = self.engine.replace_queue(rebuilt);

        let captures = self
            .world
            .telemetry
            .counters()
            .get("snapshot.captures")
            .unwrap_or(0);
        self.world
            .telemetry
            .absorb("snapshot.captures", captures + 1);
        self.world
            .telemetry
            .absorb("snapshot.bytes", bytes.len() as u64);
        self.world.telemetry.emit(
            self.engine.now(),
            TelemetryEvent::SnapshotTaken {
                bytes: bytes.len() as u64,
                sections: SECTIONS.len() as u32,
            },
        );
        bytes
    }

    /// Restores a run from [`SimRun::capture`] bytes, quietly: the
    /// telemetry bus comes back exactly as captured, with no restore
    /// marker. This is the path resume-equivalence tests and warm-start
    /// forks use, so the resumed trace is byte-identical to the
    /// uninterrupted one.
    pub fn resume(bytes: &[u8]) -> Result<SimRun, SnapshotError> {
        let (world, engine) = decode(bytes, None)?;
        let t_total = world.telemetry.span_start();
        Ok(SimRun {
            world,
            engine,
            t_total,
        })
    }

    /// Restores a run and records the restoration on the bus: a
    /// `SnapshotRestored` event plus the `snapshot.restores` counter.
    /// Operational resumes (`cocoa-run --resume`) use this; the marker
    /// makes restarts visible in timelines.
    pub fn resume_marked(bytes: &[u8]) -> Result<SimRun, SnapshotError> {
        let mut run = SimRun::resume(bytes)?;
        let restores = run
            .world
            .telemetry
            .counters()
            .get("snapshot.restores")
            .unwrap_or(0);
        run.world
            .telemetry
            .absorb("snapshot.restores", restores + 1);
        let now = run.engine.now();
        run.world.telemetry.emit(
            now,
            TelemetryEvent::SnapshotRestored {
                bytes: bytes.len() as u64,
            },
        );
        Ok(run)
    }

    /// Clones this run's calibration tables for reuse by
    /// [`SimRun::warm_fork`].
    pub fn calibration(&self) -> (PdfTable, RadialConstraintTable) {
        (self.world.table.clone(), self.world.radial.clone())
    }

    /// Forks a *time-zero* snapshot under a patched scenario.
    ///
    /// Sweeps capture the shared warm-up prefix — calibration done, team
    /// placed, RNG streams split — once per seed, then fork it for each
    /// sweep point instead of redoing that setup. Only fields that do not
    /// feed setup may differ from the snapshot's scenario: the beacon
    /// period, windowing, coordination flag, fault plan and similar
    /// schedule-side knobs. Setup-feeding fields (seed, area, team size,
    /// channel, energy, odometry, estimator, multicast, mesh config,
    /// clock skew, speed range) must match, because their effects are
    /// already baked into the captured state.
    ///
    /// The snapshot must have been captured at time zero with no events
    /// processed; anything later has already consumed schedule-dependent
    /// state and cannot be re-scheduled consistently.
    pub fn warm_fork(
        bytes: &[u8],
        scenario: &Scenario,
        table: PdfTable,
        radial: RadialConstraintTable,
        telemetry: Telemetry,
    ) -> Result<SimRun, SnapshotError> {
        let (mut world, engine) = decode(bytes, Some((table, radial)))?;
        if engine.now() != SimTime::ZERO || engine.events_processed() != 0 {
            return Err(malformed(
                "warm fork requires a snapshot captured at time zero with no events processed",
            ));
        }
        drop(engine);
        // Byte-compare the canonical immutable encodings instead of a
        // field-by-field check so this gate and the warm-artifact cache
        // key (`warm_fingerprint`) can never disagree about what counts
        // as setup-feeding.
        let compatible =
            encode_scenario_immutable(&world.scenario) == encode_scenario_immutable(scenario);
        if !compatible {
            return Err(malformed(
                "warm fork scenario changes a setup-feeding field (seed, area, team, \
                 channel, energy, odometry, estimator, multicast, mesh or clock skew)",
            ));
        }
        scenario
            .validate()
            .map_err(|e| malformed(format!("warm fork scenario fails validation: {e}")))?;

        let mut telemetry = telemetry;
        let spans = SpanIds::register(&mut telemetry);
        let hists = events::HistIds::register(&mut telemetry);
        let t_total = telemetry.span_start();
        world.scenario = scenario.clone();
        world.max_guard = (scenario.beacon_period / 4).max(scenario.guard_band);
        world.telemetry = telemetry;
        world.spans = spans;
        world.hists = hists;
        world.next_robot_sample = None;
        let engine = world::build_initial_schedule(&mut world);
        Ok(SimRun {
            world,
            engine,
            t_total,
        })
    }
}

/// The scenario-immutable artifacts of one warm-fork family: the
/// calibration PDF table, the radial constraint table and the time-zero
/// snapshot bytes, split out of the per-run [`SimRun`] state so a
/// single build can be shared (`Arc<WarmArtifacts>`) across worker
/// threads and forked once per sweep point or served request.
///
/// The artifacts are keyed by [`warm_fingerprint`]: every scenario with
/// the same setup-feeding fields forks the same artifacts regardless of
/// its schedule-side knobs. `WarmArtifacts` is `Send + Sync` (asserted
/// below), which is what lets the serve layer and `run_warm_parallel`
/// hand one copy to many workers without cloning megabytes of tables.
#[derive(Clone)]
pub struct WarmArtifacts {
    snapshot: Vec<u8>,
    table: PdfTable,
    radial: RadialConstraintTable,
    fingerprint: u64,
}

impl WarmArtifacts {
    /// Builds the artifacts for `base`'s warm-fork family: runs the
    /// full setup (validation, RF calibration, team placement, RNG
    /// stream splits), captures the time-zero snapshot, and extracts
    /// the calibration tables.
    ///
    /// # Panics
    ///
    /// Panics if `base` fails validation (same contract as
    /// [`SimRun::new`]).
    pub fn build(base: &Scenario) -> WarmArtifacts {
        let mut run = SimRun::new(base, Telemetry::off());
        let snapshot = run.capture();
        let (table, radial) = run.calibration();
        WarmArtifacts {
            snapshot,
            table,
            radial,
            fingerprint: warm_fingerprint(base),
        }
    }

    /// The [`warm_fingerprint`] of the base scenario — the cache key
    /// under which these artifacts serve repeat traffic.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The captured time-zero snapshot bytes.
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// Whether `scenario` belongs to this artifact family (equal
    /// [`warm_fingerprint`]), i.e. whether [`WarmArtifacts::fork`] can
    /// serve it.
    pub fn compatible_with(&self, scenario: &Scenario) -> bool {
        self.fingerprint == warm_fingerprint(scenario)
    }

    /// Forks a run for `scenario` from the shared time-zero state,
    /// cloning the calibration tables instead of recomputing them. See
    /// [`SimRun::warm_fork`] for the compatibility contract.
    ///
    /// # Errors
    ///
    /// Fails when `scenario` changes a setup-feeding field or fails
    /// validation.
    pub fn fork(&self, scenario: &Scenario, telemetry: Telemetry) -> Result<SimRun, SnapshotError> {
        SimRun::warm_fork(
            &self.snapshot,
            scenario,
            self.table.clone(),
            self.radial.clone(),
            telemetry,
        )
    }
}

// The whole point of the artifact split: runs and artifacts must hand
// off cleanly across worker threads. Compile-time, not a test, so a
// regression (e.g. an Rc sneaking into WorldState) fails every build.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<SimRun>();
    assert_send_sync::<WarmArtifacts>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point> {
        (0.0f64..200.0, 0.0f64..200.0).prop_map(|(x, y)| Point::new(x, y))
    }

    fn arb_stats() -> impl Strategy<Value = WindowStats> {
        (
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        )
            .prop_map(|(w, f, fl, seen, applied, rejected)| WindowStats {
                windows: u32::from(w),
                fixes: u32::from(f),
                flat_windows: u32::from(fl),
                beacons_seen: u64::from(seen),
                beacons_applied: u64::from(applied),
                beacons_rejected_outlier: u64::from(rejected),
            })
    }

    fn arb_backend() -> impl Strategy<Value = BackendCheckpoint> {
        let bayes = (
            proptest::collection::vec(0.0f64..1.0, 0..64),
            proptest::collection::vec(
                prop_oneof![
                    (0.0f64..1.0).prop_map(Tile::Coarse),
                    proptest::collection::vec(0.0f64..1.0, 1..8).prop_map(Tile::Refined),
                ],
                0..6,
            ),
            proptest::collection::vec(
                (arb_point(), -120i16..0).prop_map(|(p, b)| (p, RssiBin(b))),
                0..4,
            ),
            any::<u8>(),
            any::<u8>(),
        )
            .prop_map(
                |(cells, tiles, pending, applied, seen)| BackendCheckpoint::Bayes {
                    posterior_cells: cells,
                    adaptive_tiles: tiles,
                    pending,
                    grid_stats: GridStats::default(),
                    beacons_applied: u32::from(applied),
                    beacons_seen: u32::from(seen),
                },
            );
        let lateration = proptest::collection::vec(
            (arb_point(), 0.1f64..300.0, 0.01f64..10.0).prop_map(|(anchor, range, weight)| {
                RangeObservation {
                    anchor,
                    range,
                    weight,
                }
            }),
            0..8,
        )
        .prop_map(|ranges| BackendCheckpoint::Lateration { ranges });
        let ekf = (
            arb_point(),
            (1e-9f64..1e4, 1e-9f64..1e4, -10.0f64..10.0),
            (any::<u32>(), any::<u32>(), any::<u16>(), 0u32..8),
            prop_oneof![Just(None), arb_point().prop_map(Some)],
        )
            .prop_map(|(mean, (p11, p22, p12), (ua, ug, cg, wa), last_odo)| {
                BackendCheckpoint::Ekf {
                    filter: EkfSnapshot {
                        x: mean.x,
                        y: mean.y,
                        p11,
                        p12,
                        p22,
                        updates_applied: u64::from(ua),
                        updates_gated: u64::from(ug),
                        consecutive_gated: u32::from(cg),
                    },
                    window_applied: wa,
                    last_odo,
                }
            });
        prop_oneof![bayes, lateration, ekf]
    }

    proptest! {
        /// The v4 estimator section round-trips byte-exactly for every
        /// backend variant: encode → decode → re-encode reproduces both
        /// the checkpoint struct and the original bytes.
        #[test]
        fn estimator_section_round_trips_byte_exactly(
            backend in arb_backend(),
            stats in arb_stats(),
            last_fix in prop_oneof![Just(None), arb_point().prop_map(Some)],
            in_window in any::<bool>(),
        ) {
            let checkpoint = EstimatorCheckpoint {
                last_fix,
                in_window,
                stats,
                backend,
            };
            let mut bytes = Vec::new();
            put_estimator(&mut bytes, &checkpoint);
            let mut reader = SnapshotReader::new(&bytes, "test");
            let decoded = read_estimator(&mut reader).expect("own bytes must decode");
            prop_assert_eq!(reader.remaining(), 0, "decoder must consume the section");
            prop_assert_eq!(&decoded, &checkpoint);
            let mut again = Vec::new();
            put_estimator(&mut again, &decoded);
            prop_assert_eq!(again, bytes, "re-encode must be byte-identical");
        }
    }

    /// Every `ScenarioBuilder` field must perturb the fingerprint: a
    /// silently-unhashed field would let two different scenarios share a
    /// cache slot and serve each other's results.
    #[test]
    fn every_builder_field_perturbs_the_fingerprint() {
        use crate::scenario::ScenarioBuilder;
        type Tweak = Box<dyn Fn(&mut ScenarioBuilder)>;
        let default_duration = Scenario::builder().build().duration;
        let perturbations: Vec<(&str, Tweak)> = vec![
            (
                "seed",
                Box::new(|b| {
                    b.seed(7);
                }),
            ),
            (
                "area",
                Box::new(|b| {
                    b.area(Area::square(300.0));
                }),
            ),
            (
                "robots",
                Box::new(|b| {
                    b.robots(40);
                }),
            ),
            (
                "equipped",
                Box::new(|b| {
                    b.equipped(10);
                }),
            ),
            (
                "duration",
                Box::new(|b| {
                    b.duration(SimDuration::from_secs(900));
                }),
            ),
            (
                "beacon_period",
                Box::new(|b| {
                    b.beacon_period(SimDuration::from_secs(50));
                }),
            ),
            (
                "transmit_window",
                Box::new(|b| {
                    b.transmit_window(SimDuration::from_secs(2));
                }),
            ),
            (
                "beacons_per_window",
                Box::new(|b| {
                    b.beacons_per_window(2);
                }),
            ),
            (
                "v_min",
                Box::new(|b| {
                    b.v_min(0.2);
                }),
            ),
            (
                "v_max",
                Box::new(|b| {
                    b.v_max(3.0);
                }),
            ),
            (
                "static_team",
                Box::new(|b| {
                    b.static_team().multicast(MulticastProtocol::Flood);
                }),
            ),
            (
                "mode",
                Box::new(|b| {
                    b.mode(EstimatorMode::OdometryOnly);
                }),
            ),
            (
                "rf_algorithm",
                Box::new(|b| {
                    b.rf_algorithm(RfAlgorithm::Ekf);
                }),
            ),
            (
                "coordination",
                Box::new(|b| {
                    b.coordination(false);
                }),
            ),
            (
                "grid_resolution",
                Box::new(|b| {
                    b.grid_resolution(4.0);
                }),
            ),
            (
                "channel",
                Box::new(|b| {
                    b.channel(ChannelParams {
                        tx_power_dbm: 18.0,
                        ..ChannelParams::default()
                    });
                }),
            ),
            (
                "energy",
                Box::new(|b| {
                    b.energy(EnergyParams {
                        idle_mw: 901.0,
                        ..EnergyParams::default()
                    });
                }),
            ),
            (
                "odometry",
                Box::new(|b| {
                    b.odometry(OdometryConfig {
                        displacement_sigma: 0.17,
                        ..OdometryConfig::default()
                    });
                }),
            ),
            (
                "mesh",
                Box::new(|b| {
                    b.mesh(OdmrpConfig {
                        max_hops: 9,
                        ..OdmrpConfig::default()
                    });
                }),
            ),
            (
                "multicast",
                Box::new(|b| {
                    b.multicast(MulticastProtocol::Odmrp);
                }),
            ),
            (
                "sync_enabled",
                Box::new(|b| {
                    b.sync_enabled(false);
                }),
            ),
            (
                "clock_skew_ppm",
                Box::new(|b| {
                    b.clock_skew_ppm(99.0);
                }),
            ),
            (
                "guard_band",
                Box::new(|b| {
                    b.guard_band(SimDuration::from_secs(2));
                }),
            ),
            (
                "snapshots",
                Box::new(|b| {
                    b.snapshots([SimTime::from_secs(100)]);
                }),
            ),
            (
                "relay_beaconing",
                Box::new(|b| {
                    b.relay_beaconing(true);
                }),
            ),
            (
                "packet_loss",
                Box::new(|b| {
                    b.packet_loss(0.1);
                }),
            ),
            (
                "faults",
                Box::new(move |b| {
                    let plan = FaultPlan::preset("burst30", default_duration, 50)
                        .expect("burst30 is a canned preset");
                    b.faults(plan);
                }),
            ),
            (
                "failover_missed_periods",
                Box::new(|b| {
                    b.failover_missed_periods(5);
                }),
            ),
            (
                "entropy_watchdog_frac",
                Box::new(|b| {
                    b.entropy_watchdog_frac(0.5);
                }),
            ),
            (
                "outlier_gate_m",
                Box::new(|b| {
                    b.outlier_gate_m(75.0);
                }),
            ),
            (
                "grid_pipeline",
                Box::new(|b| {
                    b.grid_pipeline(GridPipeline {
                        adaptive: true,
                        adaptive_coarse_factor: 8,
                        ..GridPipeline::default()
                    });
                }),
            ),
            (
                "grid_kernel",
                Box::new(|b| {
                    b.grid_kernel(GridKernel::Scalar);
                }),
            ),
            (
                "grid_precision",
                Box::new(|b| {
                    b.grid_precision(GridPrecision::F32);
                }),
            ),
            (
                "grid_fused",
                Box::new(|b| {
                    b.grid_fused(true);
                }),
            ),
            (
                "grid_adaptive",
                Box::new(|b| {
                    b.grid_adaptive(true);
                }),
            ),
        ];
        let mut seen: Vec<(&str, u64)> = vec![(
            "default",
            scenario_fingerprint(&Scenario::builder().build()),
        )];
        for (name, tweak) in &perturbations {
            let mut b = Scenario::builder();
            tweak(&mut b);
            let s = b
                .try_build()
                .unwrap_or_else(|e| panic!("perturbation '{name}' must stay valid: {e}"));
            let fp = scenario_fingerprint(&s);
            for (other, other_fp) in &seen {
                assert_ne!(
                    fp, *other_fp,
                    "field '{name}' collides with '{other}': the field is not hashed"
                );
            }
            seen.push((name, fp));
        }
    }

    /// The codec version participates in the hash, so fingerprints from
    /// one snapshot schema never match another's: a v4 artifact cache
    /// cannot serve a v5 request.
    #[test]
    fn fingerprints_are_schema_versioned() {
        use cocoa_sim::snapshot::SNAPSHOT_SCHEMA_VERSION;
        let s = Scenario::builder().build();
        let full = encode_scenario(&s);
        let immutable = encode_scenario_immutable(&s);
        assert_eq!(
            scenario_fingerprint(&s),
            versioned_fingerprint(&full, SNAPSHOT_SCHEMA_VERSION)
        );
        assert_eq!(
            warm_fingerprint(&s),
            versioned_fingerprint(&immutable, SNAPSHOT_SCHEMA_VERSION)
        );
        assert_ne!(
            versioned_fingerprint(&full, SNAPSHOT_SCHEMA_VERSION),
            versioned_fingerprint(&full, SNAPSHOT_SCHEMA_VERSION + 1),
            "a codec bump must change every scenario fingerprint"
        );
        assert_ne!(
            versioned_fingerprint(&immutable, SNAPSHOT_SCHEMA_VERSION),
            versioned_fingerprint(&immutable, SNAPSHOT_SCHEMA_VERSION + 1),
            "a codec bump must change every warm fingerprint"
        );
    }

    /// The warm fingerprint tracks only setup-feeding fields: schedule
    /// knobs fork the same artifacts, setup knobs do not.
    #[test]
    fn warm_fingerprint_ignores_schedule_side_fields() {
        let base = Scenario::builder().build();
        let schedule = Scenario::builder()
            .beacon_period(SimDuration::from_secs(50))
            .duration(SimDuration::from_secs(600))
            .coordination(false)
            .build();
        assert_eq!(
            warm_fingerprint(&base),
            warm_fingerprint(&schedule),
            "schedule-side fields must not split the warm-artifact family"
        );
        assert_ne!(
            scenario_fingerprint(&base),
            scenario_fingerprint(&schedule),
            "the full fingerprint must still tell the requests apart"
        );
        let setup = Scenario::builder().seed(7).build();
        assert_ne!(
            warm_fingerprint(&base),
            warm_fingerprint(&setup),
            "setup-feeding fields must split the family"
        );
        // The compatibility gate agrees with the cache key, both ways.
        let artifacts = WarmArtifacts::build(&base);
        assert!(artifacts.compatible_with(&schedule));
        assert!(!artifacts.compatible_with(&setup));
        assert!(artifacts.fork(&schedule, Telemetry::off()).is_ok());
        assert!(artifacts.fork(&setup, Telemetry::off()).is_err());
    }
}
