//! The pluggable mesh layer: one [`MeshBackend`] trait, three transports.
//!
//! The runner never names a concrete multicast protocol; it drives
//! whatever [`make_backend`] hands it for the scenario's
//! [`MulticastProtocol`]. Three backends exist:
//!
//! - **flood** — blind flooding ([`cocoa_multicast::flood::FloodNode`]):
//!   no control plane, every node rebroadcasts every data packet once;
//! - **odmrp** — classic ODMRP ([`cocoa_multicast::odmrp::OdmrpNode`] with
//!   [`cocoa_multicast::odmrp::MeshMode::Odmrp`]): JOIN QUERY flood, JOIN
//!   REPLY aggregation, only forwarding-group members rebroadcast data;
//! - **mrmm** — the paper's mobility-aware variant (same node type with
//!   [`cocoa_multicast::odmrp::MeshMode::Mrmm`]): queries piggyback
//!   position/velocity, routes are
//!   scored by predicted link lifetime, and redundant query rebroadcasts
//!   are pruned.
//!
//! This module also owns the mesh-side event handling (deferred replies,
//! rebroadcast decisions, and delivered mesh packets), so all calls into
//! the backend go through one place.

use bytes::Bytes;
use cocoa_multicast::flood::{FloodCheckpoint, FloodNode};
use cocoa_multicast::mesh::MeshStats;
use cocoa_multicast::mrmm::{MobilityInfo, PathScore};
use cocoa_multicast::odmrp::{
    OdmrpCheckpoint, OdmrpConfig, OdmrpNode, ProtocolAction, RoundCheckpoint, RouteCheckpoint,
};
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_net::packet::{GroupId, NodeId, Packet};
use cocoa_sim::dist::uniform;
use cocoa_sim::engine::Engine;
use cocoa_sim::snapshot::{
    put_bool, put_f64, put_u32, put_u64, put_u8, put_usize, SnapshotError, SnapshotReader,
};
use cocoa_sim::telemetry::TelemetryEvent;
use cocoa_sim::time::{SimDuration, SimTime};

use crate::sync::SyncMessage;

use super::events::{Event, TxIntent};
use super::WorldState;

/// A sans-IO multicast transport as the runner sees it: packets in,
/// protocol actions out, counters on demand.
///
/// All three backends share the envelope of
/// [`cocoa_multicast::odmrp::OdmrpNode`]'s API; the trait narrows it to
/// exactly what the event loop calls, so swapping transports cannot leak
/// protocol-specific behaviour into the runner.
pub trait MeshBackend: Send {
    /// Stable lowercase backend name (`"flood"`, `"odmrp"`, `"mrmm"`),
    /// used for telemetry counter namespaces and reports.
    fn name(&self) -> &'static str;

    /// Starts a mesh-refresh round, if this transport has a control plane.
    /// Flooding returns `None`: there is no route state to refresh.
    fn originate_query(&mut self, now: SimTime, my: &MobilityInfo) -> Option<Packet>;

    /// Originates a data packet carrying `body` (source side).
    fn originate_data(&mut self, now: SimTime, body: Bytes) -> Packet;

    /// Handles a received mesh packet and returns the follow-up actions.
    fn handle_packet(
        &mut self,
        now: SimTime,
        packet: &Packet,
        my: &MobilityInfo,
    ) -> Vec<ProtocolAction>;

    /// Builds the deferred JOIN REPLY toward `source`, if still warranted.
    fn make_reply(&mut self, now: SimTime, source: NodeId) -> Option<Packet>;

    /// Builds the deferred JOIN QUERY rebroadcast for (`source`, `seq`),
    /// or `None` if the round went stale or the backend pruned it.
    fn make_rebroadcast(
        &mut self,
        now: SimTime,
        source: NodeId,
        seq: u32,
        my: &MobilityInfo,
    ) -> Option<Packet>;

    /// Lifetime protocol counters.
    fn stats(&self) -> MeshStats;

    /// Records a delivered data body the application could not decode.
    fn note_undecodable_delivery(&mut self);

    /// Serializes the backend's complete mutable state as checkpoint bytes.
    /// Identity and configuration are not included — they are rebuilt by
    /// [`make_backend`] before [`MeshBackend::load_state`] decodes these
    /// bytes onto the fresh node.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state produced by [`MeshBackend::save_state`] on a backend
    /// constructed with the same identity and configuration.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// A dedup-cache entry: `((source, seq), expiry)`, the shape
/// [`DedupCache::entries`] yields.
type DedupEntry = ((NodeId, u32), SimTime);

fn put_dedup_entries(buf: &mut Vec<u8>, entries: &[DedupEntry]) {
    put_usize(buf, entries.len());
    for &((node, seq), t) in entries {
        put_u32(buf, node.0);
        put_u32(buf, seq);
        put_u64(buf, t.as_micros());
    }
}

fn read_dedup_entries(r: &mut SnapshotReader<'_>) -> Result<Vec<DedupEntry>, SnapshotError> {
    let n = r.usize_()?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let node = NodeId(r.u32()?);
        let seq = r.u32()?;
        let t = SimTime::from_micros(r.u64()?);
        entries.push(((node, seq), t));
    }
    Ok(entries)
}

fn put_mesh_stats(buf: &mut Vec<u8>, stats: &MeshStats) {
    for (_, value) in stats.counters() {
        put_u64(buf, value);
    }
}

fn read_mesh_stats(r: &mut SnapshotReader<'_>) -> Result<MeshStats, SnapshotError> {
    Ok(MeshStats {
        queries_originated: r.u64()?,
        queries_rebroadcast: r.u64()?,
        queries_suppressed: r.u64()?,
        replies_sent: r.u64()?,
        fg_activations: r.u64()?,
        data_originated: r.u64()?,
        data_forwarded: r.u64()?,
        data_delivered: r.u64()?,
        data_duplicates: r.u64()?,
        data_undecodable: r.u64()?,
    })
}

/// ODMRP or MRMM, depending on the config's [`MeshMode`].
///
/// [`MeshMode`]: cocoa_multicast::odmrp::MeshMode
struct OdmrpBackend {
    node: OdmrpNode,
    name: &'static str,
}

impl MeshBackend for OdmrpBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn originate_query(&mut self, now: SimTime, my: &MobilityInfo) -> Option<Packet> {
        Some(self.node.originate_query(now, my))
    }

    fn originate_data(&mut self, now: SimTime, body: Bytes) -> Packet {
        self.node.originate_data(now, body)
    }

    fn handle_packet(
        &mut self,
        now: SimTime,
        packet: &Packet,
        my: &MobilityInfo,
    ) -> Vec<ProtocolAction> {
        self.node.handle_packet(now, packet, my)
    }

    fn make_reply(&mut self, now: SimTime, source: NodeId) -> Option<Packet> {
        self.node.make_reply(now, source)
    }

    fn make_rebroadcast(
        &mut self,
        now: SimTime,
        source: NodeId,
        seq: u32,
        my: &MobilityInfo,
    ) -> Option<Packet> {
        self.node.make_rebroadcast(now, source, seq, my)
    }

    fn stats(&self) -> MeshStats {
        self.node.stats()
    }

    fn note_undecodable_delivery(&mut self) {
        self.node.note_undecodable_delivery();
    }

    fn save_state(&self) -> Vec<u8> {
        let c = self.node.checkpoint();
        let mut buf = Vec::new();
        match c.fg_until {
            Some(t) => {
                put_bool(&mut buf, true);
                put_u64(&mut buf, t.as_micros());
            }
            None => put_bool(&mut buf, false),
        }
        put_usize(&mut buf, c.routes.len());
        for route in &c.routes {
            put_u32(&mut buf, route.source.0);
            put_u32(&mut buf, route.prev_hop.0);
            put_u8(&mut buf, route.hops);
            put_f64(&mut buf, route.score.lifetime);
            put_u8(&mut buf, route.score.hops);
            put_u32(&mut buf, route.seq);
        }
        put_usize(&mut buf, c.rounds.len());
        for round in &c.rounds {
            put_u32(&mut buf, round.source.0);
            put_u32(&mut buf, round.seq);
            put_u32(&mut buf, round.copies);
            put_bool(&mut buf, round.reply_scheduled);
            put_bool(&mut buf, round.rebroadcast_scheduled);
        }
        put_dedup_entries(&mut buf, &c.seen_queries);
        put_dedup_entries(&mut buf, &c.seen_data);
        put_usize(&mut buf, c.last_reply_propagated.len());
        for &(node, t) in &c.last_reply_propagated {
            put_u32(&mut buf, node.0);
            put_u64(&mut buf, t.as_micros());
        }
        put_u32(&mut buf, c.next_seq);
        put_mesh_stats(&mut buf, &c.stats);
        buf
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, "mesh.odmrp");
        let fg_until = if r.bool()? {
            Some(SimTime::from_micros(r.u64()?))
        } else {
            None
        };
        let n_routes = r.usize_()?;
        let mut routes = Vec::with_capacity(n_routes.min(4096));
        for _ in 0..n_routes {
            routes.push(RouteCheckpoint {
                source: NodeId(r.u32()?),
                prev_hop: NodeId(r.u32()?),
                hops: r.u8()?,
                score: PathScore {
                    lifetime: r.f64()?,
                    hops: r.u8()?,
                },
                seq: r.u32()?,
            });
        }
        let n_rounds = r.usize_()?;
        let mut rounds = Vec::with_capacity(n_rounds.min(4096));
        for _ in 0..n_rounds {
            rounds.push(RoundCheckpoint {
                source: NodeId(r.u32()?),
                seq: r.u32()?,
                copies: r.u32()?,
                reply_scheduled: r.bool()?,
                rebroadcast_scheduled: r.bool()?,
            });
        }
        let seen_queries = read_dedup_entries(&mut r)?;
        let seen_data = read_dedup_entries(&mut r)?;
        let n_replies = r.usize_()?;
        let mut last_reply_propagated = Vec::with_capacity(n_replies.min(4096));
        for _ in 0..n_replies {
            let node = NodeId(r.u32()?);
            let t = SimTime::from_micros(r.u64()?);
            last_reply_propagated.push((node, t));
        }
        let next_seq = r.u32()?;
        let stats = read_mesh_stats(&mut r)?;
        r.finish()?;
        self.node.restore(OdmrpCheckpoint {
            fg_until,
            routes,
            rounds,
            seen_queries,
            seen_data,
            last_reply_propagated,
            next_seq,
            stats,
        });
        Ok(())
    }
}

/// The blind-flooding baseline: data only, no control plane.
struct FloodBackend {
    node: FloodNode,
}

impl MeshBackend for FloodBackend {
    fn name(&self) -> &'static str {
        "flood"
    }

    fn originate_query(&mut self, _now: SimTime, _my: &MobilityInfo) -> Option<Packet> {
        None // no mesh to refresh
    }

    fn originate_data(&mut self, now: SimTime, body: Bytes) -> Packet {
        self.node.originate_data(now, body)
    }

    fn handle_packet(
        &mut self,
        now: SimTime,
        packet: &Packet,
        _my: &MobilityInfo,
    ) -> Vec<ProtocolAction> {
        self.node.handle_packet(now, packet)
    }

    fn make_reply(&mut self, _now: SimTime, _source: NodeId) -> Option<Packet> {
        None
    }

    fn make_rebroadcast(
        &mut self,
        _now: SimTime,
        _source: NodeId,
        _seq: u32,
        _my: &MobilityInfo,
    ) -> Option<Packet> {
        None
    }

    fn stats(&self) -> MeshStats {
        self.node.stats()
    }

    fn note_undecodable_delivery(&mut self) {
        self.node.note_undecodable_delivery();
    }

    fn save_state(&self) -> Vec<u8> {
        let c = self.node.checkpoint();
        let mut buf = Vec::new();
        put_dedup_entries(&mut buf, &c.seen);
        put_u32(&mut buf, c.next_seq);
        put_mesh_stats(&mut buf, &c.stats);
        buf
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, "mesh.flood");
        let seen = read_dedup_entries(&mut r)?;
        let next_seq = r.u32()?;
        let stats = read_mesh_stats(&mut r)?;
        r.finish()?;
        self.node.restore(FloodCheckpoint {
            seen,
            next_seq,
            stats,
        });
        Ok(())
    }
}

/// Builds the mesh backend for `protocol`.
///
/// For the ODMRP-family backends the scenario's mesh parameters are kept
/// except for the mode, which the protocol dictates — so one scenario can
/// sweep backends without touching its `OdmrpConfig`.
pub fn make_backend(
    protocol: MulticastProtocol,
    id: NodeId,
    group: GroupId,
    member: bool,
    params: OdmrpConfig,
) -> Box<dyn MeshBackend> {
    match protocol.mesh_mode() {
        None => Box::new(FloodBackend {
            node: FloodNode::new(id, group, member),
        }),
        Some(mode) => Box::new(OdmrpBackend {
            node: OdmrpNode::new(id, group, member, OdmrpConfig { mode, ..params }),
            name: protocol.as_str(),
        }),
    }
}

/// Handles a deferred JOIN REPLY for `robot` toward `source`.
pub(crate) fn mesh_reply(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    source: NodeId,
    now: SimTime,
) {
    if !world.robots[robot].radio.can_receive() {
        return;
    }
    if let Some(packet) = world.robots[robot].mesh.make_reply(now, source) {
        let scan_span = world.spans.channel_sample_reply;
        super::beacon::transmit(engine, world, robot, packet, now, scan_span);
    }
}

/// Handles a deferred JOIN QUERY rebroadcast decision for `robot`.
///
/// When the backend declines by *pruning* (MRMM's redundancy suppression,
/// visible as a bump in its `queries_suppressed` counter) a
/// [`TelemetryEvent::MeshPrune`] is emitted; a decline because the round
/// went stale stays silent, exactly as before.
pub(crate) fn mesh_rebroadcast(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    source: NodeId,
    seq: u32,
    now: SimTime,
) {
    if !world.robots[robot].radio.can_receive() {
        return;
    }
    let mode = world.mode();
    let area = world.scenario.area;
    let info = world.robots[robot].mobility_info(mode, &area);
    let suppressed_before = world.robots[robot].mesh.stats().queries_suppressed;
    match world.robots[robot]
        .mesh
        .make_rebroadcast(now, source, seq, &info)
    {
        Some(packet) => {
            let scan_span = world.spans.channel_sample_rebroadcast;
            super::beacon::transmit(engine, world, robot, packet, now, scan_span);
        }
        None => {
            if world.robots[robot].mesh.stats().queries_suppressed > suppressed_before {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::MeshPrune {
                        robot: robot as u32,
                        source: source.0,
                        seq,
                    },
                );
            }
        }
    }
}

/// Routes a delivered mesh packet (query/reply/data) into the backend and
/// executes the resulting protocol actions.
pub(crate) fn handle_mesh_packet(
    engine: &mut Engine<Event>,
    world: &mut WorldState,
    robot: usize,
    packet: &Packet,
    now: SimTime,
) {
    let mode = world.mode();
    let area = world.scenario.area;
    let info = world.robots[robot].mobility_info(mode, &area);
    let sp = world.telemetry.span_start();
    let actions = world.robots[robot].mesh.handle_packet(now, packet, &info);
    world.telemetry.span_end(world.spans.mesh_handle, sp);
    for action in actions {
        match action {
            ProtocolAction::Broadcast {
                packet,
                jitter_bound,
            } => {
                let jitter = uniform(
                    0.0,
                    jitter_bound.as_secs_f64().max(1e-4),
                    &mut world.jitter_rng,
                );
                engine.schedule_in(
                    SimDuration::from_secs_f64(jitter),
                    Event::Transmit {
                        robot,
                        intent: TxIntent::Mesh(packet),
                    },
                );
            }
            ProtocolAction::Deliver { source: _, body } => {
                match SyncMessage::decode(body) {
                    Some(_msg) => {
                        let r = &mut world.robots[robot];
                        if r.clock.resync(now) {
                            r.synced_this_window = true;
                        } else {
                            // A replayed or reordered SYNC older than
                            // the clock's anchor: ignored, counted.
                            world.robustness.stale_syncs_ignored += 1;
                        }
                    }
                    None => {
                        // Garbled in flight: the mesh delivered bytes
                        // the application cannot parse.
                        world.robustness.malformed_sync_bodies += 1;
                        world.robots[robot].mesh.note_undecodable_delivery();
                    }
                }
            }
            ProtocolAction::ScheduleReply { source, after } => {
                engine.schedule_in(after, Event::MeshReply { robot, source });
            }
            ProtocolAction::ScheduleRebroadcast { source, seq, after } => {
                engine.schedule_in(after, Event::MeshRebroadcast { robot, source, seq });
            }
        }
    }
}
