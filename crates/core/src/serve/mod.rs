//! Sweep-as-a-service: the `cocoa-serve` batch server.
//!
//! A long-lived process that accepts scenario specs over a tiny
//! dependency-free HTTP/1.1 subset (see [`http`](self)), runs each one
//! under the supervised executor, and streams the full schema-v1
//! telemetry JSONL plus the final byte-exact metrics back. Three
//! properties shape the design:
//!
//! - **Single-flight dedup.** Identical requests (same
//!   [`request_fingerprint`]) in flight at once execute exactly one
//!   run; every caller receives the byte-identical body. Completed
//!   fingerprints are served from a bounded results cache without
//!   touching the simulator.
//! - **Warm-artifact reuse.** Untraced requests in a known scenario
//!   family fork from cached time-zero
//!   [`WarmArtifacts`] — calibration
//!   PDFs, radial tables, snapshot bytes — instead of cold-starting
//!   setup. Determinism makes this invisible: a warm fork's metrics
//!   are bit-identical to a cold run's.
//! - **Zero observer effect.** A traced request runs through exactly
//!   the local `cocoa-run` path (`SimRun::new`, never a warm fork, so
//!   setup spans are present) and the streamed JSONL is byte-for-byte
//!   what `--trace-out` would have written.
//!
//! ## Protocol
//!
//! | Route              | Meaning                                        |
//! |--------------------|------------------------------------------------|
//! | `POST /v1/runs`    | Run a spec; body = telemetry JSONL + `serve.metrics` line |
//! | `GET /healthz`     | Liveness probe (`ok`)                          |
//! | `GET /v1/spec`     | A starter spec template                        |
//! | `GET /v1/stats`    | Flat JSON: `serve.*` + `supervisor.*` counters |
//! | `GET /v1/fleet`    | Live job fleet status (`status.json` schema)   |
//! | `POST /v1/shutdown`| Begin a graceful drain                         |
//!
//! Run responses carry `X-Cocoa-Cache: miss|join|hit` and
//! `X-Cocoa-Fingerprint`. Cache provenance lives in *headers* so the
//! body stays byte-identical across cold, joined and cached serves.
//!
//! ## Shutdown
//!
//! SIGTERM/SIGINT (via `cocoa-signal`), `POST /v1/shutdown` or
//! [`Server::begin_shutdown`] stop the accept loop; in-flight
//! connections drain to completion, then the serve manifest is
//! persisted. With a state directory configured, completed results are
//! also persisted per-job and restored on the next start, so a restart
//! resumes cache service without recomputing anything.

pub mod client;
mod http;
mod registry;
pub mod spec;

pub use registry::{ServeCounters, RESULTS_CAP, WARM_CAP};
pub use spec::{example_spec, parse_spec, request_fingerprint, ServeRequest};

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cocoa_sim::jsonfmt::ObjectWriter;
use cocoa_sim::snapshot::{crc32, put_bytes, Snapshot, SnapshotWriter};
use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};

use crate::executor::fleet::FleetStatus;
use crate::executor::manifest::{decode_metrics, encode_metrics};
use crate::executor::supervisor::{
    JobEvent, JobObserver, Supervisor, SupervisorConfig, SupervisorCounters,
};
use crate::metrics::RunMetrics;
use crate::runner::{warm_fingerprint, SimRun};
use crate::world::checkpoint::WarmArtifacts;

use registry::{Admission, JobError, JobResult, Registry};

/// The meta `kind` tag of a persisted per-job result file.
const JOB_KIND: &str = "cocoa-serve-job";
/// The serve manifest written at the end of a graceful drain.
const MANIFEST_FILE: &str = "serve-manifest.json";
/// Accept-loop poll interval while idle. Bounds both shutdown latency
/// and the time-to-first-byte of a cache hit, so it is kept small; the
/// idle spin this buys (500 wakeups/s) is noise next to one run.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server configuration. `Default` binds an ephemeral localhost port
/// with no deadline and no persistence.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `host:port` (`port 0` = ephemeral).
    pub addr: String,
    /// Maximum concurrently executing runs; further leaders queue.
    pub max_jobs: usize,
    /// Per-run wall-clock deadline (`None` = unbounded).
    pub job_deadline: Option<Duration>,
    /// Directory for per-job results and the serve manifest (`None` =
    /// in-memory only).
    pub state_dir: Option<PathBuf>,
    /// Suppress per-request log lines on stderr.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_jobs: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            job_deadline: None,
            state_dir: None,
            quiet: false,
        }
    }
}

/// Everything the accept loop and connection handlers share.
struct Shared {
    cfg: ServeConfig,
    registry: Registry,
    counters: ServeCounters,
    supervisor_totals: Mutex<SupervisorCounters>,
    fleet: Mutex<FleetStatus>,
    stop: AtomicBool,
    free_slots: Mutex<usize>,
    slot_freed: Condvar,
    started: Instant,
}

impl Shared {
    fn log(&self, line: &str) {
        if !self.cfg.quiet {
            eprintln!("cocoa-serve: {line}");
        }
    }

    /// Blocks until an execution slot is free, bounding concurrent
    /// simulations at `max_jobs` regardless of connection count.
    fn acquire_slot(&self) {
        let mut free = self.free_slots.lock().expect("slots poisoned");
        while *free == 0 {
            free = self.slot_freed.wait(free).expect("slots poisoned");
        }
        *free -= 1;
    }

    fn release_slot(&self) {
        *self.free_slots.lock().expect("slots poisoned") += 1;
        self.slot_freed.notify_one();
    }

    fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || cocoa_signal::shutdown_requested()
    }

    /// The `/v1/stats` document: one flat JSON object of every serve
    /// and supervisor counter plus uptime and cache occupancy.
    fn stats_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("kind", "serve.stats");
        for (name, value) in self.counters.as_pairs() {
            w.u64_field(name, value);
        }
        let totals = *self.supervisor_totals.lock().expect("totals poisoned");
        for (name, value) in totals.as_pairs() {
            w.u64_field(name, value);
        }
        w.u64_field(
            "serve.results_cached",
            self.registry.done_fingerprints().len() as u64,
        )
        .u64_field("serve.warm_cached", self.registry.warm_len() as u64)
        .f64_field("serve.uptime_s", self.started.elapsed().as_secs_f64());
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Writes the drain-time manifest (atomic tmp + rename).
    fn persist_manifest(&self) {
        let Some(dir) = &self.cfg.state_dir else {
            return;
        };
        let mut w = ObjectWriter::new();
        w.str_field("kind", "cocoa-serve-manifest");
        for (name, value) in self.counters.as_pairs() {
            w.u64_field(name, value);
        }
        w.u64_field(
            "serve.results_cached",
            self.registry.done_fingerprints().len() as u64,
        );
        let mut body = w.finish();
        body.push('\n');
        let path = dir.join(MANIFEST_FILE);
        let tmp = path.with_extension("json.tmp");
        let stored = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, &path));
        match stored {
            Ok(()) => self.log(&format!("wrote {}", path.display())),
            Err(e) => self.log(&format!("cannot write {}: {e}", path.display())),
        }
    }
}

/// A running serve instance. Dropping it begins a shutdown and joins
/// the accept loop, so tests cannot leak listeners.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds, restores any persisted results, and starts accepting.
    ///
    /// # Errors
    ///
    /// A message if the address cannot be bound or the state directory
    /// cannot be created.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read local addr: {e}"))?;
        let shared = Arc::new(Shared {
            free_slots: Mutex::new(cfg.max_jobs.max(1)),
            registry: Registry::new(RESULTS_CAP, WARM_CAP),
            counters: ServeCounters::default(),
            supervisor_totals: Mutex::new(SupervisorCounters::default()),
            fleet: Mutex::new(FleetStatus::new(0)),
            stop: AtomicBool::new(false),
            slot_freed: Condvar::new(),
            started: Instant::now(),
            cfg,
        });
        if let Some(dir) = shared.cfg.state_dir.clone() {
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            restore_results(&shared, &dir);
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("cocoa-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Raises the shutdown flag; the accept loop stops taking new
    /// connections and drains in-flight ones.
    pub fn begin_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop has drained and exited.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: flag, drain, join.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.wait();
    }

    /// Current `serve.*` + `supervisor.*` counters as `(name, value)`
    /// pairs (the in-process view of `/v1/stats`).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut pairs: Vec<(&'static str, u64)> = self.shared.counters.as_pairs().to_vec();
        let totals = *self
            .shared
            .supervisor_totals
            .lock()
            .expect("totals poisoned");
        pairs.extend(totals.as_pairs());
        pairs
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, peer)) => {
                // The listener is nonblocking (for shutdown polling);
                // accepted streams must not inherit that.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("cocoa-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(e) => shared.log(&format!("cannot spawn handler for {peer}: {e}")),
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    shared.log(&format!(
        "draining {} in-flight connection(s)",
        handlers.iter().filter(|h| !h.is_finished()).count()
    ));
    for handle in handlers {
        let _ = handle.join();
    }
    shared.persist_manifest();
    shared.log("drained, bye");
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = error_response(&mut stream, 400, "Bad Request", "protocol", &e);
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::respond(&mut stream, 200, "OK", "text/plain", &[], b"ok\n");
        }
        ("GET", "/v1/spec") => {
            let _ = http::respond(
                &mut stream,
                200,
                "OK",
                "application/json",
                &[],
                example_spec().as_bytes(),
            );
        }
        ("GET", "/v1/stats") => {
            let _ = http::respond(
                &mut stream,
                200,
                "OK",
                "application/json",
                &[],
                shared.stats_json().as_bytes(),
            );
        }
        ("GET", "/v1/fleet") => {
            let body = shared
                .fleet
                .lock()
                .expect("fleet poisoned")
                .to_status_json(shared.started.elapsed());
            let _ = http::respond(
                &mut stream,
                200,
                "OK",
                "application/json",
                &[],
                body.as_bytes(),
            );
        }
        ("POST", "/v1/shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.log("shutdown requested over HTTP");
            let _ = http::respond(
                &mut stream,
                200,
                "OK",
                "application/json",
                &[],
                b"{\"kind\":\"serve.shutdown\",\"draining\":true}\n",
            );
        }
        ("POST", "/v1/runs") => handle_run(&mut stream, &shared, &request.body),
        (method, path) => {
            let _ = error_response(
                &mut stream,
                404,
                "Not Found",
                "protocol",
                &format!("no route {method} {path}"),
            );
        }
    }
}

/// Writes a one-line JSON error body with the given HTTP status.
fn error_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    kind: &str,
    detail: &str,
) -> std::io::Result<()> {
    let mut w = ObjectWriter::new();
    w.str_field("kind", "serve.error")
        .str_field("stage", kind)
        .str_field("detail", detail);
    let mut body = w.finish();
    body.push('\n');
    http::respond(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    )
}

/// HTTP status for a terminal job failure, by supervisor failure tag.
fn failure_status(kind: &str) -> (u16, &'static str) {
    match kind {
        "validation" => (400, "Bad Request"),
        "deadline" => (504, "Gateway Timeout"),
        _ => (500, "Internal Server Error"),
    }
}

/// Serves one completed result with its cache-provenance headers.
fn respond_result(stream: &mut TcpStream, cache: &str, result: &JobResult) {
    let headers = [
        ("X-Cocoa-Cache", cache.to_string()),
        (
            "X-Cocoa-Fingerprint",
            format!("{:016x}", result.fingerprint),
        ),
    ];
    let _ = http::respond(
        stream,
        200,
        "OK",
        "application/x-ndjson",
        &headers,
        &result.body,
    );
}

fn handle_run(stream: &mut TcpStream, shared: &Arc<Shared>, body: &[u8]) {
    ServeCounters::bump(&shared.counters.requests);
    let spec_text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            ServeCounters::bump(&shared.counters.rejected);
            let _ = error_response(
                stream,
                400,
                "Bad Request",
                "validation",
                "body is not UTF-8",
            );
            return;
        }
    };
    let request = match parse_spec(spec_text) {
        Ok(r) => r,
        Err(e) => {
            ServeCounters::bump(&shared.counters.rejected);
            let _ = error_response(stream, 400, "Bad Request", "validation", &e);
            return;
        }
    };
    let fingerprint = request_fingerprint(&request);
    match shared.registry.admit(fingerprint) {
        Admission::Cached(result) => {
            ServeCounters::bump(&shared.counters.cache_hits);
            shared.log(&format!("{fingerprint:016x} served from cache"));
            respond_result(stream, "hit", &result);
        }
        Admission::Joined(cell) => {
            ServeCounters::bump(&shared.counters.joined);
            shared.log(&format!("{fingerprint:016x} joined in-flight run"));
            match cell.wait() {
                Ok(result) => respond_result(stream, "join", &result),
                Err(error) => {
                    let (status, reason) = failure_status(error.kind);
                    let _ = error_response(stream, status, reason, error.kind, &error.detail);
                }
            }
        }
        Admission::Fresh(_cell) => {
            ServeCounters::bump(&shared.counters.accepted);
            shared.log(&format!("{fingerprint:016x} accepted, executing"));
            match lead_run(shared, &request, fingerprint) {
                Ok(result) => respond_result(stream, "miss", &result),
                Err(error) => {
                    let (status, reason) = failure_status(error.kind);
                    let _ = error_response(stream, status, reason, error.kind, &error.detail);
                }
            }
        }
    }
}

/// Leader path: execute the run under supervision, publish the result
/// to joiners and caches, optionally persist it.
fn lead_run(
    shared: &Arc<Shared>,
    request: &ServeRequest,
    fingerprint: u64,
) -> Result<Arc<JobResult>, JobError> {
    let fleet_index = shared.fleet.lock().expect("fleet poisoned").grow(1);
    shared.acquire_slot();
    let supervisor = Supervisor::new(SupervisorConfig {
        // The serve layer owns retry policy at the request level (a
        // failed fingerprint may simply be resubmitted), so each run
        // gets exactly one supervised attempt.
        max_attempts: 1,
        deadline: shared.cfg.job_deadline,
        ..SupervisorConfig::default()
    });
    let observer_shared = Arc::clone(shared);
    let observer: JobObserver = Arc::new(move |event| {
        let remapped = remap_event(event, fleet_index);
        observer_shared
            .fleet
            .lock()
            .expect("fleet poisoned")
            .observe(remapped);
    });
    let exec_shared = Arc::clone(shared);
    let report = supervisor.map_seeded_observed(
        vec![request.clone()],
        |r: &ServeRequest| r.scenario.seed,
        move |_index, req| Ok(execute(&exec_shared, req)),
        Some(observer),
    );
    shared.release_slot();
    shared
        .supervisor_totals
        .lock()
        .expect("totals poisoned")
        .merge(&report.counters);
    let outcome = report
        .outcomes
        .into_iter()
        .next()
        .expect("one job in, one outcome out");
    match outcome.result {
        Ok((metrics, telemetry)) => {
            ServeCounters::bump(&shared.counters.executed);
            let metrics_bytes = encode_metrics(&metrics);
            let result = JobResult {
                fingerprint,
                body: build_body(&telemetry, fingerprint, &metrics, &metrics_bytes),
                metrics: metrics_bytes,
            };
            persist_result(shared, &result);
            shared.registry.complete(fingerprint, Ok(result))
        }
        Err(failure) => {
            ServeCounters::bump(&shared.counters.failed);
            shared.log(&format!("{fingerprint:016x} failed: {failure}"));
            shared.registry.complete(
                fingerprint,
                Err(JobError {
                    kind: failure.kind(),
                    detail: failure.to_string(),
                }),
            )
        }
    }
}

/// Rewrites a single-job supervisor event onto the server-global fleet
/// index space.
fn remap_event(event: JobEvent, fleet_index: usize) -> JobEvent {
    match event {
        JobEvent::Started { attempt, .. } => JobEvent::Started {
            index: fleet_index,
            attempt,
        },
        JobEvent::Completed { attempts, .. } => JobEvent::Completed {
            index: fleet_index,
            attempts,
        },
        JobEvent::Retrying { attempt, kind, .. } => JobEvent::Retrying {
            index: fleet_index,
            attempt,
            kind,
        },
        JobEvent::Failed { attempts, kind, .. } => JobEvent::Failed {
            index: fleet_index,
            attempts,
            kind,
        },
    }
}

/// Runs one request to completion, choosing the cheapest faithful
/// path.
///
/// Untraced requests go through the warm-artifact cache: fork from the
/// family's time-zero snapshot when cached, build-and-cache the
/// artifacts otherwise. Traced requests always run the exact local
/// `cocoa-run` path — a warm fork skips calibration/setup spans, which
/// would make the streamed trace differ from `--trace-out`, and zero
/// observer effect outranks speed.
fn execute(shared: &Arc<Shared>, request: &ServeRequest) -> (RunMetrics, Telemetry) {
    if request.telemetry == TelemetryLevel::Off {
        let family = warm_fingerprint(&request.scenario);
        if let Some(artifacts) = shared.registry.warm_get(family) {
            if let Ok(run) = artifacts.fork(&request.scenario, Telemetry::off()) {
                ServeCounters::bump(&shared.counters.warm_forks);
                return run.finish();
            }
        }
        ServeCounters::bump(&shared.counters.cold_starts);
        let artifacts = WarmArtifacts::build(&request.scenario);
        let forked = artifacts.fork(&request.scenario, Telemetry::off());
        shared.registry.warm_put(family, Arc::new(artifacts));
        if let Ok(run) = forked {
            return run.finish();
        }
        // Unreachable in practice (fresh artifacts always match their
        // own scenario), but a cold run is always a correct answer.
        return SimRun::new(&request.scenario, Telemetry::off()).finish();
    }
    ServeCounters::bump(&shared.counters.cold_starts);
    let mut telemetry = Telemetry::new(request.telemetry);
    if let Some(interval) = request.sample_interval {
        telemetry.set_sample_interval(interval);
    }
    SimRun::new(&request.scenario, telemetry).finish()
}

/// Assembles the response body: the telemetry JSONL exactly as
/// `--trace-out` writes it, then one `serve.metrics` trailer line
/// carrying the byte-exact metrics codec output as hex.
fn build_body(
    telemetry: &Telemetry,
    fingerprint: u64,
    metrics: &RunMetrics,
    metrics_bytes: &[u8],
) -> Vec<u8> {
    let mut body = telemetry.to_jsonl(true).into_bytes();
    let mut w = ObjectWriter::new();
    w.str_field("kind", "serve.metrics")
        .str_field("fingerprint", &format!("{fingerprint:016x}"))
        .u64_field("metrics_crc", u64::from(crc32(metrics_bytes)))
        .f64_field("mean_error_m", metrics.mean_error_over_time())
        .str_field("metrics_hex", &http::to_hex(metrics_bytes));
    body.extend_from_slice(w.finish().as_bytes());
    body.push(b'\n');
    body
}

// ---------------------------------------------------------------------------
// Persistence: per-job result files through the snapshot container.

/// Encodes one result as a CRC-guarded snapshot container.
fn encode_job(result: &JobResult) -> Vec<u8> {
    let mut meta = ObjectWriter::new();
    // Hex, not a JSON number: fingerprints use all 64 bits and JSON
    // numbers only round-trip integers up to 2^53.
    meta.str_field("kind", JOB_KIND)
        .str_field("fingerprint", &format!("{:016x}", result.fingerprint));
    let mut body = Vec::new();
    put_bytes(&mut body, &result.body);
    let mut metrics = Vec::new();
    put_bytes(&mut metrics, &result.metrics);
    let mut w = SnapshotWriter::new(meta.finish());
    w.push_section("body", body);
    w.push_section("metrics", metrics);
    w.finish()
}

/// Decodes and integrity-checks one persisted result.
fn decode_job(bytes: &[u8]) -> Result<JobResult, String> {
    let snap = Snapshot::parse(bytes).map_err(|e| e.to_string())?;
    let wanted = format!("\"kind\":\"{JOB_KIND}\"");
    if !snap.meta().contains(&wanted) {
        return Err(format!("not a serve job (meta: {})", snap.meta()));
    }
    let meta = crate::tracefile::parse_flat_object(snap.meta())?;
    let fingerprint = meta
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "job meta missing fingerprint".to_string())?;
    let mut r = snap.section("body").map_err(|e| e.to_string())?;
    let body = r.bytes().map_err(|e| e.to_string())?.to_vec();
    r.finish().map_err(|e| e.to_string())?;
    let mut r = snap.section("metrics").map_err(|e| e.to_string())?;
    let metrics = r.bytes().map_err(|e| e.to_string())?.to_vec();
    r.finish().map_err(|e| e.to_string())?;
    // The metrics must still decode — a job file that lies about its
    // payload must not enter the cache.
    decode_metrics(&metrics).map_err(|e| e.to_string())?;
    Ok(JobResult {
        fingerprint,
        body,
        metrics,
    })
}

/// Persists one completed result under `<state_dir>/<fp>.job`
/// (atomic tmp + rename).
fn persist_result(shared: &Shared, result: &JobResult) {
    let Some(dir) = &shared.cfg.state_dir else {
        return;
    };
    let path = dir.join(format!("{:016x}.job", result.fingerprint));
    let tmp = path.with_extension("job.tmp");
    let stored =
        std::fs::write(&tmp, encode_job(result)).and_then(|()| std::fs::rename(&tmp, &path));
    match stored {
        Ok(()) => ServeCounters::bump(&shared.counters.persisted),
        Err(e) => shared.log(&format!("cannot persist {}: {e}", path.display())),
    }
}

/// Loads every `.job` file in the state directory into the results
/// cache. Corrupt or foreign files are skipped with a log line, never
/// a startup failure.
fn restore_results(shared: &Shared, dir: &Path) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            shared.log(&format!("cannot scan {}: {e}", dir.display()));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("job") {
            continue;
        }
        let decoded = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode_job(&bytes));
        match decoded {
            Ok(result) => {
                if shared.registry.insert_done(result) {
                    ServeCounters::bump(&shared.counters.restored);
                }
            }
            Err(e) => shared.log(&format!("skipping {}: {e}", path.display())),
        }
    }
    let restored = shared.counters.restored.load(Ordering::Relaxed);
    if restored > 0 {
        shared.log(&format!("restored {restored} cached result(s)"));
    }
}
