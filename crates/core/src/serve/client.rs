//! The bundled `cocoa-serve` client: submit specs, tail JSONL streams,
//! decode final metrics — all over `std::net`, no external tools.
//!
//! Every helper opens one connection, sends one request and reads one
//! `Connection: close` response. [`submit_tailed`] additionally relays
//! each complete body line to a writer *as it arrives*, which is what
//! `cocoa-serve --submit` uses to tail a run from a terminal.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::executor::manifest::decode_metrics;
use crate::metrics::RunMetrics;

use super::http::from_hex;

/// One parsed HTTP response.
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// Response headers as `(name, value)` pairs, order preserved.
    pub headers: Vec<(String, String)>,
    /// The raw body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `X-Cocoa-Cache` provenance (`miss`, `join` or `hit`).
    pub fn cache_status(&self) -> Option<&str> {
        self.header("X-Cocoa-Cache")
    }

    /// The body as (lossy) UTF-8.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The telemetry portion of a run body: everything before the
    /// `serve.metrics` trailer line — byte-for-byte what a local run
    /// would have written with `--trace-out`.
    pub fn telemetry_jsonl(&self) -> String {
        let body = self.body_str();
        match body.rfind("{\"kind\":\"serve.metrics\"") {
            Some(pos) => body[..pos].to_string(),
            None => body,
        }
    }

    /// The `serve.metrics` trailer line, if present.
    fn metrics_line(&self) -> Option<String> {
        let body = self.body_str();
        let pos = body.rfind("{\"kind\":\"serve.metrics\"")?;
        Some(body[pos..].trim_end().to_string())
    }

    /// Decodes the final [`RunMetrics`] from the trailer line. The
    /// hex payload is the byte-exact `encode_metrics` form, so the
    /// decoded value equals the server's local metrics exactly.
    ///
    /// # Errors
    ///
    /// A message if the body has no trailer, the hex is malformed, or
    /// the metrics codec rejects the payload.
    pub fn metrics(&self) -> Result<RunMetrics, String> {
        let line = self
            .metrics_line()
            .ok_or_else(|| "response has no serve.metrics line".to_string())?;
        let object = crate::tracefile::parse_flat_object(&line)?;
        let hex = object
            .get("metrics_hex")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "serve.metrics line has no metrics_hex".to_string())?;
        let bytes = from_hex(hex)?;
        decode_metrics(&bytes).map_err(|e| e.to_string())
    }
}

/// Sends one request and reads the whole response.
///
/// # Errors
///
/// A message on connection, write or read failure, or a malformed
/// response head.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<ClientResponse, String> {
    request_tailed(addr, method, path, body, None)
}

/// Like [`request`], but relays each complete body line to `tail` as
/// it arrives off the socket.
///
/// # Errors
///
/// As [`request`]; tail-writer errors are ignored (the response is
/// still returned in full).
pub fn request_tailed(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    mut tail: Option<&mut dyn Write>,
) -> Result<ClientResponse, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    read_response(&mut stream, &mut tail)
}

fn read_response(
    stream: &mut TcpStream,
    tail: &mut Option<&mut dyn Write>,
) -> Result<ClientResponse, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("connection closed before response head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{status_line}'"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_string();
            let value = value.trim().to_string();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = buf[head_len + 4..].to_vec();
    let mut emitted = emit_lines(tail, &body, 0);
    loop {
        if let Some(expected) = content_length {
            if body.len() >= expected {
                body.truncate(expected);
                break;
            }
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            // `Connection: close` — EOF is the end of body when the
            // server sent no Content-Length.
            if content_length.map(|e| body.len() < e).unwrap_or(false) {
                return Err("connection closed mid-body".into());
            }
            break;
        }
        body.extend_from_slice(&chunk[..n]);
        emitted = emit_lines(tail, &body, emitted);
    }
    // Flush any unterminated final line.
    if emitted < body.len() {
        if let Some(out) = tail.as_mut() {
            let _ = out.write_all(&body[emitted..]);
            let _ = out.flush();
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Writes every complete (newline-terminated) line past `from` to the
/// tail writer; returns the new high-water mark.
fn emit_lines(tail: &mut Option<&mut dyn Write>, body: &[u8], from: usize) -> usize {
    let Some(out) = tail.as_mut() else {
        return from;
    };
    let Some(last_newline) = body[from..].iter().rposition(|&b| b == b'\n') else {
        return from;
    };
    let upto = from + last_newline + 1;
    let _ = out.write_all(&body[from..upto]);
    let _ = out.flush();
    upto
}

/// POSTs a spec to `/v1/runs` and returns the full response.
///
/// # Errors
///
/// As [`request`].
pub fn submit(addr: &str, spec: &str) -> Result<ClientResponse, String> {
    request(addr, "POST", "/v1/runs", spec.as_bytes())
}

/// POSTs a spec and tails the streamed JSONL to `out` line-by-line.
///
/// # Errors
///
/// As [`request`].
pub fn submit_tailed(
    addr: &str,
    spec: &str,
    out: &mut dyn Write,
) -> Result<ClientResponse, String> {
    request_tailed(addr, "POST", "/v1/runs", spec.as_bytes(), Some(out))
}

/// GETs a path (health, stats, fleet, spec template).
///
/// # Errors
///
/// As [`request`].
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, String> {
    request(addr, "GET", path, b"")
}

/// Asks the server to begin a graceful drain.
///
/// # Errors
///
/// As [`request`].
pub fn shutdown(addr: &str) -> Result<ClientResponse, String> {
    request(addr, "POST", "/v1/shutdown", b"")
}
