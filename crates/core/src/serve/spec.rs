//! Request specs: the wire form of a scenario.
//!
//! A serve request is one flat JSON object whose keys mirror the
//! `cocoa-run` command line (`robots`, `period_s`, `estimator`, …).
//! Parsing is **fail-closed**: an unknown key, a mistyped value or a
//! contradictory combination rejects the whole request — a server must
//! never silently run a different experiment than the client described.
//!
//! The parsed request reuses [`Scenario`]'s own builder and
//! validation, so the wire path and the CLI path can never drift apart
//! on what constitutes a valid experiment.

use cocoa_localization::estimator::{EstimatorMode, RfAlgorithm};
use cocoa_localization::kernel::{GridKernel, GridPrecision};
use cocoa_multicast::protocol::MulticastProtocol;
use cocoa_sim::faults::FaultPlan;
use cocoa_sim::telemetry::TelemetryLevel;
use cocoa_sim::time::{SimDuration, SimTime};

use crate::runner::scenario_fingerprint;
use crate::scenario::Scenario;
use crate::tracefile::{parse_flat_object, JsonValue};

/// A fully validated run request: the scenario to simulate plus the
/// observation knobs that shape the streamed response.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The validated experiment configuration.
    pub scenario: Scenario,
    /// Telemetry detail for the streamed JSONL body.
    pub telemetry: TelemetryLevel,
    /// Per-robot timeline sample interval override.
    pub sample_interval: Option<SimDuration>,
}

fn num(key: &str, value: &JsonValue) -> Result<f64, String> {
    value
        .as_f64()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("'{key}' must be a finite number"))
}

fn uint(key: &str, value: &JsonValue) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn text<'v>(key: &str, value: &'v JsonValue) -> Result<&'v str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("'{key}' must be a string"))
}

fn flag(key: &str, value: &JsonValue) -> Result<bool, String> {
    match value {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("'{key}' must be true or false")),
    }
}

/// Parses one spec object into a validated [`ServeRequest`].
///
/// # Errors
///
/// A human-readable message naming the offending key: malformed JSON,
/// an unknown key, a mistyped value, or a spec that parses but
/// describes an invalid scenario (the same validation `cocoa-run`
/// applies to its flags).
pub fn parse_spec(spec: &str) -> Result<ServeRequest, String> {
    let object = parse_flat_object(spec)?;
    let mut b = Scenario::builder();
    let mut static_team = false;
    let mut speed_keys = false;
    let mut faults_preset: Option<String> = None;
    let mut telemetry = TelemetryLevel::Off;
    let mut sample_interval = None;
    for (key, value) in &object {
        match key.as_str() {
            "seed" => {
                b.seed(uint(key, value)?);
            }
            "robots" => {
                b.robots(uint(key, value)? as usize);
            }
            "equipped" => {
                b.equipped(uint(key, value)? as usize);
            }
            "duration_s" => {
                b.duration(SimDuration::from_secs(uint(key, value)?));
            }
            "period_s" => {
                b.beacon_period(SimDuration::from_secs(uint(key, value)?));
            }
            "window_s" => {
                b.transmit_window(SimDuration::from_secs(uint(key, value)?));
            }
            "beacons" => {
                let k = uint(key, value)?;
                let k = u32::try_from(k).map_err(|_| format!("'{key}' too large"))?;
                b.beacons_per_window(k);
            }
            "v_min" => {
                speed_keys = true;
                b.v_min(num(key, value)?);
            }
            "v_max" => {
                speed_keys = true;
                b.v_max(num(key, value)?);
            }
            "static" => static_team = flag(key, value)?,
            "mode" => match text(key, value)? {
                "cocoa" => {
                    b.mode(EstimatorMode::Cocoa);
                }
                "rf-only" => {
                    b.mode(EstimatorMode::RfOnly);
                }
                "odometry" => {
                    b.mode(EstimatorMode::OdometryOnly);
                }
                other => return Err(format!("unknown mode '{other}'")),
            },
            "multicast" => {
                let v = text(key, value)?;
                let protocol = MulticastProtocol::parse(v)
                    .ok_or_else(|| format!("unknown multicast protocol '{v}'"))?;
                b.multicast(protocol);
            }
            "estimator" => match text(key, value)? {
                "bayes" => {
                    b.rf_algorithm(RfAlgorithm::Bayes);
                }
                "multilateration" => {
                    b.rf_algorithm(RfAlgorithm::Multilateration);
                }
                "ekf" => {
                    b.rf_algorithm(RfAlgorithm::Ekf);
                }
                other => return Err(format!("unknown estimator '{other}'")),
            },
            "grid_m" => {
                b.grid_resolution(num(key, value)?);
            }
            "grid_kernel" => match text(key, value)? {
                "simd" => {
                    b.grid_kernel(GridKernel::Simd);
                }
                "scalar" => {
                    b.grid_kernel(GridKernel::Scalar);
                }
                other => return Err(format!("unknown grid kernel '{other}'")),
            },
            "grid_precision" => match text(key, value)? {
                "f64" => {
                    b.grid_precision(GridPrecision::F64);
                }
                "f32" => {
                    b.grid_precision(GridPrecision::F32);
                }
                other => return Err(format!("unknown grid precision '{other}'")),
            },
            "grid_fused" => {
                b.grid_fused(flag(key, value)?);
            }
            "grid_adaptive" => {
                b.grid_adaptive(flag(key, value)?);
            }
            "coordination" => {
                b.coordination(flag(key, value)?);
            }
            "sync" => {
                b.sync_enabled(flag(key, value)?);
            }
            "relay" => {
                b.relay_beaconing(flag(key, value)?);
            }
            "packet_loss" => {
                b.packet_loss(num(key, value)?);
            }
            "clock_skew_ppm" => {
                b.clock_skew_ppm(num(key, value)?);
            }
            "guard_band_s" => {
                b.guard_band(SimDuration::from_secs_f64(num(key, value)?));
            }
            "snapshot_s" => {
                b.snapshots([SimTime::from_secs_f64(num(key, value)?)]);
            }
            "failover_missed_periods" => {
                let k = uint(key, value)?;
                let k = u32::try_from(k).map_err(|_| format!("'{key}' too large"))?;
                b.failover_missed_periods(k);
            }
            "entropy_watchdog_frac" => {
                b.entropy_watchdog_frac(num(key, value)?);
            }
            "outlier_gate_m" => {
                b.outlier_gate_m(num(key, value)?);
            }
            "faults" => faults_preset = Some(text(key, value)?.to_string()),
            "telemetry" => {
                let v = text(key, value)?;
                telemetry = TelemetryLevel::parse(v)
                    .ok_or_else(|| format!("unknown telemetry level '{v}'"))?;
            }
            "sample_interval_s" => {
                let s = num(key, value)?;
                if s <= 0.0 {
                    return Err("'sample_interval_s' must be positive".into());
                }
                sample_interval = Some(SimDuration::from_secs_f64(s));
            }
            other => return Err(format!("unknown spec key '{other}'")),
        }
    }
    if static_team {
        // `static` pins every speed; explicit speeds alongside it are a
        // contradiction, not an ordering puzzle.
        if speed_keys {
            return Err("'static' conflicts with 'v_min'/'v_max'".into());
        }
        b.static_team();
    }
    let mut scenario = b.try_build()?;
    if let Some(name) = faults_preset {
        // The preset needs the final duration/team size, so it is
        // resolved after every other key (mirrors the cocoa-run CLI).
        let plan =
            FaultPlan::preset(&name, scenario.duration, scenario.num_robots).ok_or_else(|| {
                format!(
                    "unknown fault schedule '{name}' (available: {})",
                    cocoa_sim::faults::PRESET_NAMES.join(", ")
                )
            })?;
        scenario.faults = plan;
        scenario.validate()?;
    }
    Ok(ServeRequest {
        scenario,
        telemetry,
        sample_interval,
    })
}

/// A commented-free starter spec (every omitted key takes the paper's
/// default, exactly like `cocoa-run` with no flags).
pub fn example_spec() -> String {
    concat!(
        "{\n",
        "  \"seed\": 42,\n",
        "  \"robots\": 12,\n",
        "  \"equipped\": 6,\n",
        "  \"duration_s\": 300,\n",
        "  \"period_s\": 100,\n",
        "  \"mode\": \"cocoa\",\n",
        "  \"estimator\": \"bayes\",\n",
        "  \"telemetry\": \"off\"\n",
        "}\n"
    )
    .to_string()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The cache key for one request: the scenario fingerprint mixed with
/// the observation knobs. Two requests for the same scenario at
/// different telemetry levels must never share a cached body — their
/// JSONL streams differ.
pub fn request_fingerprint(request: &ServeRequest) -> u64 {
    let level = match request.telemetry {
        TelemetryLevel::Off => 0u64,
        TelemetryLevel::Counters => 1,
        TelemetryLevel::Timeline => 2,
        TelemetryLevel::Full => 3,
    };
    let interval = request
        .sample_interval
        .map(|d| d.as_micros())
        .unwrap_or(u64::MAX);
    let base = scenario_fingerprint(&request.scenario);
    splitmix(base ^ splitmix(level.wrapping_add(1)) ^ splitmix(interval))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_builder_defaults() {
        let req = parse_spec("{}").unwrap();
        assert_eq!(req.scenario, Scenario::builder().build());
        assert_eq!(req.telemetry, TelemetryLevel::Off);
        assert!(req.sample_interval.is_none());
    }

    #[test]
    fn keys_reach_the_builder() {
        let req = parse_spec(
            "{\"seed\": 7, \"robots\": 10, \"equipped\": 4, \"duration_s\": 120,\n \
             \"period_s\": 50, \"estimator\": \"ekf\", \"telemetry\": \"full\",\n \
             \"sample_interval_s\": 2.5}",
        )
        .unwrap();
        assert_eq!(req.scenario.seed, 7);
        assert_eq!(req.scenario.num_robots, 10);
        assert_eq!(req.scenario.num_equipped, 4);
        assert_eq!(req.telemetry, TelemetryLevel::Full);
        assert_eq!(req.sample_interval, Some(SimDuration::from_secs_f64(2.5)));
    }

    #[test]
    fn parsing_fails_closed() {
        assert!(parse_spec("not json").is_err());
        assert!(parse_spec("{\"robots\": \"many\"}").is_err(), "mistyped");
        assert!(parse_spec("{\"robotz\": 5}").is_err(), "unknown key");
        assert!(parse_spec("{\"mode\": \"psychic\"}").is_err());
        assert!(
            parse_spec("{\"static\": true, \"v_max\": 3.0}").is_err(),
            "static vs explicit speeds"
        );
        assert!(
            parse_spec("{\"robots\": 4, \"equipped\": 9}").is_err(),
            "scenario validation runs"
        );
    }

    #[test]
    fn example_spec_round_trips() {
        let req = parse_spec(&example_spec()).unwrap();
        assert_eq!(req.scenario.num_robots, 12);
    }

    #[test]
    fn observation_knobs_split_the_request_fingerprint() {
        let base = parse_spec("{\"robots\": 10, \"equipped\": 5}").unwrap();
        let traced =
            parse_spec("{\"robots\": 10, \"equipped\": 5, \"telemetry\": \"full\"}").unwrap();
        let sampled =
            parse_spec("{\"robots\": 10, \"equipped\": 5, \"sample_interval_s\": 1.0}").unwrap();
        let fps = [
            request_fingerprint(&base),
            request_fingerprint(&traced),
            request_fingerprint(&sampled),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
        assert_eq!(request_fingerprint(&base), fps[0], "deterministic");
    }
}
