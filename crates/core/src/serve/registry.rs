//! The job registry: single-flight dedup and the two cache layers.
//!
//! Three structures keep repeat traffic cheap without ever running the
//! same experiment twice concurrently:
//!
//! - **Single-flight map.** The first request for a fingerprint becomes
//!   the *leader* and executes; concurrent identical requests become
//!   *joiners* that block on the leader's [`JobCell`] and receive the
//!   byte-identical body. Failures are delivered to every joiner and
//!   then forgotten — a failed fingerprint may be retried.
//! - **Results cache.** Completed bodies, bounded FIFO. A later
//!   identical request is served without touching the simulator.
//! - **Warm-artifact cache.** [`WarmArtifacts`] keyed by the
//!   scenario-immutable [`warm_fingerprint`](crate::runner::warm_fingerprint):
//!   repeat traffic in the same scenario *family* (same team, RF
//!   environment and calibration; different horizon/schedule) forks
//!   from a time-zero snapshot instead of cold-starting setup.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::runner::WarmArtifacts;

/// How many completed bodies the results cache retains (FIFO).
pub const RESULTS_CAP: usize = 256;
/// How many scenario families the warm-artifact cache retains (FIFO).
pub const WARM_CAP: usize = 32;

/// Monotonic serve-layer counters, exported as `serve.*` pairs.
#[derive(Default)]
pub struct ServeCounters {
    /// POSTs to `/v1/runs`, before any parsing.
    pub requests: AtomicU64,
    /// Requests admitted as single-flight leaders.
    pub accepted: AtomicU64,
    /// Requests rejected before admission (bad JSON, bad scenario).
    pub rejected: AtomicU64,
    /// Requests answered from the results cache.
    pub cache_hits: AtomicU64,
    /// Requests that joined an identical in-flight run.
    pub joined: AtomicU64,
    /// Runs actually executed to completion.
    pub executed: AtomicU64,
    /// Executions forked from cached warm artifacts.
    pub warm_forks: AtomicU64,
    /// Executions that built state from scratch.
    pub cold_starts: AtomicU64,
    /// Executions that terminally failed.
    pub failed: AtomicU64,
    /// Results restored from the state directory at startup.
    pub restored: AtomicU64,
    /// Results persisted to the state directory.
    pub persisted: AtomicU64,
}

impl ServeCounters {
    /// Relaxed increment — counters are monotonic telemetry, never
    /// control flow.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Every counter as a stable `(name, value)` list, in declaration
    /// order, under the `serve.` prefix.
    pub fn as_pairs(&self) -> [(&'static str, u64); 11] {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        [
            ("serve.requests", get(&self.requests)),
            ("serve.accepted", get(&self.accepted)),
            ("serve.rejected", get(&self.rejected)),
            ("serve.cache_hits", get(&self.cache_hits)),
            ("serve.joined", get(&self.joined)),
            ("serve.executed", get(&self.executed)),
            ("serve.warm_forks", get(&self.warm_forks)),
            ("serve.cold_starts", get(&self.cold_starts)),
            ("serve.failed", get(&self.failed)),
            ("serve.restored", get(&self.restored)),
            ("serve.persisted", get(&self.persisted)),
        ]
    }
}

/// A completed run, exactly as served: the response body and the
/// byte-exact metrics codec output.
pub struct JobResult {
    /// The request fingerprint this result answers.
    pub fingerprint: u64,
    /// The full response body: telemetry JSONL + `serve.metrics` line.
    pub body: Vec<u8>,
    /// `encode_metrics` bytes (the wire/persistence form).
    pub metrics: Vec<u8>,
}

/// Why a run failed, as delivered to joiners: the supervisor's failure
/// tag plus a human-readable detail.
#[derive(Clone, Debug)]
pub struct JobError {
    /// Stable failure tag (`panic`, `deadline`, `validation`, …).
    pub kind: &'static str,
    /// Human-readable detail for the error body.
    pub detail: String,
}

/// The rendezvous between a single-flight leader and its joiners.
pub struct JobCell {
    slot: Mutex<Option<Result<Arc<JobResult>, JobError>>>,
    ready: Condvar,
}

impl JobCell {
    fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Blocks until the leader fills the cell, then returns its copy.
    pub fn wait(&self) -> Result<Arc<JobResult>, JobError> {
        let mut slot = self.slot.lock().expect("job cell poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("job cell poisoned");
        }
    }

    fn fill(&self, value: Result<Arc<JobResult>, JobError>) {
        *self.slot.lock().expect("job cell poisoned") = Some(value);
        self.ready.notify_all();
    }
}

enum Entry {
    InFlight(Arc<JobCell>),
    Done(Arc<JobResult>),
}

/// How a request was admitted.
pub enum Admission {
    /// First sighting: the caller is the leader and must execute.
    Fresh(Arc<JobCell>),
    /// An identical run is in flight: wait on its cell.
    Joined(Arc<JobCell>),
    /// Already completed: serve straight from cache.
    Cached(Arc<JobResult>),
}

struct Inner {
    entries: HashMap<u64, Entry>,
    done_order: VecDeque<u64>,
    warm: HashMap<u64, Arc<WarmArtifacts>>,
    warm_order: VecDeque<u64>,
}

/// The shared registry (interior-mutex; every method is `&self`).
pub struct Registry {
    inner: Mutex<Inner>,
    results_cap: usize,
    warm_cap: usize,
}

impl Registry {
    /// A registry with the given cache bounds (zero disables a layer).
    pub fn new(results_cap: usize, warm_cap: usize) -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                done_order: VecDeque::new(),
                warm: HashMap::new(),
                warm_order: VecDeque::new(),
            }),
            results_cap,
            warm_cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry poisoned")
    }

    /// Admits one request: cache hit, join, or fresh leadership. The
    /// check-and-insert is atomic under the registry lock, so exactly
    /// one caller per fingerprint ever sees [`Admission::Fresh`].
    pub fn admit(&self, fingerprint: u64) -> Admission {
        let mut inner = self.lock();
        match inner.entries.get(&fingerprint) {
            Some(Entry::Done(result)) => Admission::Cached(Arc::clone(result)),
            Some(Entry::InFlight(cell)) => Admission::Joined(Arc::clone(cell)),
            None => {
                let cell = JobCell::new();
                inner
                    .entries
                    .insert(fingerprint, Entry::InFlight(Arc::clone(&cell)));
                Admission::Fresh(cell)
            }
        }
    }

    /// Leader hand-off: publishes the result (or failure) and wakes
    /// every joiner. Success enters the results cache; failure removes
    /// the fingerprint so a later retry gets fresh leadership.
    pub fn complete(
        &self,
        fingerprint: u64,
        result: Result<JobResult, JobError>,
    ) -> Result<Arc<JobResult>, JobError> {
        let mut inner = self.lock();
        let cell = match inner.entries.get(&fingerprint) {
            Some(Entry::InFlight(cell)) => Some(Arc::clone(cell)),
            _ => None,
        };
        let outcome = match result {
            Ok(result) => {
                let result = Arc::new(result);
                inner
                    .entries
                    .insert(fingerprint, Entry::Done(Arc::clone(&result)));
                inner.done_order.push_back(fingerprint);
                while inner.done_order.len() > self.results_cap {
                    if let Some(oldest) = inner.done_order.pop_front() {
                        if matches!(inner.entries.get(&oldest), Some(Entry::Done(_))) {
                            inner.entries.remove(&oldest);
                        }
                    }
                }
                Ok(result)
            }
            Err(error) => {
                inner.entries.remove(&fingerprint);
                Err(error)
            }
        };
        drop(inner);
        if let Some(cell) = cell {
            cell.fill(outcome.clone());
        }
        outcome
    }

    /// Seeds the results cache directly (the restore-from-disk path).
    /// A fingerprint already present is left untouched.
    pub fn insert_done(&self, result: JobResult) -> bool {
        let mut inner = self.lock();
        if inner.entries.contains_key(&result.fingerprint) {
            return false;
        }
        let fingerprint = result.fingerprint;
        inner
            .entries
            .insert(fingerprint, Entry::Done(Arc::new(result)));
        inner.done_order.push_back(fingerprint);
        true
    }

    /// Fingerprints with cached results, oldest first.
    pub fn done_fingerprints(&self) -> Vec<u64> {
        self.lock().done_order.iter().copied().collect()
    }

    /// Cached warm artifacts for a scenario family, if any.
    pub fn warm_get(&self, warm_fingerprint: u64) -> Option<Arc<WarmArtifacts>> {
        self.lock().warm.get(&warm_fingerprint).cloned()
    }

    /// Caches warm artifacts for a scenario family (FIFO-bounded).
    pub fn warm_put(&self, warm_fingerprint: u64, artifacts: Arc<WarmArtifacts>) {
        let mut inner = self.lock();
        if inner.warm.insert(warm_fingerprint, artifacts).is_none() {
            inner.warm_order.push_back(warm_fingerprint);
        }
        while inner.warm_order.len() > self.warm_cap {
            if let Some(oldest) = inner.warm_order.pop_front() {
                inner.warm.remove(&oldest);
            }
        }
    }

    /// Number of warm scenario families currently cached.
    pub fn warm_len(&self) -> usize {
        self.lock().warm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(fp: u64) -> JobResult {
        JobResult {
            fingerprint: fp,
            body: vec![1, 2, 3],
            metrics: vec![4],
        }
    }

    #[test]
    fn single_flight_admission() {
        let registry = Registry::new(8, 8);
        let Admission::Fresh(cell) = registry.admit(7) else {
            panic!("first sighting must lead");
        };
        assert!(matches!(registry.admit(7), Admission::Joined(_)));
        let published = registry.complete(7, Ok(result(7))).unwrap();
        assert_eq!(cell.wait().unwrap().body, published.body);
        assert!(matches!(registry.admit(7), Admission::Cached(_)));
    }

    #[test]
    fn failure_wakes_joiners_and_allows_retry() {
        let registry = Registry::new(8, 8);
        let Admission::Fresh(_) = registry.admit(9) else {
            panic!("fresh");
        };
        let Admission::Joined(cell) = registry.admit(9) else {
            panic!("joined");
        };
        registry
            .complete(
                9,
                Err(JobError {
                    kind: "panic",
                    detail: "boom".into(),
                }),
            )
            .err()
            .expect("failure propagates");
        let err = cell.wait().err().expect("joiner sees the failure");
        assert_eq!(err.kind, "panic");
        // The fingerprint was forgotten: a retry leads again.
        assert!(matches!(registry.admit(9), Admission::Fresh(_)));
    }

    #[test]
    fn results_cache_evicts_fifo() {
        let registry = Registry::new(2, 2);
        for fp in 1..=3u64 {
            let Admission::Fresh(_) = registry.admit(fp) else {
                panic!("fresh {fp}");
            };
            registry.complete(fp, Ok(result(fp))).unwrap();
        }
        assert!(matches!(registry.admit(1), Admission::Fresh(_)), "evicted");
        assert!(matches!(registry.admit(3), Admission::Cached(_)));
        assert_eq!(registry.done_fingerprints(), vec![2, 3]);
    }

    #[test]
    fn insert_done_is_idempotent() {
        let registry = Registry::new(8, 8);
        assert!(registry.insert_done(result(5)));
        assert!(!registry.insert_done(result(5)));
        assert!(matches!(registry.admit(5), Admission::Cached(_)));
    }
}
