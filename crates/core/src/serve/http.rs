//! A deliberately tiny HTTP/1.1 subset over `std::net`.
//!
//! The serve layer speaks just enough HTTP for `curl`, CI scripts and
//! the bundled client: one request per connection (`Connection:
//! close`), `Content-Length` bodies, no chunked encoding, no keep-
//! alive, no TLS. Both head and body are size-capped so a confused or
//! hostile peer cannot balloon server memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (a spec is a few hundred bytes).
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request: method, path, raw body.
pub struct Request {
    /// The HTTP method, uppercase as received.
    pub method: String,
    /// The request path, query string included verbatim.
    pub path: String,
    /// The raw body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Finds the end of the head (`\r\n\r\n`), returning the offset of the
/// terminator start.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request off the stream. Blocking; the caller owns
/// timeouts via `TcpStream::set_read_timeout`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read request: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| "request line has no path".to_string())?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "unparsable Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("request body too large ({content_length} bytes)"));
    }
    let mut body = buf[head_len + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Writes one complete response and flushes. Every response carries
/// `Connection: close` and an exact `Content-Length`, so clients can
/// either count bytes or read to EOF.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nConnection: close\r\n\
         Content-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Lowercase hex of arbitrary bytes (the wire form of encoded
/// metrics — JSON-safe without escaping).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    out
}

/// Inverse of [`to_hex`]. Rejects odd lengths and non-hex digits.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("hex string has odd length".into());
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| "invalid hex digit".to_string())?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| "invalid hex digit".to_string())?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex");
        assert_eq!(to_hex(&[0x0f, 0xa0]), "0fa0");
    }

    #[test]
    fn head_end_finds_the_terminator() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
