//! Exporting run results: CSV series for plotting, markdown summaries for
//! humans. The `figures` binary and the `cocoa-run` CLI both print
//! through this module so every experiment's output has one format.

use std::fmt::Write as _;

use cocoa_sim::telemetry::{Telemetry, TelemetryEvent};

use crate::executor::supervisor::{JobFailure, SweepReport};
use crate::metrics::RunMetrics;
use crate::scenario::Scenario;

/// The per-second error series as CSV (`t_s,mean_error_m,robots`).
///
/// # Examples
///
/// ```no_run
/// use cocoa_core::prelude::*;
/// use cocoa_core::report;
///
/// let metrics = run(&Scenario::builder().build());
/// std::fs::write("error_series.csv", report::error_series_csv(&metrics)).unwrap();
/// ```
pub fn error_series_csv(metrics: &RunMetrics) -> String {
    let mut out = String::from("t_s,mean_error_m,robots\n");
    for p in &metrics.error_series {
        let _ = writeln!(out, "{:.1},{:.4},{}", p.t_s, p.mean_error_m, p.robots);
    }
    out
}

/// The per-robot energy ledgers as CSV
/// (`robot,tx_j,rx_j,idle_j,sleep_j,wake_j,total_j`).
pub fn energy_csv(metrics: &RunMetrics) -> String {
    let mut out = String::from("robot,tx_j,rx_j,idle_j,sleep_j,wake_j,total_j\n");
    for (i, l) in metrics.energy.per_robot.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.4},{:.4},{:.6},{:.4}",
            i,
            l.tx_uj / 1e6,
            l.rx_uj / 1e6,
            l.idle_uj / 1e6,
            l.sleep_uj / 1e6,
            l.wake_uj / 1e6,
            l.total_j()
        );
    }
    out
}

/// Snapshot CDFs as CSV (`snapshot_t_s,error_m`), one row per robot per
/// snapshot — the raw material of paper Fig. 8.
pub fn snapshots_csv(metrics: &RunMetrics) -> String {
    let mut out = String::from("snapshot_t_s,error_m\n");
    for s in &metrics.snapshots {
        for e in &s.errors_m {
            let _ = writeln!(out, "{:.1},{:.4}", s.time.as_secs_f64(), e);
        }
    }
    out
}

/// Robustness counters as a two-column CSV (`counter,value`) — one row
/// per fault/degradation counter, stable order.
pub fn robustness_csv(metrics: &RunMetrics) -> String {
    let r = &metrics.robustness;
    let mut out = String::from("counter,value\n");
    for (name, value) in [
        ("crashes", r.crashes),
        ("reboots", r.reboots),
        ("failovers", r.failovers),
        ("burst_losses", r.burst_losses),
        ("corrupt_frames_dropped", r.corrupt_frames_dropped),
        ("garbled_frames_delivered", r.garbled_frames_delivered),
        ("outlier_beacons_rejected", r.outlier_beacons_rejected),
        ("flat_posteriors", r.flat_posteriors),
        ("stale_syncs_ignored", r.stale_syncs_ignored),
        ("malformed_sync_bodies", r.malformed_sync_bodies),
    ] {
        let _ = writeln!(out, "{name},{value}");
    }
    out
}

/// Mesh transport counters as CSV (`backend,counter,value`) — one row per
/// [`cocoa_multicast::mesh::MeshStats`] counter, tagged with the backend
/// (`flood`/`odmrp`/`mrmm`) that produced them, so multi-backend sweeps
/// concatenate into one comparable table.
pub fn mesh_csv(scenario: &Scenario, metrics: &RunMetrics) -> String {
    let backend = scenario.multicast.as_str();
    let mut out = String::from("backend,counter,value\n");
    for (name, value) in metrics.mesh.counters() {
        let _ = writeln!(out, "{backend},{name},{value}");
    }
    out
}

/// Per-robot degradation time ledgers as CSV
/// (`robot,healthy_s,degraded_s,dead_reckoning_s,down_s`).
pub fn health_csv(metrics: &RunMetrics) -> String {
    let mut out = String::from("robot,healthy_s,degraded_s,dead_reckoning_s,down_s\n");
    for (i, l) in metrics.health.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{:.1},{:.1},{:.1},{:.1}",
            i, l.healthy_s, l.degraded_s, l.dead_reckoning_s, l.down_s
        );
    }
    out
}

/// End-of-run telemetry counters as CSV (`counter,value`), sorted by
/// name. Empty below `--telemetry counters`.
pub fn telemetry_counters_csv(telemetry: &Telemetry) -> String {
    let mut out = String::from("counter,value\n");
    for (name, value) in telemetry.counters().sorted() {
        let _ = writeln!(out, "{name},{value}");
    }
    out
}

/// The span profile as CSV (`span,total_ns,count,share_of_run`), hottest
/// first. Shares are relative to the `run.total` root span.
pub fn telemetry_spans_csv(telemetry: &Telemetry) -> String {
    let spans = telemetry.spans();
    let root = spans.total_ns("run.total").unwrap_or(0);
    let mut out = String::from("span,total_ns,count,share_of_run\n");
    for s in spans.report() {
        let share = if root > 0 {
            s.total_ns as f64 / root as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "{},{},{},{:.4}", s.name, s.total_ns, s.count, share);
    }
    out
}

/// Per-robot timeline samples as CSV — one row per `robot_sample` event
/// (`t_s,robot,true_x_m,true_y_m,est_x_m,est_y_m,err_m,entropy_frac,energy_j,radio,health`).
/// Empty below `--telemetry timeline`.
pub fn timeline_csv(telemetry: &Telemetry) -> String {
    let mut out = String::from(
        "t_s,robot,true_x_m,true_y_m,est_x_m,est_y_m,err_m,entropy_frac,energy_j,radio,health\n",
    );
    for e in telemetry.events() {
        if let TelemetryEvent::RobotSample {
            robot,
            true_x_m,
            true_y_m,
            est_x_m,
            est_y_m,
            err_m,
            entropy_frac,
            energy_j,
            radio,
            health,
        } = &e.event
        {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},",
                e.t_us as f64 / 1e6,
                robot,
                true_x_m,
                true_y_m,
                est_x_m,
                est_y_m,
                err_m
            );
            if let Some(h) = entropy_frac {
                let _ = write!(out, "{h}");
            }
            let _ = writeln!(out, ",{energy_j},{radio},{health}");
        }
    }
    out
}

/// A human-readable markdown summary of one run.
pub fn markdown_summary(scenario: &Scenario, metrics: &RunMetrics) -> String {
    let team = metrics.energy.team();
    let mut out = String::new();
    let _ = writeln!(out, "## CoCoA run summary\n");
    let _ = writeln!(
        out,
        "- scenario: {} robots ({} equipped), {} simulated, T = {}, t = {}, k = {}, mode = {}, seed = {}",
        scenario.num_robots,
        scenario.num_equipped,
        scenario.duration,
        scenario.beacon_period,
        scenario.transmit_window,
        scenario.beacons_per_window,
        scenario.mode,
        scenario.seed,
    );
    let _ = writeln!(
        out,
        "- localization: mean {:.2} m over time (max {:.2} m); {} fresh fixes",
        metrics.mean_error_over_time(),
        metrics.max_error_over_time(),
        metrics.traffic.fixes
    );
    let _ = writeln!(
        out,
        "- traffic: {} beacons sent, {} received, {} reception losses",
        metrics.traffic.beacons_sent, metrics.traffic.beacons_received, metrics.traffic.collisions
    );
    let _ = writeln!(
        out,
        "- sync: {} delivered, {} missed; mesh control packets {}",
        metrics.traffic.syncs_delivered,
        metrics.traffic.syncs_missed,
        metrics.mesh.control_overhead()
    );
    let mm = &metrics.mesh;
    let _ = writeln!(
        out,
        "- mesh ({}): {} data originated, {} forwarded, {} delivered ({} duplicates); \
         {} queries rebroadcast, {} pruned",
        scenario.multicast.as_str(),
        mm.data_originated,
        mm.data_forwarded,
        mm.data_delivered,
        mm.data_duplicates,
        mm.queries_rebroadcast,
        mm.queries_suppressed,
    );
    let _ = writeln!(
        out,
        "- energy: {:.1} J team total (tx {:.3}, rx {:.3}, idle {:.1}, sleep {:.1}, wake {:.3})",
        team.total_j(),
        team.tx_uj / 1e6,
        team.rx_uj / 1e6,
        team.idle_uj / 1e6,
        team.sleep_uj / 1e6,
        team.wake_uj / 1e6,
    );
    let r = &metrics.robustness;
    if !scenario.faults.is_empty() || *r != Default::default() {
        let _ = writeln!(
            out,
            "- faults: {} crashes, {} reboots, {} failovers; dropped {} burst + {} corrupt frames",
            r.crashes, r.reboots, r.failovers, r.burst_losses, r.corrupt_frames_dropped
        );
        let _ = writeln!(
            out,
            "- degradation: {} outlier beacons rejected, {} flat posteriors vetoed, \
             {} stale SYNCs ignored, {} malformed SYNC bodies",
            r.outlier_beacons_rejected,
            r.flat_posteriors,
            r.stale_syncs_ignored,
            r.malformed_sync_bodies
        );
        let mut healthy = 0.0;
        let mut total = 0.0;
        for l in &metrics.health {
            healthy += l.healthy_s;
            total += l.total_s();
        }
        if total > 0.0 {
            let _ = writeln!(
                out,
                "- health: {:.0}% of robot-time healthy",
                100.0 * healthy / total
            );
        }
    }
    let _ = writeln!(out, "- events processed: {}", metrics.events_processed);
    if !metrics.snapshots.is_empty() {
        let _ = writeln!(out, "\n### Snapshots");
        for s in &metrics.snapshots {
            if s.errors_m.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "- t = {:.0} s: median {:.1} m, P[e<=10m] = {:.2}",
                s.time.as_secs_f64(),
                s.percentile(0.5),
                s.fraction_below(10.0)
            );
        }
    }
    out
}

/// Quotes a CSV field: wraps in double quotes when it contains commas,
/// quotes or newlines, doubling any embedded quotes.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// A supervised sweep's terminal failures as CSV
/// (`point,kind,attempts,detail`) — empty body on a clean sweep.
pub fn sweep_failures_csv(report: &SweepReport<RunMetrics>) -> String {
    let mut out = String::from("point,kind,attempts,detail\n");
    for (i, failure) in report.failures() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            i,
            failure.kind(),
            report.outcomes[i].attempts,
            csv_escape(&failure.detail())
        );
    }
    out
}

/// A human-readable markdown summary of a supervised sweep: per-point
/// outcomes, supervision counters, and — when present — a failure
/// section with classified reasons.
pub fn sweep_markdown(report: &SweepReport<RunMetrics>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Sweep report\n");
    let _ = writeln!(
        out,
        "- points: {} completed, {} failed ({} total)",
        report.completed(),
        report.failed(),
        report.outcomes.len()
    );
    let _ = writeln!(out, "\n| point | outcome | attempts | mean error (m) |");
    let _ = writeln!(out, "|---|---|---|---|");
    for (i, o) in report.outcomes.iter().enumerate() {
        match &o.result {
            Ok(m) => {
                let _ = writeln!(
                    out,
                    "| {} | ok | {} | {:.2} |",
                    i,
                    o.attempts,
                    m.mean_error_over_time()
                );
            }
            Err(f) => {
                let _ = writeln!(out, "| {} | {} | {} | — |", i, f.kind(), o.attempts);
            }
        }
    }
    let _ = writeln!(out, "\n### Supervision counters\n");
    for (name, value) in report.counters.as_pairs() {
        let _ = writeln!(out, "- {name}: {value}");
    }
    if report.failed() > 0 {
        let _ = writeln!(out, "\n### Failures\n");
        for (i, failure) in report.failures() {
            let _ = writeln!(
                out,
                "- point {}: **{}** — {}",
                i,
                failure.kind(),
                failure.detail()
            );
            if let JobFailure::Panic(p) = failure {
                if let Some(bt) = &p.backtrace {
                    let _ = writeln!(out, "\n  ```\n{}\n  ```", bt.trim_end());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use cocoa_sim::time::{SimDuration, SimTime};

    fn small_run() -> (Scenario, RunMetrics) {
        let s = Scenario::builder()
            .seed(3)
            .robots(8)
            .equipped(4)
            .duration(SimDuration::from_secs(60))
            .beacon_period(SimDuration::from_secs(20))
            .grid_resolution(8.0)
            .snapshots([SimTime::from_secs(25)])
            .build();
        let m = run(&s);
        (s, m)
    }

    #[test]
    fn csv_headers_and_shape() {
        let (_, m) = small_run();
        let csv = error_series_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,mean_error_m,robots");
        assert_eq!(lines.len(), m.error_series.len() + 1);
        assert!(lines[1].split(',').count() == 3);
    }

    #[test]
    fn energy_csv_covers_all_robots() {
        let (s, m) = small_run();
        let csv = energy_csv(&m);
        assert_eq!(csv.lines().count(), s.num_robots + 1);
        assert!(csv.starts_with("robot,tx_j"));
    }

    #[test]
    fn snapshots_csv_rows_match_robots() {
        let (s, m) = small_run();
        let csv = snapshots_csv(&m);
        // One header + one row per unequipped robot per snapshot.
        assert_eq!(csv.lines().count(), 1 + (s.num_robots - s.num_equipped));
    }

    #[test]
    fn robustness_csv_lists_every_counter() {
        let (_, m) = small_run();
        let csv = robustness_csv(&m);
        assert!(csv.starts_with("counter,value"));
        assert_eq!(csv.lines().count(), 11, "header + 10 counters");
        assert!(csv.contains("failovers,"));
    }

    #[test]
    fn mesh_csv_tags_every_counter_with_the_backend() {
        let (s, m) = small_run();
        let csv = mesh_csv(&s, &m);
        assert!(csv.starts_with("backend,counter,value"));
        assert_eq!(csv.lines().count(), 11, "header + 10 counters");
        for line in csv.lines().skip(1) {
            assert!(line.starts_with("mrmm,"), "default backend is mrmm: {line}");
        }
        assert!(csv.contains("mrmm,data_forwarded,"));
        assert!(csv.contains("mrmm,queries_suppressed,"));
    }

    #[test]
    fn markdown_names_the_mesh_backend() {
        let (s, m) = small_run();
        let md = markdown_summary(&s, &m);
        assert!(md.contains("- mesh (mrmm):"), "missing mesh line:\n{md}");
    }

    #[test]
    fn health_csv_covers_all_robots() {
        let (s, m) = small_run();
        let csv = health_csv(&m);
        assert_eq!(csv.lines().count(), s.num_robots + 1);
        assert!(csv.starts_with("robot,healthy_s"));
    }

    #[test]
    fn markdown_reports_faults_when_injected() {
        let plan =
            cocoa_sim::faults::FaultPlan::preset("sync-crash", SimDuration::from_secs(60), 8)
                .unwrap();
        let s = Scenario::builder()
            .seed(3)
            .robots(8)
            .equipped(4)
            .duration(SimDuration::from_secs(60))
            .beacon_period(SimDuration::from_secs(20))
            .grid_resolution(8.0)
            .faults(plan)
            .build();
        let m = run(&s);
        let md = markdown_summary(&s, &m);
        assert!(md.contains("- faults:"), "missing faults line:\n{md}");
        assert!(md.contains("- degradation:"));
    }

    #[test]
    fn telemetry_csvs_cover_counters_spans_and_timeline() {
        use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};
        let (s, _) = small_run();
        let (_, t) = crate::runner::run_with_telemetry(&s, Telemetry::new(TelemetryLevel::Full));
        let counters = telemetry_counters_csv(&t);
        assert!(counters.starts_with("counter,value"));
        assert!(counters.contains("traffic.beacons_sent,"), "{counters}");
        let spans = telemetry_spans_csv(&t);
        assert!(spans.contains("run.total,"), "{spans}");
        let timeline = timeline_csv(&t);
        assert!(timeline.lines().count() > 1, "{timeline}");
        assert!(timeline.starts_with("t_s,robot,"));
    }

    #[test]
    fn sweep_report_csv_and_markdown() {
        use crate::executor::supervisor::{CaughtPanic, JobOutcome, SupervisorCounters};
        let (_, m) = small_run();
        let report = SweepReport {
            outcomes: vec![
                JobOutcome {
                    attempts: 1,
                    result: Ok(m),
                },
                JobOutcome {
                    attempts: 3,
                    result: Err(JobFailure::Panic(CaughtPanic {
                        payload: "boom, with a comma".to_string(),
                        backtrace: Some("0: fake_frame".to_string()),
                    })),
                },
            ],
            counters: SupervisorCounters {
                retries: 2,
                panics_caught: 3,
                ..SupervisorCounters::default()
            },
        };
        let csv = sweep_failures_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "point,kind,attempts,detail");
        assert_eq!(lines.len(), 2, "one failure row");
        assert_eq!(lines[1], "1,panic,3,\"boom, with a comma\"");
        let md = sweep_markdown(&report);
        assert!(md.contains("1 completed, 1 failed"), "{md}");
        assert!(md.contains("supervisor.retries: 2"), "{md}");
        assert!(md.contains("**panic** — boom, with a comma"), "{md}");
        assert!(md.contains("0: fake_frame"), "backtrace included:\n{md}");
    }

    #[test]
    fn clean_sweep_csv_is_header_only() {
        let report: SweepReport<RunMetrics> = SweepReport {
            outcomes: Vec::new(),
            counters: Default::default(),
        };
        assert_eq!(sweep_failures_csv(&report), "point,kind,attempts,detail\n");
        assert!(sweep_markdown(&report).contains("0 completed, 0 failed"));
    }

    #[test]
    fn markdown_mentions_the_essentials() {
        let (s, m) = small_run();
        let md = markdown_summary(&s, &m);
        for needle in [
            "CoCoA run summary",
            "localization",
            "energy",
            "sync",
            "Snapshots",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
    }
}
