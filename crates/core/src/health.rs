//! Per-robot degradation state machine and its time ledger.
//!
//! Graceful degradation only counts if you can see it happen. Each robot
//! carries a [`HealthMonitor`] that classifies it into one of four
//! [`DegradationState`]s after every transmit window and accumulates the
//! time spent in each; the final [`HealthLedger`]s are surfaced in
//! `RunMetrics` so chaos experiments can assert "the team degraded, it did
//! not cliff-dive".

use cocoa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How healthy a robot's localization pipeline currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationState {
    /// Fresh RF fix this window (or ground-truth-equipped robot).
    Healthy,
    /// Coasting on a recent fix plus odometry.
    Degraded,
    /// No usable fix for a while: pure odometry dead reckoning.
    DeadReckoning,
    /// Crashed — not moving, not listening, not transmitting.
    Down,
}

impl DegradationState {
    /// Stable machine name of this state (report columns, telemetry events).
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationState::Healthy => "healthy",
            DegradationState::Degraded => "degraded",
            DegradationState::DeadReckoning => "dead-reckoning",
            DegradationState::Down => "down",
        }
    }
}

impl std::fmt::Display for DegradationState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Seconds a robot spent in each degradation state over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthLedger {
    /// Time with a fresh fix.
    pub healthy_s: f64,
    /// Time coasting on a recent fix.
    pub degraded_s: f64,
    /// Time on pure dead reckoning.
    pub dead_reckoning_s: f64,
    /// Time crashed.
    pub down_s: f64,
}

impl HealthLedger {
    /// Total accounted time, seconds.
    pub fn total_s(&self) -> f64 {
        self.healthy_s + self.degraded_s + self.dead_reckoning_s + self.down_s
    }

    fn add(&mut self, state: DegradationState, dt: SimDuration) {
        let s = dt.as_secs_f64();
        match state {
            DegradationState::Healthy => self.healthy_s += s,
            DegradationState::Degraded => self.degraded_s += s,
            DegradationState::DeadReckoning => self.dead_reckoning_s += s,
            DegradationState::Down => self.down_s += s,
        }
    }
}

/// Tracks one robot's degradation state over time.
///
/// # Examples
///
/// ```
/// use cocoa_core::health::{DegradationState, HealthMonitor};
/// use cocoa_sim::time::SimTime;
///
/// let mut h = HealthMonitor::new(DegradationState::Healthy, SimTime::ZERO);
/// h.transition(SimTime::from_secs(10), DegradationState::Down);
/// let ledger = h.finalize(SimTime::from_secs(25));
/// assert_eq!(ledger.healthy_s, 10.0);
/// assert_eq!(ledger.down_s, 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMonitor {
    state: DegradationState,
    since: SimTime,
    ledger: HealthLedger,
}

impl HealthMonitor {
    /// Starts the monitor in `state` at time `now`.
    pub fn new(state: DegradationState, now: SimTime) -> Self {
        HealthMonitor {
            state,
            since: now,
            ledger: HealthLedger::default(),
        }
    }

    /// The current state.
    pub fn state(&self) -> DegradationState {
        self.state
    }

    /// Moves to `next` at time `now`, closing out the previous interval.
    /// A self-transition is a no-op (time keeps accruing). Returns whether
    /// the state actually changed, so callers can emit transition events
    /// without tracking the previous state themselves.
    pub fn transition(&mut self, now: SimTime, next: DegradationState) -> bool {
        if next == self.state {
            return false;
        }
        self.ledger
            .add(self.state, now.saturating_since(self.since));
        self.state = next;
        self.since = now;
        true
    }

    /// The monitor's complete state as checkpoint data:
    /// `(state, since, partial ledger)`.
    pub fn checkpoint(&self) -> (DegradationState, SimTime, HealthLedger) {
        (self.state, self.since, self.ledger)
    }

    /// Rebuilds a monitor from [`HealthMonitor::checkpoint`] data.
    pub fn from_checkpoint(state: DegradationState, since: SimTime, ledger: HealthLedger) -> Self {
        HealthMonitor {
            state,
            since,
            ledger,
        }
    }

    /// Closes the final interval at `end` and returns the completed ledger.
    pub fn finalize(&self, end: SimTime) -> HealthLedger {
        let mut ledger = self.ledger;
        ledger.add(self.state, end.saturating_since(self.since));
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accounts_all_time() {
        let mut h = HealthMonitor::new(DegradationState::Degraded, SimTime::ZERO);
        h.transition(SimTime::from_secs(5), DegradationState::Healthy);
        h.transition(SimTime::from_secs(12), DegradationState::DeadReckoning);
        h.transition(SimTime::from_secs(20), DegradationState::Down);
        let l = h.finalize(SimTime::from_secs(30));
        assert_eq!(l.degraded_s, 5.0);
        assert_eq!(l.healthy_s, 7.0);
        assert_eq!(l.dead_reckoning_s, 8.0);
        assert_eq!(l.down_s, 10.0);
        assert_eq!(l.total_s(), 30.0);
    }

    #[test]
    fn transition_reports_actual_changes() {
        let mut h = HealthMonitor::new(DegradationState::Healthy, SimTime::ZERO);
        assert!(!h.transition(SimTime::from_secs(1), DegradationState::Healthy));
        assert!(h.transition(SimTime::from_secs(2), DegradationState::Down));
        assert!(!h.transition(SimTime::from_secs(3), DegradationState::Down));
    }

    #[test]
    fn self_transition_is_noop() {
        let mut h = HealthMonitor::new(DegradationState::Healthy, SimTime::ZERO);
        h.transition(SimTime::from_secs(3), DegradationState::Healthy);
        h.transition(SimTime::from_secs(7), DegradationState::Healthy);
        let l = h.finalize(SimTime::from_secs(10));
        assert_eq!(l.healthy_s, 10.0);
        assert_eq!(l.total_s(), 10.0);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            DegradationState::DeadReckoning.to_string(),
            "dead-reckoning"
        );
        assert_eq!(DegradationState::Down.to_string(), "down");
    }
}
